"""Legacy setup shim.

This repository is configured through ``pyproject.toml``; this file exists
only so that ``pip install -e . --no-build-isolation --no-use-pep517`` works
on offline machines that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
