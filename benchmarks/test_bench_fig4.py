"""Figure 4 bench: chunk-count sweep on a fixed skewed workload (§IV-C).

Paper claims: (1) chunked ExSample beats random for every M tried across
three orders of magnitude; (2) for small/medium M ExSample matches the
optimal static allocation closely; (3) very large M (1024) opens a gap to
its optimum because surveying 1024 chunks eats the budget — benefits are
non-monotonic.
"""

from repro.experiments import default_config, fig4

from benchmarks.conftest import save_artifact


def test_bench_fig4(benchmark):
    config = default_config(fig4.Fig4Config)
    result = benchmark.pedantic(fig4.run, args=(config,), rounds=1, iterations=1)
    save_artifact("fig4", fig4.format_result(result))

    by_chunks = {c.num_chunks: c for c in result.curves}
    random_final = float(result.random_median[-1])

    # (1) every chunked configuration with M in the useful range beats random.
    for m, curve in by_chunks.items():
        if 2 <= m <= 1024:
            assert curve.final_found() >= random_final * 0.95, f"M={m} lost to random"

    # (2) mid-range M tracks its optimal allocation.
    mid = [c for c in result.curves if 8 <= c.num_chunks <= 256]
    for curve in mid:
        assert curve.final_found() >= 0.75 * curve.optimal_final()

    # (3) the largest M shows the survey overhead: a wider optimum gap than
    # the mid-range configurations (checked as a relative statement).
    if 1024 in by_chunks and mid:
        gap_1024 = by_chunks[1024].optimal_final() - by_chunks[1024].final_found()
        gap_mid = min(c.optimal_final() - c.final_found() for c in mid)
        assert gap_1024 >= gap_mid - 1e-9
