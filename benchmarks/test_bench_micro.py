"""Micro-benchmarks of the library's hot paths.

These use pytest-benchmark's statistics properly (many rounds) — they time
the *implementation*, unlike the artifact benches which run experiment
harnesses once. Useful for catching performance regressions in the sampler
inner loop, frame orders, the detector simulation and the Eq. IV.1 solver.
"""

import os
import time

import numpy as np

from repro.core.config import ExSampleConfig
from repro.core.environment import batched_observe
from repro.core.frame_order import RandomPlusOrder, UniformOrder
from repro.core.sampler import ExSampleSearcher
from repro.detection.simulated import SimulatedDetector
from repro.query.engine import QueryEngine
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.optimal_weights import optimal_weights
from repro.theory.temporal_sim import TemporalEnvironment
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import RngFactory, spawn_rng
from repro.video.datasets import make_dataset

from benchmarks.conftest import save_artifact, save_metric


def test_exsample_step_throughput(benchmark):
    """Cost of one full pick-observe-update iteration over 128 chunks."""
    population = InstancePopulation.place(
        1000, 2_000_000, 700, spawn_rng(0, "mb"), skew_fraction=1 / 32
    )
    env = TemporalEnvironment.with_even_chunks(population, 128)
    searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))

    def step():
        picks = searcher.pick_batch()
        observations = batched_observe(env, picks)
        searcher.update(picks, observations)

    benchmark(step)


def test_observe_batch_beats_per_frame_loop():
    """§III-F: the batched observation path out-runs the per-frame loop.

    Same picks, same seeds, fresh environments per measurement — the only
    difference is one `observe_batch` call versus a Python loop of
    `observe` calls. Timed best-of-N on the synthetic dashcam dataset to
    shrug off scheduler noise; observations are also checked for equality,
    so the speedup is provably not from doing different work.
    """
    dataset = make_dataset("dashcam", scale=0.02, seed=7)
    # Cache off: this bench isolates the batched-vs-looped *observation*
    # paths; memoization (measured by its own bench below) would turn the
    # second measurement into pure cache hits.
    engine = QueryEngine(dataset, seed=7, detection_cache="off")
    sizes = dataset.chunk_map.sizes()
    rng = np.random.default_rng(0)
    picks = [
        (int(c), int(rng.integers(0, sizes[c])))
        for c in rng.integers(0, sizes.size, 512)
    ]

    env_a = engine.environment("person", run_seed=0)
    env_b = engine.environment("person", run_seed=0)
    obs_seq = [env_a.observe(c, f) for c, f in picks]
    obs_batch = env_b.observe_batch(picks)
    assert [(o.d0, o.d1, o.cost) for o in obs_seq] == [
        (o.d0, o.d1, o.cost) for o in obs_batch
    ]

    def per_frame():
        # Fresh environment per round (discriminator state grows during a
        # measurement) but constructed outside the timed region, so the
        # clock sees only observation work.
        env = engine.environment("person", run_seed=1)
        start = time.perf_counter()
        for chunk, frame in picks:
            env.observe(chunk, frame)
        return time.perf_counter() - start

    def batched():
        env = engine.environment("person", run_seed=1)
        start = time.perf_counter()
        env.observe_batch(picks)
        return time.perf_counter() - start

    # Interleave the measurements and keep each side's best so a noisy
    # neighbour on a shared CI runner has to hit every round of one side
    # to flip the comparison.
    t_per_frame = t_batched = float("inf")
    for _ in range(9):
        t_per_frame = min(t_per_frame, per_frame())
        t_batched = min(t_batched, batched())
    speedup = t_per_frame / t_batched
    save_artifact(
        "micro_observe_batch",
        (
            f"observe_batch vs per-frame loop (512 picks, dashcam 0.02)\n"
            f"per-frame: {t_per_frame * 1e3:.2f} ms\n"
            f"batched:   {t_batched * 1e3:.2f} ms\n"
            f"speedup:   {speedup:.2f}x"
        ),
    )
    save_metric(
        "observe_batch",
        per_frame_ms=t_per_frame * 1e3,
        batched_ms=t_batched * 1e3,
        speedup=speedup,
    )
    # Strict "batched beats per-frame" by default; shared CI runners set
    # BENCH_TIMING_TOLERANCE (e.g. 1.2) to keep this a no-major-regression
    # gate instead of an intermittent red on scheduler noise.
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert t_batched < t_per_frame * tolerance, (
        f"batched path slower than per-frame loop: "
        f"{t_batched * 1e3:.2f}ms vs {t_per_frame * 1e3:.2f}ms "
        f"(tolerance {tolerance}x)"
    )


def test_randomplus_order_throughput(benchmark):
    """Frames/second drawn from a 1M-frame random+ order."""
    order_holder = {}

    def draw_batch():
        if "order" not in order_holder or order_holder["order"].remaining < 1000:
            order_holder["order"] = RandomPlusOrder(
                1_000_000, spawn_rng(0, "mb2")
            )
        order = order_holder["order"]
        for _ in range(1000):
            order.next()

    benchmark(draw_batch)


def test_uniform_order_throughput(benchmark):
    holder = {}

    def draw_batch():
        if "order" not in holder or holder["order"].remaining < 1000:
            holder["order"] = UniformOrder(1_000_000, spawn_rng(0, "mb3"))
        for _ in range(1000):
            holder["order"].next()

    benchmark(draw_batch)


def test_detector_throughput(benchmark):
    """Simulated detections/second on a mid-size dataset."""
    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    detector = SimulatedDetector(dataset.world, seed=0)
    frames = iter(range(0, dataset.repository.videos[0].num_frames))
    state = {"frame": 0}

    def detect_one():
        state["frame"] = (state["frame"] + 37) % dataset.repository.videos[
            0
        ].num_frames
        detector.detect(0, state["frame"])

    benchmark(detect_one)


def test_discriminator_matching_throughput(benchmark):
    """Matching cost with a populated track store (hundreds of tracks)."""
    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    detector = SimulatedDetector(dataset.world, seed=0)
    discriminator = TrackDiscriminator(dataset.world, seed=0)
    # Warm the store with detections from a frame sweep.
    for frame in range(0, 20_000, 61):
        dets = detector.detect(0, frame, class_filter="person")
        discriminator.observe(0, frame, dets)
    state = {"frame": 1}

    def match_one():
        state["frame"] = (state["frame"] + 97) % 20_000
        dets = detector.detect(0, state["frame"], class_filter="person")
        discriminator.get_matches(0, state["frame"], dets)

    benchmark(match_one)


def test_optimal_weights_solver(benchmark):
    """Eq. IV.1 solve time at Figure-3 scale (2000 x 128)."""
    population = InstancePopulation.place(
        2000, 2_000_000, 700, spawn_rng(1, "mb4"), skew_fraction=1 / 32
    )
    p_matrix = population.chunk_probabilities(
        even_chunk_bounds(2_000_000, 128)
    )
    benchmark.pedantic(
        optimal_weights, args=(p_matrix, 5000.0), rounds=3, iterations=1
    )


def test_session_stepping_within_10pct_of_monolithic_loop():
    """The QuerySession redesign must not tax the blocking path.

    Same query, same seeds, fresh environment per measurement: one side
    drives the historical monolithic loop (`Searcher.run`), the other
    steps the identical searcher through a streaming `QuerySession`,
    materialising every event. The streamed run must land within 10% of
    the monolithic loop on a 10k-frame run (scaled by
    BENCH_TIMING_TOLERANCE for noisy shared runners); the traces are also
    compared, so the parity is provably not from doing different work.
    """
    from repro.core.sampler import SearchRun
    from repro.query.query import DistinctObjectQuery
    from repro.query.session import QuerySession

    dataset = make_dataset("dashcam", scale=0.02, seed=7)
    engine = QueryEngine(dataset, seed=7)
    frames = 10_000
    assert dataset.total_frames >= frames
    query = DistinctObjectQuery("person", limit=10_000, frame_budget=frames)

    def make_searcher(run_seed):
        env = engine.environment("person", run_seed=run_seed)
        return engine.make_searcher(
            "exsample", env, run_seed=run_seed, batch_size=32
        )

    # Equal work check, outside the timed region.
    trace_mono = make_searcher(0).run(frame_budget=frames)
    session = QuerySession(
        SearchRun(make_searcher(0), frame_budget=frames), query=query
    )
    for _ in session.stream():
        pass
    trace_sess = session.trace()
    assert trace_mono.num_samples == trace_sess.num_samples == frames
    assert np.array_equal(trace_mono.chunks, trace_sess.chunks)
    assert np.array_equal(trace_mono.costs, trace_sess.costs)

    def monolithic():
        searcher = make_searcher(1)
        start = time.perf_counter()
        searcher.run(frame_budget=frames)
        return time.perf_counter() - start

    def stepped():
        run = SearchRun(make_searcher(1), frame_budget=frames)
        sess = QuerySession(run, query=query)
        start = time.perf_counter()
        events = 0
        for _ in sess.stream():
            events += 1
        elapsed = time.perf_counter() - start
        assert events > 0
        return elapsed

    t_mono = monolithic()
    t_sess = stepped()
    for _ in range(2):
        t_mono = min(t_mono, monolithic())
        t_sess = min(t_sess, stepped())
    overhead = t_sess / t_mono
    save_artifact(
        "micro_session_stepping",
        (
            f"QuerySession streaming vs monolithic Searcher.run "
            f"(10k frames, dashcam 0.02, batch 32)\n"
            f"monolithic: {t_mono * 1e3:.2f} ms\n"
            f"session:    {t_sess * 1e3:.2f} ms\n"
            f"overhead:   {overhead:.3f}x"
        ),
    )
    save_metric(
        "session_stepping",
        monolithic_ms=t_mono * 1e3,
        session_ms=t_sess * 1e3,
        overhead=overhead,
    )
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert t_sess <= t_mono * 1.10 * tolerance, (
        f"session-stepped execution {overhead:.3f}x slower than the "
        f"monolithic loop (allowed: 1.10 x tolerance {tolerance})"
    )


def test_detection_cache_sweep_speedup():
    """Repeated-run sweeps over one engine must win >= 3x from the cache.

    The fig3-sweep shape: several runs over the *same* engine, each with a
    fresh environment (fresh discriminator), observing the same frames.
    With the detection cache off, every repeat re-generates detections
    from scratch; with the default unbounded cache, repeats 2..5 are pure
    hits. Observations are compared across the two engines, so the
    speedup is provably not from doing different work. The archie dataset
    (the densest world, ~4.5 visible instances per frame) with a sparse
    query class makes detection the dominant per-frame cost, as it is for
    a real detector.
    """
    dataset = make_dataset("archie", scale=0.02, seed=7)
    sizes = dataset.chunk_map.sizes()
    rng = np.random.default_rng(0)
    picks = [
        (int(c), int(rng.integers(0, sizes[c])))
        for c in rng.integers(0, sizes.size, 512)
    ]
    repeats = 5

    engine_cold = QueryEngine(dataset, seed=7, detection_cache="off")
    engine_cached = QueryEngine(dataset, seed=7, detection_cache="unbounded")

    # Equal-work check, outside the timed region.
    obs_cold = engine_cold.environment("bus", run_seed=0).observe_batch(picks)
    obs_cached = engine_cached.environment("bus", run_seed=0).observe_batch(picks)
    assert [(o.d0, o.d1, o.cost) for o in obs_cold] == [
        (o.d0, o.d1, o.cost) for o in obs_cached
    ]

    def sweep(engine):
        start = time.perf_counter()
        for run_seed in range(1, repeats + 1):
            env = engine.environment("bus", run_seed=run_seed)
            env.observe_batch(picks)
        return time.perf_counter() - start

    t_cold = t_cached = float("inf")
    for _ in range(5):
        t_cold = min(t_cold, sweep(engine_cold))
        t_cached = min(t_cached, sweep(engine_cached))
    speedup = t_cold / t_cached
    info = engine_cached.cache_info()
    save_artifact(
        "micro_cache_sweep",
        (
            f"detection cache: 5-repeat sweep over one engine "
            f"(512 picks/run, archie 0.02, class 'bus')\n"
            f"cache off:  {t_cold * 1e3:.2f} ms\n"
            f"cache on:   {t_cached * 1e3:.2f} ms\n"
            f"speedup:    {speedup:.2f}x\n"
            f"final cache state: {info}"
        ),
    )
    save_metric(
        "cache_sweep",
        cold_ms=t_cold * 1e3,
        cached_ms=t_cached * 1e3,
        speedup=speedup,
        cache_hit_rate=info.hit_rate,
    )
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert speedup >= 3.0 / tolerance, (
        f"cached sweep only {speedup:.2f}x faster than cold "
        f"(required: 3.0x / tolerance {tolerance})"
    )


def test_vectorized_detector_speedup():
    """The whole-frame numpy detector must beat the per-instance loop >= 2x.

    The reference below is the historical per-instance implementation
    (one miss draw, one jitter, one score per instance, each via its own
    generator call, with three intermediate BoundingBox objects per
    detection); the product path generates whole frames from flat arrays.
    Both run on a deliberately dense world (~20 visible instances per
    frame) where the inner loop is the cost that matters — the regime the
    vectorisation exists for. The reference consumes the per-frame stream
    in a different order, so only counts are compared, not bytes (the
    per-frame streams themselves are identical).
    """
    from repro.video.synthetic import ClassSpec, build_world
    from repro.video.video import Video, VideoRepository

    repo = VideoRepository(
        [Video("dense-0", 24_000, fps=10.0, width=1280, height=720)]
    )
    world = build_world(
        repo,
        [
            ClassSpec("car", count=600, mean_duration_s=60.0),
            ClassSpec("person", count=300, mean_duration_s=40.0),
        ],
        seed=0,
    )
    detector = SimulatedDetector(world, seed=0)

    from repro.detection.detections import Detection
    from repro.video.geometry import BoundingBox

    def per_instance_detect(video, frame):
        rng = detector._frame_rng.seeded(detector.seed, "detect", video, frame)
        profile = detector.profile
        detections = []
        visible = detector.world.visible(video, frame)
        if visible:
            meta = detector.world.repository.videos[video]
            for instance in visible:
                gt_box = instance.box_at(frame)
                if rng.random() < detector._miss_probability(gt_box):
                    continue
                box = (
                    gt_box
                    if profile.jitter == 0
                    else gt_box.jittered(rng, profile.jitter)
                )
                box = box.clipped(meta.width, meta.height)
                score = float(rng.beta(*profile.score_tp))
                detections.append(
                    Detection(
                        video=video,
                        frame=frame,
                        box=box,
                        class_name=instance.class_name,
                        score=score,
                        instance_uid=instance.uid,
                    )
                )
        count = int(rng.poisson(profile.false_positives_per_frame))
        meta = detector.world.repository.videos[video]
        for _ in range(count):
            w = float(rng.uniform(20, 200))
            h = w * float(rng.uniform(0.5, 1.5))
            x1 = float(rng.uniform(0, max(meta.width - w, 1)))
            y1 = float(rng.uniform(0, max(meta.height - h, 1)))
            detections.append(
                Detection(
                    video=video,
                    frame=frame,
                    box=BoundingBox(x1, y1, x1 + w, y1 + h),
                    class_name=str(rng.choice(detector._class_names)),
                    score=float(rng.beta(*profile.score_fp)),
                    instance_uid=None,
                )
            )
        return detections

    frames = [int(f) for f in np.random.default_rng(1).integers(0, 24_000, 512)]
    # Same frames, same per-frame streams: the two implementations draw in
    # a different order but from identical distributions; visible-instance
    # sets must agree exactly.
    for frame in frames[:32]:
        ref_uids = {d.instance_uid for d in per_instance_detect(0, frame)}
        vec_uids = {d.instance_uid for d in detector.detect(0, frame)}
        visible = {i.uid for i in world.visible(0, frame)} | {None}
        assert ref_uids <= visible and vec_uids <= visible

    t_ref = t_vec = float("inf")
    for _ in range(9):
        start = time.perf_counter()
        for frame in frames:
            per_instance_detect(0, frame)
        t_ref = min(t_ref, time.perf_counter() - start)
        start = time.perf_counter()
        detector.detect_batch([0] * len(frames), frames)
        t_vec = min(t_vec, time.perf_counter() - start)
    speedup = t_ref / t_vec
    save_artifact(
        "micro_vectorized_detector",
        (
            f"vectorized detector vs per-instance loop "
            f"(512-frame batch, ~20 instances/frame)\n"
            f"per-instance: {t_ref * 1e3:.2f} ms\n"
            f"vectorized:   {t_vec * 1e3:.2f} ms\n"
            f"speedup:      {speedup:.2f}x"
        ),
    )
    save_metric(
        "vectorized_detector",
        per_instance_ms=t_ref * 1e3,
        vectorized_ms=t_vec * 1e3,
        speedup=speedup,
    )
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert speedup >= 2.0 / tolerance, (
        f"vectorized detector only {speedup:.2f}x over the per-instance "
        f"loop (required: 2.0x / tolerance {tolerance})"
    )


def _shm_world_probe(world, item):
    """Trivial worker body: the cost under test is task *dispatch*."""
    return (item, world.num_instances)


def _noop(x):
    return x


def _shm_cache_sweep(engine, run_seed):
    """One worker task of a repeated sweep: observe a fixed pick set."""
    sizes = engine.dataset.chunk_map.sizes()
    rng = np.random.default_rng(0)
    picks = [
        (int(c), int(rng.integers(0, sizes[c])))
        for c in rng.integers(0, sizes.size, 256)
    ]
    observations = engine.environment("bus", run_seed=run_seed).observe_batch(picks)
    info = engine.cache_info()
    return [(o.d0, o.d1, o.cost) for o in observations], info.hits, info.misses


def test_shared_world_spawn_dispatch():
    """Per-task dispatch with a shared world must beat re-pickling >= 2x.

    The spawn start method pays full task serialization per submit: with
    an unpublished world every task ships megabytes of instances; with
    the world published to shared memory it ships a ~100-byte handle and
    workers attach zero-copy views once per process. Both sides run
    through the *same* warmed 2-worker spawn pool with a trivial task
    body, so the measured difference is serialization, not work or pool
    startup. Results are compared, so the speedup is provably not from
    doing different work. The comparison is serialization-bound rather
    than core-bound, so the gate holds on 1-core runners too;
    BENCH_TIMING_TOLERANCE relaxes it against scheduler noise.
    """
    import pickle
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial
    from multiprocessing import get_context

    from repro.parallel.shm import SharedWorldStore
    from repro.video.synthetic import ClassSpec, build_world
    from repro.video.video import Video, VideoRepository

    repo = VideoRepository(
        [Video("shmbench-0", 400_000, fps=10.0, width=1280, height=720)]
    )
    world = build_world(
        repo,
        [
            ClassSpec("car", count=12_000, mean_duration_s=30.0),
            ClassSpec("person", count=8_000, mean_duration_s=20.0),
        ],
        seed=0,
    )
    world_bytes = len(pickle.dumps(world))
    tasks = list(range(12))
    fn = partial(_shm_world_probe, world)
    expected = [(i, world.num_instances) for i in tasks]

    def dispatch_best_of(rounds=3):
        with ProcessPoolExecutor(
            max_workers=2, mp_context=get_context("spawn")
        ) as pool:
            assert list(pool.map(_noop, range(2))) == [0, 1]  # warm workers
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                futures = [pool.submit(fn, item) for item in tasks]
                results = [future.result() for future in futures]
                best = min(best, time.perf_counter() - start)
                assert results == expected
        return best

    t_pickled = dispatch_best_of()
    with SharedWorldStore(world):
        assert len(pickle.dumps(world)) < 512
        t_shared = dispatch_best_of()
    assert world._shared_handle is None
    speedup = t_pickled / t_shared
    save_artifact(
        "micro_shared_world_dispatch",
        (
            f"spawn-pool task dispatch: shared-memory world vs re-pickled "
            f"world ({len(tasks)} tasks, {world.num_instances} instances, "
            f"{world_bytes / 1e6:.1f} MB pickled)\n"
            f"pickled world: {t_pickled * 1e3:.2f} ms\n"
            f"shared world:  {t_shared * 1e3:.2f} ms\n"
            f"speedup:       {speedup:.2f}x"
        ),
    )
    save_metric(
        "shared_world_dispatch",
        pickled_ms=t_pickled * 1e3,
        shared_ms=t_shared * 1e3,
        speedup=speedup,
        world_mb=world_bytes / 1e6,
        tasks=len(tasks),
        cores=os.cpu_count() or 1,
    )
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert speedup >= 2.0 / tolerance, (
        f"shared-world dispatch only {speedup:.2f}x over pickled-world "
        f"dispatch (required: 2.0x / tolerance {tolerance})"
    )


def test_shared_cache_cross_process_hit_rate():
    """A repeated parallel sweep must hit detections another process paid.

    Two consecutive 2-worker pools run the same pick set over one
    engine wired to a :class:`SharedDetectionCache`. The second pool's
    workers are fresh processes with zero local state — every hit they
    report can only come from rows the first pool's workers wrote to the
    shared store. The hit-rate gate is deterministic (no timing), so it
    holds on any runner; wall-clock for both pools is recorded honestly
    alongside.
    """
    from functools import partial

    from repro.experiments.parallel import parallel_map

    dataset = make_dataset("archie", scale=0.02, seed=7)
    engine = QueryEngine(dataset, seed=7, detection_cache="shared")
    engine.detection_cache.clear()
    fn = partial(_shm_cache_sweep, engine)
    start = time.perf_counter()
    first = parallel_map(fn, [0, 1, 2, 3], jobs=2, shared_world=True)
    t_first = time.perf_counter() - start
    start = time.perf_counter()
    second = parallel_map(fn, [0, 1, 2, 3], jobs=2, shared_world=True)
    t_second = time.perf_counter() - start
    assert [obs for obs, _, _ in first] == [obs for obs, _, _ in second]
    hits = sum(h for _, h, _ in second)
    misses = sum(m for _, _, m in second)
    hit_rate = hits / max(hits + misses, 1)
    store_size = len(engine.detection_cache)
    engine.detection_cache.clear()
    save_artifact(
        "micro_shared_cache",
        (
            f"cross-process shared detection cache: repeated 4-task sweep "
            f"over two fresh 2-worker pools (256 picks/task, archie 0.02)\n"
            f"first pool (cold store):  {t_first * 1e3:.2f} ms\n"
            f"second pool (warm store): {t_second * 1e3:.2f} ms\n"
            f"second-pool hit rate:     {hit_rate:.1%} "
            f"({hits} hits / {misses} misses, {store_size} shared rows)"
        ),
    )
    save_metric(
        "shared_cache",
        first_pool_ms=t_first * 1e3,
        second_pool_ms=t_second * 1e3,
        second_pool_hits=hits,
        second_pool_misses=misses,
        second_pool_hit_rate=hit_rate,
        shared_rows=store_size,
    )
    assert hits > 0, (
        "fresh workers of the second pool reported zero hits — the "
        "detection memo is not shared across processes"
    )


def test_parallel_traces_scaling():
    """Process-parallel repeated_traces on the fig3 quick workload.

    Times ``parallel_traces`` at jobs=1 vs jobs=4 on one fig3 quick-config
    cell (2000 instances, 2M frames, 128 chunks, 4000-frame budget) and
    asserts the parallel traces are element-wise identical to serial. The
    >= 2x wall-clock gate only applies on machines with >= 4 cores —
    single-core containers still run the identity check and record their
    numbers.
    """
    from functools import partial

    from repro.experiments.fig3 import _make_exsample
    from repro.experiments.parallel import parallel_traces
    from repro.utils.rng import RngFactory

    rngs = RngFactory(0).child("bench-par")
    population = InstancePopulation.place(
        2000, 2_000_000, 700, rngs.stream("pop"), skew_fraction=1 / 32
    )
    bounds = even_chunk_bounds(2_000_000, 128)
    make = partial(_make_exsample, population, bounds, rngs)
    runs, budget = 8, 4000

    serial = parallel_traces(make, runs, jobs=1, frame_budget=budget)
    parallel = parallel_traces(make, runs, jobs=4, frame_budget=budget)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.chunks, b.chunks)
        assert np.array_equal(a.d0s, b.d0s)
        assert np.array_equal(a.costs, b.costs)

    t_serial = t_parallel = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        parallel_traces(make, runs, jobs=1, frame_budget=budget)
        t_serial = min(t_serial, time.perf_counter() - start)
        start = time.perf_counter()
        parallel_traces(make, runs, jobs=4, frame_budget=budget)
        t_parallel = min(t_parallel, time.perf_counter() - start)
    speedup = t_serial / t_parallel
    cores = os.cpu_count() or 1
    save_artifact(
        "micro_parallel_scaling",
        (
            f"parallel_traces jobs=4 vs jobs=1 "
            f"(fig3 quick cell, {runs} runs x {budget} frames, "
            f"{cores} cores available)\n"
            f"serial (jobs=1):   {t_serial * 1e3:.2f} ms\n"
            f"parallel (jobs=4): {t_parallel * 1e3:.2f} ms\n"
            f"speedup:           {speedup:.2f}x\n"
            f"traces: parallel == serial, element-wise"
        ),
    )
    save_metric(
        "parallel_scaling",
        serial_ms=t_serial * 1e3,
        parallel_ms=t_parallel * 1e3,
        speedup=speedup,
        jobs=4,
        cores=cores,
    )
    if cores >= 4:
        tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
        assert speedup >= 2.0 / tolerance, (
            f"jobs=4 only {speedup:.2f}x over serial on {cores} cores "
            f"(required: 2.0x / tolerance {tolerance})"
        )


def test_serving_cross_session_batching_cuts_detector_calls():
    """Cross-session batching + off-loop overlap: calls *and* wall-clock.

    Four ways to run the same 8-query workload over one engine:

    * **fused** — the QueryServer with batching on: pending frame requests
      coalesce across sessions into fused ``detect_batch`` calls
      (executed inline on the event loop);
    * **fused+overlapped** — same fusing, but the fused calls run on the
      thread detector executor: detection overlaps session CPU work in a
      double-buffered pipeline;
    * **per-session** — the same server with batching off: every session
      invokes the detector itself, one call per step (the old
      ``run_many`` round-robin schedule);
    * **solo** — plain sequential ``engine.run`` per query.

    Each mode runs on a fresh engine (fresh cache, fresh call counter)
    with identical (query, method, run_seed) triples, so traces must be
    element-wise identical across all four — asserted below, which
    proves both the call savings and the overlap are pure scheduling,
    not skipped work.

    Two gates. Calls: fused issues at most half the calls of per-session
    stepping (deterministic, no tolerance). Wall-clock: fused+overlapped
    beats sequential solo by >=1.3x — the regression this PR exists to
    fix, since inline fused execution *lost* to solo despite 5x fewer
    calls (everything serialized on the loop, plus batching overhead).
    The timing gate takes min-of-3 on both sides and only applies on
    >=2-core machines; a 1-core container cannot overlap anything, so
    there the numbers are recorded honestly without failing (the
    ``micro_parallel_scaling`` precedent).
    """
    from repro.query.query import DistinctObjectQuery
    from repro.serving import ServerConfig

    n_sessions = 8
    queries = [DistinctObjectQuery("person", limit=6) for _ in range(n_sessions)]

    def build_engine():
        return QueryEngine(
            make_dataset("dashcam", scale=0.02, seed=7), seed=7
        )

    def run_server(batching, executor="inline"):
        engine = build_engine()
        start = time.perf_counter()
        outcomes = engine.run_many(
            queries,
            batch_size=4,
            server_config=ServerConfig(
                max_in_flight=n_sessions,
                max_batch_size=1024,
                batching=batching,
                executor=executor,
            ),
        )
        elapsed = time.perf_counter() - start
        return outcomes, engine.detector.detect_calls, elapsed

    def run_solo():
        engine = build_engine()
        start = time.perf_counter()
        outcomes = [
            engine.run(query, run_seed=seed, batch_size=4)
            for seed, query in enumerate(queries)
        ]
        elapsed = time.perf_counter() - start
        return outcomes, engine.detector.detect_calls, elapsed

    fused, fused_calls, fused_s = run_server(batching=True)
    overlapped, overlapped_calls, overlapped_s = run_server(
        batching=True, executor="thread"
    )
    plain, plain_calls, plain_s = run_server(batching=False)
    solo, solo_calls, solo_s = run_solo()

    for a, b, c, d in zip(fused, overlapped, plain, solo):
        for other in (b, c, d):
            assert np.array_equal(a.trace.chunks, other.trace.chunks)
            assert np.array_equal(a.trace.frames, other.trace.frames)
            assert np.array_equal(a.trace.costs, other.trace.costs)
            assert a.trace.results == other.trace.results

    # The executor changes where fused calls run, never how they fuse.
    assert overlapped_calls == fused_calls

    # min-of-3 for the timing-gated pair (first runs above count as one).
    for _ in range(2):
        _, _, s = run_server(batching=True, executor="thread")
        overlapped_s = min(overlapped_s, s)
        _, _, s = run_solo()
        solo_s = min(solo_s, s)
    overlap_speedup = solo_s / overlapped_s

    reduction = plain_calls / max(fused_calls, 1)
    cores = os.cpu_count() or 1
    save_artifact(
        "micro_serving_batching",
        (
            f"cross-session detector batching "
            f"({n_sessions} concurrent sessions, dashcam 0.02, batch 4, "
            f"{cores} cores available)\n"
            f"fused (QueryServer, inline executor): {fused_calls} calls, "
            f"{fused_s * 1e3:.1f} ms\n"
            f"fused+overlapped (thread executor):   {overlapped_calls} calls, "
            f"{overlapped_s * 1e3:.1f} ms\n"
            f"per-session stepping (batching off):  {plain_calls} calls, "
            f"{plain_s * 1e3:.1f} ms\n"
            f"sequential solo runs:                 {solo_calls} calls, "
            f"{solo_s * 1e3:.1f} ms\n"
            f"call reduction (fused vs per-session): {reduction:.2f}x\n"
            f"overlap speedup (solo / fused+overlapped): "
            f"{overlap_speedup:.2f}x\n"
            f"outcomes: identical element-wise across all four modes"
        ),
    )
    save_metric(
        "serving_batching",
        sessions=n_sessions,
        fused_calls=fused_calls,
        overlapped_calls=overlapped_calls,
        per_session_calls=plain_calls,
        solo_calls=solo_calls,
        call_reduction=reduction,
        overlap_speedup=overlap_speedup,
        fused_ms=fused_s * 1e3,
        overlapped_ms=overlapped_s * 1e3,
        per_session_ms=plain_s * 1e3,
        solo_ms=solo_s * 1e3,
        cores=cores,
    )
    assert fused_calls * 2 <= plain_calls, (
        f"cross-session batching saved only {reduction:.2f}x detector calls "
        f"({fused_calls} fused vs {plain_calls} per-session; required >=2x)"
    )
    if cores >= 2:
        tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
        assert overlap_speedup >= 1.3 / tolerance, (
            f"fused+overlapped serving only {overlap_speedup:.2f}x over "
            f"sequential solo on {cores} cores "
            f"(required: 1.3x / tolerance {tolerance})"
        )


def test_fleet_scaling_throughput():
    """A 2-shard fleet must out-serve one shard server — where it can.

    The fleet's pitch is sideways scaling: shard processes own whole
    engines, so detector work runs on distinct cores and the router only
    moves JSON frames. Both sides replay the same workload through the
    same wire path (a 1-shard fleet vs a 2-shard fleet, launch cost
    excluded), so the measured difference is parallelism, not protocol.
    Outcomes are asserted element-wise identical to solo ``engine.run``
    for both fleet widths — scaling never changes a result.

    The >=1.5x throughput gate only applies on multi-core machines; a
    1-core runner cannot parallelize detector work, so there the numbers
    are recorded honestly (speedup ~1x or below) without failing.
    """
    import asyncio

    from repro.query.query import DistinctObjectQuery
    from repro.serving.fleet import FleetRouter, replay_fleet
    from repro.serving.workload import WorkloadItem

    seed = 7
    dataset_kwargs = dict(name="dashcam", scale=0.02, seed=seed)
    items = [
        WorkloadItem(
            object=class_name,
            limit=3,
            run_seed=run_seed,
            tenant=f"t{run_seed}",
        )
        for run_seed, class_name in enumerate(
            ["person", "traffic light", "person", "bicycle",
             "person", "traffic light"]
        )
    ]

    async def replay_through(n_shards):
        router = await FleetRouter.launch(
            make_dataset(**dataset_kwargs),
            n_shards=n_shards,
            placement="least_loaded",
            engine_seed=seed,
        )
        try:
            start = time.perf_counter()
            handles = await replay_fleet(router, items, time_scale=0.0)
            outcomes = [await handle.result() for handle in handles]
            elapsed = time.perf_counter() - start
        finally:
            await router.shutdown()
        return outcomes, elapsed

    def best_of(n_shards, rounds=3):
        best = None
        for _ in range(rounds):
            outcomes, elapsed = asyncio.run(replay_through(n_shards))
            if best is None or elapsed < best[1]:
                best = (outcomes, elapsed)
        return best

    single_outcomes, t_single = best_of(1)
    fleet_outcomes, t_fleet = best_of(2)

    # Identity first: neither fleet width may change any outcome.
    solo = QueryEngine(make_dataset(**dataset_kwargs), seed=seed)
    for item, one, two in zip(items, single_outcomes, fleet_outcomes):
        reference = solo.run(
            DistinctObjectQuery(item.object, limit=item.limit),
            run_seed=item.run_seed,
        )
        for outcome in (one, two):
            assert np.array_equal(reference.trace.chunks, outcome.trace.chunks)
            assert np.array_equal(reference.trace.frames, outcome.trace.frames)
            assert np.array_equal(reference.trace.costs, outcome.trace.costs)
            assert reference.trace.results == outcome.trace.results

    cores = os.cpu_count() or 1
    speedup = t_single / t_fleet
    throughput_single = len(items) / t_single
    throughput_fleet = len(items) / t_fleet
    save_artifact(
        "micro_fleet_scaling",
        (
            f"fleet replay throughput: 2 shard processes vs 1 "
            f"({len(items)} sessions, least_loaded placement, "
            f"{cores} cores)\n"
            f"1 shard:  {t_single * 1e3:.1f} ms "
            f"({throughput_single:.1f} sessions/s)\n"
            f"2 shards: {t_fleet * 1e3:.1f} ms "
            f"({throughput_fleet:.1f} sessions/s)\n"
            f"speedup:  {speedup:.2f}x\n"
            f"outcomes: identical element-wise to solo runs at both widths"
        ),
    )
    save_metric(
        "fleet_scaling",
        sessions=len(items),
        single_shard_ms=t_single * 1e3,
        two_shard_ms=t_fleet * 1e3,
        speedup=speedup,
        cores=cores,
        gated=cores >= 2,
    )
    if cores >= 2:
        tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
        assert speedup >= 1.5 / tolerance, (
            f"2-shard fleet sped replay up only {speedup:.2f}x on {cores} "
            f"cores (required >=1.5x)"
        )


def test_repository_index_warm_start(tmp_path):
    """The repository index must cut detector sampling on repeat workloads.

    Two engines run the identical query at run seeds 1..6 over the same
    dataset. The cold engine has no index; the warm engine shares a
    repository index seeded by one prior run (seed 0) and keeps recording
    as it goes, so later seeds benefit from everything earlier ones paid —
    exactly the cross-query reuse the subsystem exists for. Samples are
    summed across seeds because individual (warm, cold) pairs are noisy:
    a lucky cold draw can beat an unlucky warm one, but the aggregate
    cannot. Both gates are deterministic counts, so no timing tolerance
    applies; metrics are recorded before either assert so a failure still
    leaves honest numbers in the trajectory file.

    The second gate is the exact-repeat short-circuit: a fresh engine on
    the same index re-issued the seed-0 query and must replay it from the
    recorded outcome — zero detector calls, byte-identical outcome pickle.
    """
    import pickle

    from repro.query.engine import ReplaySession
    from repro.query.query import DistinctObjectQuery

    dataset_kwargs = dict(name="dashcam", scale=0.02, seed=7)
    query = DistinctObjectQuery("bicycle", limit=4)
    index_path = tmp_path / "repo-index"
    seeds = range(1, 7)

    warm_engine = QueryEngine(
        make_dataset(**dataset_kwargs), seed=7, index=str(index_path)
    )
    seed_outcome = warm_engine.run(query, run_seed=0)
    warm_samples = sum(
        warm_engine.run(query, run_seed=s).trace.num_samples for s in seeds
    )

    cold_engine = QueryEngine(make_dataset(**dataset_kwargs), seed=7)
    cold_samples = sum(
        cold_engine.run(query, run_seed=s).trace.num_samples for s in seeds
    )

    # Exact repeat on a fresh engine: replayed, zero detector work.
    fresh = QueryEngine(
        make_dataset(**dataset_kwargs), seed=7, index=str(index_path)
    )
    fresh.detection_cache.clear()  # preload must not mask live sampling
    session = fresh.session(query, run_seed=0)
    replayed = isinstance(session, ReplaySession)
    replay_calls = fresh.detector.detect_calls
    blob_identical = session.outcome_blob == pickle.dumps(
        seed_outcome, protocol=pickle.HIGHEST_PROTOCOL
    )

    reduction = cold_samples / max(warm_samples, 1)
    save_artifact(
        "micro_warm_start",
        (
            f"repository index warm start "
            f"(dashcam 0.02, 'bicycle' limit 4, seeds 1..6 summed)\n"
            f"cold engine (no index):   {cold_samples} samples\n"
            f"warm engine (shared idx): {warm_samples} samples\n"
            f"reduction:                {reduction:.2f}x\n"
            f"exact repeat: replayed={replayed}, "
            f"detector calls={replay_calls}, "
            f"outcome bytes identical={blob_identical}"
        ),
    )
    save_metric(
        "warm_start",
        cold_samples=cold_samples,
        warm_samples=warm_samples,
        reduction=reduction,
        runs_summed=len(list(seeds)),
        replay_detector_calls=replay_calls,
        replay_byte_identical=blob_identical,
    )
    assert warm_samples < cold_samples, (
        f"warm-started runs drew {warm_samples} samples vs {cold_samples} "
        f"cold over seeds 1..6 — the index priors are not helping"
    )
    assert replayed and replay_calls == 0, (
        f"exact repeat was not short-circuited (replayed={replayed}, "
        f"{replay_calls} detector calls)"
    )
    assert blob_identical, (
        "replayed outcome pickle differs from the recorded run's bytes"
    )


def test_crash_recovery():
    """A mid-search SIGKILL costs at most ``checkpoint_every`` redone steps.

    One supervised shard runs a budgeted search while the chaos harness
    kills the shard process after 7 fulfilled steps. The router relaunches
    the shard, resumes the session from its latest recovery-table
    checkpoint (taken every 2 steps), and the final outcome must be
    byte-identical to a solo ``engine.run``. Gates are on correctness —
    the redo ledger stays within ``checkpoint_every`` per recovery and the
    trace is unchanged; the clean-vs-crash wall times are recorded for the
    perf trajectory but not gated (detection latency is timer-dependent).
    """
    import asyncio

    from repro.query.query import DistinctObjectQuery
    from repro.serving.faults import FaultPlan, FaultSpec
    from repro.serving.fleet import FleetRouter
    from repro.serving.workload import WorkloadItem

    seed = 7
    checkpoint_every = 2
    dataset_kwargs = dict(name="dashcam", scale=0.02, seed=seed)
    item = WorkloadItem(
        object="person", frame_budget=200, batch_size=8, run_seed=5
    )

    async def replay_once(faults):
        router = await FleetRouter.launch(
            make_dataset(**dataset_kwargs),
            n_shards=1,
            engine_seed=seed,
            checkpoint_every=checkpoint_every,
            heartbeat_interval=0.05,
            heartbeat_timeout=0.5,
            faults=faults,
        )
        try:
            start = time.perf_counter()
            handle = await router.submit(item)
            outcome = await handle.result()
            elapsed = time.perf_counter() - start
            stats = await router.stats()
        finally:
            await router.shutdown()
        return outcome, stats, elapsed

    clean_outcome, _, t_clean = asyncio.run(replay_once(None))
    kill = FaultPlan((FaultSpec(kind="kill", shard=0, after_steps=7),))
    crash_outcome, stats, t_crash = asyncio.run(replay_once(kill))

    solo = QueryEngine(make_dataset(**dataset_kwargs), seed=seed).run(
        item.query(), run_seed=item.run_seed, batch_size=item.batch_size
    )
    for outcome in (clean_outcome, crash_outcome):
        assert np.array_equal(solo.trace.chunks, outcome.trace.chunks)
        assert np.array_equal(solo.trace.frames, outcome.trace.frames)
        assert np.array_equal(solo.trace.costs, outcome.trace.costs)
        assert solo.trace.results == outcome.trace.results

    recoveries = stats.recovered_sessions + stats.rerun_sessions
    assert stats.restarts >= 1, "the kill fault never tripped supervision"
    assert recoveries >= 1
    assert stats.redone_steps <= checkpoint_every * recoveries, (
        f"{stats.redone_steps} steps redone across {recoveries} recoveries "
        f"— the checkpoint cycle (every {checkpoint_every}) is not bounding "
        f"lost work"
    )

    save_artifact(
        "micro_crash_recovery",
        (
            f"crash recovery: SIGKILL after 7 steps, checkpoint every "
            f"{checkpoint_every} (1 shard, {item.frame_budget}-frame "
            f"budget, batch {item.batch_size})\n"
            f"clean run:   {t_clean * 1e3:.1f} ms\n"
            f"crashed run: {t_crash * 1e3:.1f} ms "
            f"(+{(t_crash - t_clean) * 1e3:.1f} ms to detect + relaunch + "
            f"resume)\n"
            f"restarts: {stats.restarts}  recovered: "
            f"{stats.recovered_sessions}  rerun: {stats.rerun_sessions}  "
            f"steps redone: {stats.redone_steps} "
            f"(bound {checkpoint_every}/recovery)\n"
            f"outcome: byte-identical to solo engine.run"
        ),
    )
    save_metric(
        "micro_crash_recovery",
        clean_ms=t_clean * 1e3,
        crashed_ms=t_crash * 1e3,
        recovery_overhead_ms=(t_crash - t_clean) * 1e3,
        restarts=stats.restarts,
        recovered_sessions=stats.recovered_sessions,
        rerun_sessions=stats.rerun_sessions,
        redone_steps=stats.redone_steps,
        checkpoint_every=checkpoint_every,
        identical=True,
    )
