"""Micro-benchmarks of the library's hot paths.

These use pytest-benchmark's statistics properly (many rounds) — they time
the *implementation*, unlike the artifact benches which run experiment
harnesses once. Useful for catching performance regressions in the sampler
inner loop, frame orders, the detector simulation and the Eq. IV.1 solver.
"""

import os
import time

import numpy as np

from repro.core.config import ExSampleConfig
from repro.core.environment import batched_observe
from repro.core.frame_order import RandomPlusOrder, UniformOrder
from repro.core.sampler import ExSampleSearcher
from repro.detection.simulated import SimulatedDetector
from repro.query.engine import QueryEngine
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.optimal_weights import optimal_weights
from repro.theory.temporal_sim import TemporalEnvironment
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import RngFactory, spawn_rng
from repro.video.datasets import make_dataset

from benchmarks.conftest import save_artifact


def test_exsample_step_throughput(benchmark):
    """Cost of one full pick-observe-update iteration over 128 chunks."""
    population = InstancePopulation.place(
        1000, 2_000_000, 700, spawn_rng(0, "mb"), skew_fraction=1 / 32
    )
    env = TemporalEnvironment.with_even_chunks(population, 128)
    searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))

    def step():
        picks = searcher.pick_batch()
        observations = batched_observe(env, picks)
        searcher.update(picks, observations)

    benchmark(step)


def test_observe_batch_beats_per_frame_loop():
    """§III-F: the batched observation path out-runs the per-frame loop.

    Same picks, same seeds, fresh environments per measurement — the only
    difference is one `observe_batch` call versus a Python loop of
    `observe` calls. Timed best-of-N on the synthetic dashcam dataset to
    shrug off scheduler noise; observations are also checked for equality,
    so the speedup is provably not from doing different work.
    """
    dataset = make_dataset("dashcam", scale=0.02, seed=7)
    engine = QueryEngine(dataset, seed=7)
    sizes = dataset.chunk_map.sizes()
    rng = np.random.default_rng(0)
    picks = [
        (int(c), int(rng.integers(0, sizes[c])))
        for c in rng.integers(0, sizes.size, 512)
    ]

    env_a = engine.environment("person", run_seed=0)
    env_b = engine.environment("person", run_seed=0)
    obs_seq = [env_a.observe(c, f) for c, f in picks]
    obs_batch = env_b.observe_batch(picks)
    assert [(o.d0, o.d1, o.cost) for o in obs_seq] == [
        (o.d0, o.d1, o.cost) for o in obs_batch
    ]

    def per_frame():
        # Fresh environment per round (discriminator state grows during a
        # measurement) but constructed outside the timed region, so the
        # clock sees only observation work.
        env = engine.environment("person", run_seed=1)
        start = time.perf_counter()
        for chunk, frame in picks:
            env.observe(chunk, frame)
        return time.perf_counter() - start

    def batched():
        env = engine.environment("person", run_seed=1)
        start = time.perf_counter()
        env.observe_batch(picks)
        return time.perf_counter() - start

    # Interleave the measurements and keep each side's best so a noisy
    # neighbour on a shared CI runner has to hit every round of one side
    # to flip the comparison.
    t_per_frame = t_batched = float("inf")
    for _ in range(9):
        t_per_frame = min(t_per_frame, per_frame())
        t_batched = min(t_batched, batched())
    speedup = t_per_frame / t_batched
    save_artifact(
        "micro_observe_batch",
        (
            f"observe_batch vs per-frame loop (512 picks, dashcam 0.02)\n"
            f"per-frame: {t_per_frame * 1e3:.2f} ms\n"
            f"batched:   {t_batched * 1e3:.2f} ms\n"
            f"speedup:   {speedup:.2f}x"
        ),
    )
    # Strict "batched beats per-frame" by default; shared CI runners set
    # BENCH_TIMING_TOLERANCE (e.g. 1.2) to keep this a no-major-regression
    # gate instead of an intermittent red on scheduler noise.
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert t_batched < t_per_frame * tolerance, (
        f"batched path slower than per-frame loop: "
        f"{t_batched * 1e3:.2f}ms vs {t_per_frame * 1e3:.2f}ms "
        f"(tolerance {tolerance}x)"
    )


def test_randomplus_order_throughput(benchmark):
    """Frames/second drawn from a 1M-frame random+ order."""
    order_holder = {}

    def draw_batch():
        if "order" not in order_holder or order_holder["order"].remaining < 1000:
            order_holder["order"] = RandomPlusOrder(
                1_000_000, spawn_rng(0, "mb2")
            )
        order = order_holder["order"]
        for _ in range(1000):
            order.next()

    benchmark(draw_batch)


def test_uniform_order_throughput(benchmark):
    holder = {}

    def draw_batch():
        if "order" not in holder or holder["order"].remaining < 1000:
            holder["order"] = UniformOrder(1_000_000, spawn_rng(0, "mb3"))
        for _ in range(1000):
            holder["order"].next()

    benchmark(draw_batch)


def test_detector_throughput(benchmark):
    """Simulated detections/second on a mid-size dataset."""
    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    detector = SimulatedDetector(dataset.world, seed=0)
    frames = iter(range(0, dataset.repository.videos[0].num_frames))
    state = {"frame": 0}

    def detect_one():
        state["frame"] = (state["frame"] + 37) % dataset.repository.videos[
            0
        ].num_frames
        detector.detect(0, state["frame"])

    benchmark(detect_one)


def test_discriminator_matching_throughput(benchmark):
    """Matching cost with a populated track store (hundreds of tracks)."""
    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    detector = SimulatedDetector(dataset.world, seed=0)
    discriminator = TrackDiscriminator(dataset.world, seed=0)
    # Warm the store with detections from a frame sweep.
    for frame in range(0, 20_000, 61):
        dets = detector.detect(0, frame, class_filter="person")
        discriminator.observe(0, frame, dets)
    state = {"frame": 1}

    def match_one():
        state["frame"] = (state["frame"] + 97) % 20_000
        dets = detector.detect(0, state["frame"], class_filter="person")
        discriminator.get_matches(0, state["frame"], dets)

    benchmark(match_one)


def test_optimal_weights_solver(benchmark):
    """Eq. IV.1 solve time at Figure-3 scale (2000 x 128)."""
    population = InstancePopulation.place(
        2000, 2_000_000, 700, spawn_rng(1, "mb4"), skew_fraction=1 / 32
    )
    p_matrix = population.chunk_probabilities(
        even_chunk_bounds(2_000_000, 128)
    )
    benchmark.pedantic(
        optimal_weights, args=(p_matrix, 5000.0), rounds=3, iterations=1
    )


def test_session_stepping_within_10pct_of_monolithic_loop():
    """The QuerySession redesign must not tax the blocking path.

    Same query, same seeds, fresh environment per measurement: one side
    drives the historical monolithic loop (`Searcher.run`), the other
    steps the identical searcher through a streaming `QuerySession`,
    materialising every event. The streamed run must land within 10% of
    the monolithic loop on a 10k-frame run (scaled by
    BENCH_TIMING_TOLERANCE for noisy shared runners); the traces are also
    compared, so the parity is provably not from doing different work.
    """
    from repro.core.sampler import SearchRun
    from repro.query.query import DistinctObjectQuery
    from repro.query.session import QuerySession

    dataset = make_dataset("dashcam", scale=0.02, seed=7)
    engine = QueryEngine(dataset, seed=7)
    frames = 10_000
    assert dataset.total_frames >= frames
    query = DistinctObjectQuery("person", limit=10_000, frame_budget=frames)

    def make_searcher(run_seed):
        env = engine.environment("person", run_seed=run_seed)
        return engine.make_searcher(
            "exsample", env, run_seed=run_seed, batch_size=32
        )

    # Equal work check, outside the timed region.
    trace_mono = make_searcher(0).run(frame_budget=frames)
    session = QuerySession(
        SearchRun(make_searcher(0), frame_budget=frames), query=query
    )
    for _ in session.stream():
        pass
    trace_sess = session.trace()
    assert trace_mono.num_samples == trace_sess.num_samples == frames
    assert np.array_equal(trace_mono.chunks, trace_sess.chunks)
    assert np.array_equal(trace_mono.costs, trace_sess.costs)

    def monolithic():
        searcher = make_searcher(1)
        start = time.perf_counter()
        searcher.run(frame_budget=frames)
        return time.perf_counter() - start

    def stepped():
        run = SearchRun(make_searcher(1), frame_budget=frames)
        sess = QuerySession(run, query=query)
        start = time.perf_counter()
        events = 0
        for _ in sess.stream():
            events += 1
        elapsed = time.perf_counter() - start
        assert events > 0
        return elapsed

    t_mono = monolithic()
    t_sess = stepped()
    for _ in range(2):
        t_mono = min(t_mono, monolithic())
        t_sess = min(t_sess, stepped())
    overhead = t_sess / t_mono
    save_artifact(
        "micro_session_stepping",
        (
            f"QuerySession streaming vs monolithic Searcher.run "
            f"(10k frames, dashcam 0.02, batch 32)\n"
            f"monolithic: {t_mono * 1e3:.2f} ms\n"
            f"session:    {t_sess * 1e3:.2f} ms\n"
            f"overhead:   {overhead:.3f}x"
        ),
    )
    tolerance = float(os.environ.get("BENCH_TIMING_TOLERANCE", "1.0"))
    assert t_sess <= t_mono * 1.10 * tolerance, (
        f"session-stepped execution {overhead:.3f}x slower than the "
        f"monolithic loop (allowed: 1.10 x tolerance {tolerance})"
    )
