"""Figure 6 bench: skew histograms + savings for representative queries.

Paper claim: the skew statistic S explains the savings spectrum — high-S
queries (dashcam/bicycle, S=14) save several-fold, low-S queries
(archie/car S=1.1, amsterdam/boat S=1.6) sit near 1x — with the bdd1k
caveat that 1000 chunks slow the learning down (§V-C).
"""


from repro.experiments import default_config, fig6

from benchmarks.conftest import save_artifact


def test_bench_fig6(benchmark):
    config = default_config(fig6.Fig6Config)
    result = benchmark.pedantic(fig6.run, args=(config,), rounds=1, iterations=1)
    save_artifact("fig6", fig6.format_result(result))

    panels = {(p.dataset, p.class_name): p for p in result.panels}

    # Skew ordering mirrors the paper: bicycle most skewed, car least.
    s_bicycle = panels[("dashcam", "bicycle")].summary.skew
    s_car = panels[("archie", "car")].summary.skew
    s_person = panels[("night_street", "person")].summary.skew
    assert s_bicycle > s_person > s_car

    # archie/car: no skew -> no meaningful advantage over random.
    car_savings = panels[("archie", "car")].savings
    if car_savings is not None:
        assert car_savings < 2.0

    # The high-skew few-chunk query must beat the no-skew query.
    bike_savings = panels[("dashcam", "bicycle")].savings
    if bike_savings is not None and car_savings is not None:
        assert bike_savings > car_savings * 0.8
