"""Figure 5 bench: per-query savings over random at recall .1/.5/.9 (§V-C).

Paper claims: geometric mean ≈1.9x across all bars, max ≈6x, worst ≈0.75x.
The miniature reproduction checks geo-mean > 1.2x, a clear multi-x best
case, and a bounded worst case.
"""

from repro.experiments import default_config, fig5

from benchmarks.conftest import save_artifact


def test_bench_fig5(benchmark):
    config = default_config(fig5.Fig5Config)
    result = benchmark.pedantic(fig5.run, args=(config,), rounds=1, iterations=1)
    save_artifact("fig5", fig5.format_result(result))

    all_ratios = [
        ratio
        for recall in config.recalls
        for ratio in result.ratios_at(recall)
    ]
    assert len(all_ratios) >= 10, "too few reachable query/recall pairs"

    geo = result.geo_mean_all()
    assert geo > 1.2, f"geo-mean savings {geo:.2f}x below the paper's regime"
    assert max(all_ratios) > 2.5, "no clearly-winning query found"
    assert min(all_ratios) > 0.25, "a query collapsed far below random"
