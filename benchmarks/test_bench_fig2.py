"""Figure 2 bench: Gamma belief vs true R(n+1) (§III-D).

Paper claim: the belief distribution Gamma(N1 + .1, n + 1) is wider than the
truth early on, fits it well at mid-range n, and its alpha0 prior keeps
Thompson sampling alive when N1 = 0. The regenerated table reports, per
(n, N1) cell, the true vs belief mean/std and the belief's 95% coverage.
"""

from repro.experiments import default_config, fig2

from benchmarks.conftest import save_artifact


def test_bench_fig2(benchmark):
    config = default_config(fig2.Fig2Config)
    result = benchmark.pedantic(fig2.run, args=(config,), rounds=1, iterations=1)
    text = fig2.format_result(result)
    save_artifact("fig2", text)

    # Shape assertions mirroring §III-D.
    assert result.cells, "no populated (n, N1) cells harvested"
    early = [c for c in result.cells if c.n <= 100]
    for cell in early:
        # Early cells: belief std exceeds the true spread (conservative).
        assert cell.belief_std >= cell.true_std * 0.8
    mid = [c for c in result.cells if 500 <= c.n and c.true_mean > 0]
    for cell in mid:
        assert cell.belief_mean / cell.true_mean < 3.0
    assert 0.6 <= result.variance_coverage <= 1.0
