"""Ablation benches for the design choices DESIGN.md calls out.

Each bench reports the median cost (samples, or seconds where noted) to a
fixed target under one knob's variants, and asserts the qualitative
relationship the paper describes.
"""


from repro.experiments import ablations, default_config
from repro.experiments.ablations import AblationConfig, format_ablation

from benchmarks.conftest import save_artifact


def _config():
    return default_config(AblationConfig)


def test_randomplus_ablation(benchmark):
    """§III-F: random+ within chunks beats uniform; random+ beats random."""
    result = benchmark.pedantic(
        ablations.randomplus_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_randomplus",
        format_ablation("random+ ablation (median samples to target)", result),
    )
    rplus = result["exsample/randomplus"]
    uniform = result["exsample/uniform"]
    assert rplus is not None and uniform is not None
    assert rplus <= uniform * 1.25
    if result["random"] is not None and result["random+"] is not None:
        assert result["random+"] <= result["random"] * 1.1


def test_policy_ablation(benchmark):
    """§III-C: Thompson ~ Bayes-UCB; both far better than uniform."""
    result = benchmark.pedantic(
        ablations.policy_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_policy",
        format_ablation("policy ablation (median samples to target)", result),
    )
    thompson = result["thompson"]
    assert thompson is not None
    if result["uniform"] is not None:
        assert thompson < result["uniform"] * 0.6
    if result["bayes_ucb"] is not None:
        assert thompson <= result["bayes_ucb"] * 2.5


def test_prior_ablation(benchmark):
    """§III-C: no strong dependence on (alpha0, beta0) within sane ranges."""
    result = benchmark.pedantic(
        ablations.prior_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_prior",
        format_ablation("prior ablation (median samples to target)", result),
    )
    values = [v for v in result.values() if v is not None]
    assert len(values) >= 4
    assert max(values) / min(values) < 5.0


def test_batch_ablation(benchmark):
    """§III-F: batching trades a little sample-efficiency for throughput."""
    result = benchmark.pedantic(
        ablations.batch_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_batch",
        format_ablation("batch-size ablation (median samples to target)", result),
    )
    single = result["batch=1"]
    big = result["batch=64"]
    assert single is not None and big is not None
    assert big <= single * 3.0  # degradation is bounded


def test_chunk_count_ablation(benchmark):
    """§IV-C on dataset intervals: mid-range M wins, extremes lag."""
    result = benchmark.pedantic(
        ablations.chunk_count_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_chunks",
        format_ablation("chunk-count ablation (median samples to target)", result),
    )
    values = {k: v for k, v in result.items() if v is not None}
    assert len(values) >= 3
    best_m = min(values, key=values.get)
    assert best_m not in ("M=1",), "single chunk should not be optimal"


def test_sequential_variance_ablation(benchmark):
    """§II-B: sequential execution's time-to-results is both slower and far
    more variable than random sampling's."""
    result = benchmark.pedantic(
        ablations.sequential_variance_ablation, args=(_config(),),
        rounds=1, iterations=1,
    )
    rows = {
        f"{name}/{stat}": value
        for name, stats in result.items()
        for stat, value in stats.items()
    }
    save_artifact(
        "ablation_sequential_variance",
        format_ablation("sequential variance (samples to target)", rows),
    )
    seq = result["sequential"]
    rnd = result["random"]
    assert seq["median"] is not None and rnd["median"] is not None
    assert seq["median"] > rnd["median"] * 2
    assert seq["iqr"] > rnd["iqr"] * 2


def test_fusion_crossover_ablation(benchmark):
    """§VII: fusion beats plain ExSample once the detector is expensive
    enough for its sample savings to outweigh the incremental scans."""
    result = benchmark.pedantic(
        ablations.fusion_crossover_ablation, args=(_config(),),
        rounds=1, iterations=1,
    )
    save_artifact(
        "ablation_fusion",
        format_ablation("fusion crossover (seconds to 0.9 recall)", result),
    )
    slow_plain = result.get("exsample@2fps")
    slow_fusion = result.get("exsample_fusion@2fps")
    assert slow_plain is not None and slow_fusion is not None
    assert slow_fusion < slow_plain * 1.1  # fusion wins (or ties) at 2 fps


def test_proxy_quality_ablation(benchmark):
    """§V-B: even a near-perfect proxy loses to sampling on limit queries."""
    result = benchmark.pedantic(
        ablations.proxy_quality_ablation, args=(_config(),), rounds=1, iterations=1
    )
    save_artifact(
        "ablation_proxy_quality",
        format_ablation("proxy-quality ablation (seconds to 0.5 recall)", result),
    )
    ex = result["exsample"]
    assert ex is not None
    proxies = [v for k, v in result.items() if k.startswith("proxy") and v is not None]
    assert proxies
    assert all(p > ex for p in proxies)
