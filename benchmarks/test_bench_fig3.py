"""Figure 3 bench: the skew x duration savings grid (§IV-B).

Paper claim: savings over random grow with placement skew and instance
duration — 1x with no skew up to ~84x in the most favourable cell — and
ExSample is never significantly worse than random.
"""


from repro.experiments import default_config, fig3

from benchmarks.conftest import save_artifact


def test_bench_fig3(benchmark):
    config = default_config(fig3.Fig3Config)
    result = benchmark.pedantic(fig3.run, args=(config,), rounds=1, iterations=1)
    text = fig3.format_result(result)
    save_artifact("fig3", text)

    cells = {(c.skew, c.duration): c for c in result.cells}

    # No-skew column: ExSample ~ random (within noise) at every duration.
    for duration in config.durations:
        cell = cells[(None, duration)]
        ratios = [r for r in cell.savings.values() if r is not None]
        if ratios:
            assert min(ratios) > 0.4, f"no-skew cell dur={duration} collapsed"

    # Heaviest-skew column must show clear wins at the largest reachable
    # target for the longer-duration rows.
    heavy = [cells[(1 / 256, d)] for d in config.durations if d >= 700]
    best = max(
        (r for cell in heavy for r in cell.savings.values() if r is not None),
        default=None,
    )
    assert best is not None and best > 3.0

    # Monotone tendency: heavier skew should not reduce the best savings.
    def best_ratio(skew):
        vals = [
            r
            for d in config.durations
            for r in [cells[(skew, d)].savings.get(max(config.targets))]
            if r is not None
        ]
        return max(vals) if vals else None

    light = best_ratio(1 / 4)
    heavy_best = best_ratio(1 / 256)
    if light is not None and heavy_best is not None:
        assert heavy_best >= light * 0.8
