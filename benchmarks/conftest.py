"""Benchmark-suite helpers.

Each benchmark regenerates one paper artifact (table or figure) and saves
its text rendering under ``benchmarks/results/`` so the output survives
pytest's capture regardless of ``-s``. Set ``REPRO_FULL=1`` to run the
paper-scale configurations (slow); the default quick configurations
preserve the comparisons' shape at a fraction of the cost.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable micro-benchmark metrics. Reset at the start of every
#: benchmark session (see :func:`_reset_bench_json`) and then merged
#: key-by-key, so the file holds exactly the benches of the latest run —
#: no stale sections from renamed or removed benchmarks. CI uploads it as
#: an artifact, giving the perf trajectory across PRs a parseable record.
BENCH_JSON = RESULTS_DIR / "BENCH_micro.json"


@pytest.fixture(scope="session", autouse=True)
def _reset_bench_json():
    """Start each suite run from an empty metrics file."""
    BENCH_JSON.unlink(missing_ok=True)
    yield


def save_artifact(name: str, text: str) -> None:
    """Persist a regenerated artifact and echo it for -s runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def save_metric(name: str, **values) -> None:
    """Merge one benchmark's metrics into ``BENCH_micro.json``.

    ``values`` should be JSON-scalar timings/ratios (seconds, speedups,
    counts). Each call overwrites only its own ``name`` section, so the
    file accumulates every micro-benchmark that ran, in any order.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    try:
        payload = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        payload = {}
    meta = payload.setdefault("_meta", {})
    meta["python"] = platform.python_version()
    meta["machine"] = platform.machine()
    payload[name] = values
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
