"""Benchmark-suite helpers.

Each benchmark regenerates one paper artifact (table or figure) and saves
its text rendering under ``benchmarks/results/`` so the output survives
pytest's capture regardless of ``-s``. Set ``REPRO_FULL=1`` to run the
paper-scale configurations (slow); the default quick configurations
preserve the comparisons' shape at a fraction of the cost.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> None:
    """Persist a regenerated artifact and echo it for -s runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
