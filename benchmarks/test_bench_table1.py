"""Table I bench: proxy scan time vs ExSample time-to-recall (§V-B).

Paper claim: "Across all queries and datasets, it is cheaper to reach 90%
of instances using ExSample sampling than it is to scan and score frames
prior to sampling, and much easier to reach 10% and 50% of instances."
"""

from repro.experiments import default_config, table1

from benchmarks.conftest import save_artifact


def test_bench_table1(benchmark):
    config = default_config(table1.Table1Config)
    result = benchmark.pedantic(table1.run, args=(config,), rounds=1, iterations=1)
    save_artifact("table1", table1.format_result(result))

    assert result.rows, "no rows produced"

    # The headline relation, allowing a tiny number of violations at the
    # miniature scale (the paper reports zero at full scale).
    violations = result.violations(0.9)
    assert violations <= max(len(result.rows) // 10, 1), (
        f"{violations}/{len(result.rows)} rows failed to beat the scan"
    )

    # 10% recall must be reached orders of magnitude before the scan.
    fast_rows = [
        row for row in result.rows if row.time_to.get(0.1) is not None
    ]
    assert fast_rows
    quick_wins = [
        row for row in fast_rows if row.time_to[0.1] < row.scan_seconds / 5
    ]
    assert len(quick_wins) >= len(fast_rows) * 0.8
