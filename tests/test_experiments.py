"""Smoke tests for every experiment harness at miniature scale.

These verify each artifact module runs end-to-end and produces a sane,
renderable result; the *shape* assertions against the paper live in
``test_integration.py`` and the benchmark suite.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    default_config,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
)
from repro.experiments.runner import (
    is_full_scale,
    median_samples_to,
    repeated_traces,
    sample_grid,
)


class TestRunnerHelpers:
    def test_sample_grid_properties(self):
        grid = sample_grid(10_000, points=30)
        assert grid[0] == 1
        assert grid[-1] == 10_000
        assert np.all(np.diff(grid) > 0)

    def test_default_config_quick_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_scale()
        config = default_config(fig2.Fig2Config)
        assert config.runs == fig2.Fig2Config.quick().runs

    def test_default_config_full_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_scale()
        config = default_config(fig2.Fig2Config)
        assert config.runs == fig2.Fig2Config.paper().runs

    def test_median_samples_to_censoring(self):
        from repro.core.sampler import SearchTrace

        def trace(d0s):
            n = len(d0s)
            return SearchTrace(
                chunks=np.zeros(n, dtype=np.int64),
                frames=np.arange(n, dtype=np.int64),
                d0s=np.asarray(d0s, dtype=np.int64),
                d1s=np.zeros(n, dtype=np.int64),
                costs=np.ones(n),
            )

        reached = trace([1, 1])
        failed = trace([0, 0])
        assert median_samples_to([reached, reached, failed], 2) == 2.0
        assert median_samples_to([failed, failed, reached], 2) is None


class TestFig2:
    def test_miniature_run(self):
        config = fig2.Fig2Config(
            num_instances=200, runs=150, max_n=5000, checkpoints=12
        )
        result = fig2.run(config)
        assert len(result.cells) >= 3
        assert 0.5 <= result.variance_coverage <= 1.0
        text = fig2.format_result(result)
        assert "Figure 2" in text
        assert "cover95" in text

    def test_belief_mean_tracks_truth(self):
        config = fig2.Fig2Config(
            num_instances=300, runs=150, max_n=20_000, checkpoints=16
        )
        result = fig2.run(config)
        mid_cells = [c for c in result.cells if c.n >= 100 and c.true_mean > 0]
        assert mid_cells
        for cell in mid_cells:
            assert cell.belief_mean == pytest.approx(cell.true_mean, rel=0.6)


class TestFig3:
    def test_single_cell(self):
        config = fig3.Fig3Config(
            num_instances=300,
            total_frames=300_000,
            num_chunks=32,
            runs=2,
            frame_budget=1500,
            targets=(10, 100),
        )
        cell = fig3.run_cell(config, 1 / 32, 700)
        assert cell.median_found["exsample"] > 0
        assert cell.optimal_found > 0

    def test_grid_and_format(self):
        config = fig3.Fig3Config(
            num_instances=150,
            total_frames=150_000,
            num_chunks=16,
            runs=2,
            frame_budget=600,
            skews=(None, 1 / 16),
            durations=(100, 700),
            targets=(10,),
        )
        result = fig3.run(config)
        assert len(result.cells) == 4
        text = fig3.format_result(result)
        assert "Figure 3" in text


class TestFig4:
    def test_miniature_run(self):
        config = fig4.Fig4Config(
            num_instances=200,
            total_frames=200_000,
            mean_duration=700,
            skew=1 / 16,
            chunk_counts=(1, 8, 64),
            runs=2,
            frame_budget=1200,
        )
        result = fig4.run(config)
        assert len(result.curves) == 3
        for curve in result.curves:
            assert np.all(np.diff(curve.exsample_median) >= 0)
            assert curve.optimal_expected[-1] <= 200 + 1e-6
        assert "Figure 4" in fig4.format_result(result)


class TestTable1:
    def test_miniature_run(self):
        config = table1.Table1Config(
            datasets=("dashcam",), scale=0.03, max_classes=2
        )
        result = table1.run(config)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.scan_seconds > 0
        text = table1.format_result(result)
        assert "Table I" in text


class TestFig5:
    def test_miniature_run(self):
        config = fig5.Fig5Config(
            datasets=("dashcam",), scale=0.03, trials=1, max_classes=2
        )
        result = fig5.run(config)
        assert len(result.bars) == 2
        text = fig5.format_result(result)
        assert "Figure 5" in text


class TestFig6:
    def test_miniature_run(self):
        config = fig6.Fig6Config(scale=0.03, trials=1)
        result = fig6.run(config)
        assert len(result.panels) == 5
        labels = {(p.dataset, p.class_name) for p in result.panels}
        assert ("dashcam", "bicycle") in labels
        assert ("archie", "car") in labels
        text = fig6.format_result(result)
        assert "Figure 6" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def config(self):
        return ablations.AblationConfig(
            num_instances=300,
            total_frames=300_000,
            num_chunks=16,
            runs=2,
            frame_budget=1200,
            target_results=100,
        )

    def test_randomplus(self, config):
        result = ablations.randomplus_ablation(config)
        assert set(result) == {
            "exsample/randomplus",
            "exsample/uniform",
            "random",
            "random+",
        }

    def test_policy(self, config):
        result = ablations.policy_ablation(config)
        assert "thompson" in result

    def test_prior(self, config):
        result = ablations.prior_ablation(config)
        assert len(result) == 5

    def test_batch(self, config):
        result = ablations.batch_ablation(config)
        assert set(result) == {"batch=1", "batch=8", "batch=64"}

    def test_format(self, config):
        result = ablations.batch_ablation(config)
        text = ablations.format_ablation("batch", result)
        assert "batch=1" in text
