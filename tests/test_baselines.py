"""Tests for the baseline searchers."""

import numpy as np
import pytest

from repro.baselines import (
    OracleStaticSearcher,
    ProxySearcher,
    RandomPlusSearcher,
    RandomSearcher,
    SequentialSearcher,
)
from repro.core.environment import CallbackEnvironment, Observation
from repro.errors import ConfigError
from repro.utils.rng import RngFactory


def counting_env(sizes):
    def observe(chunk, frame):
        return Observation(d0=0, d1=0, results=[], cost=1.0)

    return CallbackEnvironment(sizes, observe)


def drain_all(searcher):
    trace = searcher.run()
    return trace


class TestExhaustiveCoverage:
    """Every sampling baseline must visit every frame exactly once."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda env: RandomSearcher(env, rng=RngFactory(0)),
            lambda env: RandomPlusSearcher(env, rng=RngFactory(0)),
            lambda env: SequentialSearcher(env, rng=RngFactory(0), stride=7),
            lambda env: OracleStaticSearcher(
                env, weights=np.array([0.7, 0.2, 0.1]), rng=RngFactory(0)
            ),
        ],
        ids=["random", "randomplus", "sequential", "oracle"],
    )
    def test_visits_each_frame_once(self, factory):
        sizes = [13, 7, 20]
        env = counting_env(sizes)
        searcher = factory(env)
        trace = drain_all(searcher)
        assert trace.num_samples == sum(sizes)
        for chunk, size in enumerate(sizes):
            frames = trace.frames[trace.chunks == chunk]
            assert sorted(frames) == list(range(size))


class TestRandomSearcher:
    def test_roughly_uniform_over_chunks(self):
        sizes = [100, 100, 100, 100]
        env = counting_env(sizes)
        searcher = RandomSearcher(env, rng=RngFactory(1))
        trace = searcher.run(frame_budget=200)
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts.min() > 20

    def test_weighted_by_remaining_frames(self):
        sizes = [300, 10]
        env = counting_env(sizes)
        searcher = RandomSearcher(env, rng=RngFactory(2))
        trace = searcher.run(frame_budget=100)
        counts = np.bincount(trace.chunks, minlength=2)
        assert counts[0] > counts[1] * 5

    def test_batching(self):
        env = counting_env([50, 50])
        searcher = RandomSearcher(env, rng=RngFactory(3), batch_size=10)
        trace = searcher.run(frame_budget=30)
        assert trace.num_samples == 30


class TestRandomPlusSearcher:
    def test_early_samples_spread_globally(self):
        sizes = [64, 64, 64, 64]
        env = counting_env(sizes)
        searcher = RandomPlusSearcher(env, rng=RngFactory(4))
        trace = searcher.run(frame_budget=4)
        # 4 samples over 256 frames: random+ puts them in distinct quarters,
        # which here coincide with the 4 chunks.
        assert len(set(trace.chunks.tolist())) >= 3


class TestSequentialSearcher:
    def test_first_pass_strided(self):
        env = counting_env([20])
        searcher = SequentialSearcher(env, stride=5)
        trace = searcher.run(frame_budget=4)
        assert list(trace.frames) == [0, 5, 10, 15]

    def test_second_pass_offsets(self):
        env = counting_env([10])
        searcher = SequentialSearcher(env, stride=5)
        trace = searcher.run(frame_budget=4)
        assert list(trace.frames) == [0, 5, 1, 6]

    def test_stride_one_is_scan(self):
        env = counting_env([6])
        searcher = SequentialSearcher(env, stride=1)
        trace = searcher.run()
        assert list(trace.frames) == list(range(6))

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigError):
            SequentialSearcher(counting_env([5]), stride=0)


class TestProxySearcher:
    def _env_and_scores(self, total=30):
        env = counting_env([total])
        scores = np.arange(total, dtype=float)  # frame 29 best
        return env, scores

    def test_descending_score_order(self):
        env, scores = self._env_and_scores()
        searcher = ProxySearcher(env, scores=scores, scan_cost=10.0)
        trace = searcher.run(frame_budget=5)
        assert list(trace.frames) == [29, 28, 27, 26, 25]

    def test_upfront_cost_in_trace(self):
        env, scores = self._env_and_scores()
        searcher = ProxySearcher(env, scores=scores, scan_cost=42.0)
        trace = searcher.run(frame_budget=1)
        assert trace.upfront_cost == 42.0
        assert trace.total_cost == pytest.approx(43.0)

    def test_dedup_window_blocks_neighbours(self):
        env, scores = self._env_and_scores()
        searcher = ProxySearcher(
            env, scores=scores, scan_cost=0.0, dedup_window=3
        )
        trace = searcher.run(frame_budget=3)
        # 29 blocks 26..30, so next is 25, which blocks 22..28, next 21.
        assert list(trace.frames) == [29, 25, 21]

    def test_dedup_window_still_terminates(self):
        env, scores = self._env_and_scores()
        searcher = ProxySearcher(
            env, scores=scores, scan_cost=0.0, dedup_window=2
        )
        trace = searcher.run()
        # Windowed skipping processes a subset but must halt cleanly.
        assert trace.num_samples >= 6
        assert len(set(trace.frames.tolist())) == trace.num_samples

    def test_score_shape_validated(self):
        env, _ = self._env_and_scores()
        with pytest.raises(ConfigError):
            ProxySearcher(env, scores=np.zeros(7), scan_cost=0.0)

    def test_negative_scan_cost_rejected(self):
        env, scores = self._env_and_scores()
        with pytest.raises(ConfigError):
            ProxySearcher(env, scores=scores, scan_cost=-1.0)


class TestOracleSearcher:
    def test_allocation_follows_weights(self):
        sizes = [1000, 1000]
        env = counting_env(sizes)
        searcher = OracleStaticSearcher(
            env, weights=np.array([0.9, 0.1]), rng=RngFactory(5)
        )
        trace = searcher.run(frame_budget=300)
        counts = np.bincount(trace.chunks, minlength=2)
        assert counts[0] > 230

    def test_falls_back_when_weighted_chunks_exhaust(self):
        sizes = [5, 100]
        env = counting_env(sizes)
        searcher = OracleStaticSearcher(
            env, weights=np.array([1.0, 0.0]), rng=RngFactory(6)
        )
        trace = searcher.run(frame_budget=30)
        assert trace.num_samples == 30  # continued into chunk 1

    def test_weight_validation(self):
        env = counting_env([10, 10])
        with pytest.raises(ConfigError):
            OracleStaticSearcher(env, weights=np.array([0.5]))
        with pytest.raises(ConfigError):
            OracleStaticSearcher(env, weights=np.array([0.9, 0.3]))
        with pytest.raises(ConfigError):
            OracleStaticSearcher(env, weights=np.array([-0.5, 1.5]))
