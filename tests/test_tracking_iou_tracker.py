"""Tests for the online IoU tracker and ground-truth building."""

import pytest

from repro.detection.simulated import (
    PERFECT_PROFILE,
    DetectorProfile,
    SimulatedDetector,
)
from repro.errors import ConfigError
from repro.tracking.groundtruth import approximate_ground_truth
from repro.tracking.iou_tracker import OnlineIoUTracker
from repro.detection.detections import Detection
from repro.video.geometry import BoundingBox

from tests.conftest import make_tiny_dataset


def _det(video, frame, x, cls="car", uid=None, size=50.0):
    return Detection(
        video=video, frame=frame,
        box=BoundingBox(x, 100, x + size, 100 + size),
        class_name=cls, score=0.9, instance_uid=uid,
    )


class TestOnlineTracker:
    def test_single_object_single_track(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=5)
        for frame in range(10):
            tracker.process_frame(0, frame, [_det(0, frame, x=100 + frame * 2)])
        tracks = tracker.results()
        assert len(tracks) == 1
        assert tracks[0].detections == 10
        assert tracks[0].span == 10

    def test_two_disjoint_objects_two_tracks(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=5)
        for frame in range(10):
            tracker.process_frame(
                0, frame,
                [_det(0, frame, x=100), _det(0, frame, x=400)],
            )
        assert len(tracker.results()) == 2

    def test_gap_splits_track(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=3)
        for frame in range(5):
            tracker.process_frame(0, frame, [_det(0, frame, x=100)])
        for frame in range(5, 20):
            tracker.process_frame(0, frame, [])
        tracker.process_frame(0, 20, [_det(0, 20, x=100)])
        assert len(tracker.results()) == 2

    def test_gap_within_tolerance_joins(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=10)
        tracker.process_frame(0, 0, [_det(0, 0, x=100)])
        tracker.process_frame(0, 5, [_det(0, 5, x=100)])
        assert len(tracker.results()) == 1

    def test_class_mismatch_never_matches(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=5)
        tracker.process_frame(0, 0, [_det(0, 0, x=100, cls="car")])
        tracker.process_frame(0, 1, [_det(0, 1, x=100, cls="dog")])
        assert len(tracker.results()) == 2

    def test_video_switch_flushes(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=100)
        tracker.process_frame(0, 0, [_det(0, 0, x=100)])
        tracker.process_frame(1, 1, [_det(1, 1, x=100)])
        assert len(tracker.results()) == 2

    def test_majority_instance_vote(self):
        tracker = OnlineIoUTracker(iou_threshold=0.3, max_frame_gap=5)
        tracker.process_frame(0, 0, [_det(0, 0, x=100, uid=7)])
        tracker.process_frame(0, 1, [_det(0, 1, x=100, uid=7)])
        tracker.process_frame(0, 2, [_det(0, 2, x=100, uid=9)])
        track = tracker.results()[0]
        assert track.majority_instance() == 7

    def test_validation(self):
        with pytest.raises(ConfigError):
            OnlineIoUTracker(iou_threshold=0)
        with pytest.raises(ConfigError):
            OnlineIoUTracker(max_frame_gap=0)


class TestGroundTruthBuilding:
    def test_perfect_detector_recovers_counts(self):
        """§V-A's scan+track pipeline should recover true instance counts
        (within a small tolerance for crossing/overlapping objects)."""
        dataset = make_tiny_dataset(seed=4)
        detector = SimulatedDetector(
            dataset.world, profile=PERFECT_PROFILE, seed=0
        )
        table = approximate_ground_truth(dataset, detector, stride=1)
        for class_name in dataset.classes:
            true = dataset.gt_count(class_name)
            approx = table.count(class_name)
            assert abs(approx - true) <= max(0.25 * true, 2)

    def test_noisy_detector_still_reasonable(self):
        dataset = make_tiny_dataset(seed=4)
        detector = SimulatedDetector(
            dataset.world,
            profile=DetectorProfile(
                miss_rate=0.1, false_positives_per_frame=0.01
            ),
            seed=0,
        )
        table = approximate_ground_truth(
            dataset, detector, stride=1, min_track_detections=3
        )
        true_total = dataset.world.num_instances
        approx_total = sum(table.count(c) for c in table.classes())
        assert 0.5 * true_total <= approx_total <= 2.0 * true_total

    def test_stride_reduces_work(self):
        dataset = make_tiny_dataset(seed=4)
        detector = SimulatedDetector(
            dataset.world, profile=PERFECT_PROFILE, seed=0
        )
        table = approximate_ground_truth(dataset, detector, stride=10)
        assert table.frames_scanned == pytest.approx(
            dataset.total_frames / 10, rel=0.01
        )

    def test_distinct_real_instances(self):
        dataset = make_tiny_dataset(seed=4)
        detector = SimulatedDetector(
            dataset.world, profile=PERFECT_PROFILE, seed=0
        )
        table = approximate_ground_truth(dataset, detector, stride=1)
        for class_name in table.classes():
            assert table.distinct_real_instances(class_name) <= dataset.gt_count(
                class_name
            ) + 1

    def test_rejects_bad_stride(self):
        dataset = make_tiny_dataset(seed=4)
        with pytest.raises(ConfigError):
            approximate_ground_truth(dataset, stride=0)
