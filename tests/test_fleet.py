"""The sharded serving fleet (repro.serving.fleet + placement).

The acceptance bar lifts the serving layer's one more level: a workload
replayed across N shard *processes* — routed by any placement policy,
admission-controlled by the router, some sessions live-migrated between
shards mid-flight — must produce outcomes element-wise identical to solo
``engine.run`` calls, for every registered search method. Shards are real
child processes (fork by default here; a dedicated test exercises spawn,
and CI runs the module under both), sharing the published world segment
and one cross-process detection cache.
"""

import asyncio
import multiprocessing
import time

import pytest

from repro.core.registry import SEARCH_METHODS
from repro.errors import ConfigError, QueryError, ServerOverloadedError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.serving import ServerConfig
from repro.serving.fleet import (
    FleetConfig,
    FleetRouter,
    replay_fleet,
)
from repro.serving.placement import (
    PLACEMENT_POLICIES,
    HashTenantPolicy,
    LeastLoadedPolicy,
    make_placement_policy,
    register_placement,
)
from repro.serving.workload import (
    WorkloadItem,
    load_workload,
    save_workload,
)

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical

METHODS = list(SEARCH_METHODS)

#: One query per registered method, tenants interleaved so tenant-affine
#: placement actually spreads work over both shards.
ALL_METHOD_ITEMS = [
    WorkloadItem(
        object="car",
        limit=4,
        method=method,
        run_seed=index,
        tenant=f"tenant-{index % 3}",
    )
    for index, method in enumerate(METHODS)
]


@pytest.fixture(autouse=True)
def no_leaked_shards():
    """Every test must reap its shard children — zombies fail the suite."""
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            process
            for process in multiprocessing.active_children()
            if process.name.startswith("repro-shard")
        ]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked shard processes: {leaked}")


@pytest.fixture(scope="module")
def solo_engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


@pytest.fixture(scope="module")
def solo_outcomes(solo_engine):
    """Reference outcomes: each workload item run alone, no fleet."""
    return {
        (item.method, item.run_seed): solo_engine.run(
            item.query(), method=item.method, run_seed=item.run_seed
        )
        for item in ALL_METHOD_ITEMS
    }


async def _launch(dataset, **overrides):
    overrides.setdefault("engine_seed", 11)
    return await FleetRouter.launch(dataset, **overrides)


# ---------------------------------------------------------------------------
# Placement policies (pure routing logic, no processes).
# ---------------------------------------------------------------------------


class _FakeShard:
    def __init__(self, index, active):
        self.index = index
        self.active = active


class TestPlacementPolicies:
    def test_hash_tenant_is_stable_and_tenant_affine(self):
        policy = HashTenantPolicy()
        shards = [_FakeShard(i, 0) for i in range(3)]
        a1 = policy.choose(WorkloadItem(object="car", tenant="alice"), shards)
        a2 = policy.choose(
            WorkloadItem(object="dog", tenant="alice", run_seed=9), shards
        )
        assert a1 == a2  # same tenant, same shard, whatever the query
        picked = {
            policy.choose(WorkloadItem(object="car", tenant=f"t{i}"), shards)
            for i in range(32)
        }
        assert len(picked) > 1  # different tenants do spread

    def test_least_loaded_picks_minimum_with_index_ties(self):
        policy = LeastLoadedPolicy()
        shards = [_FakeShard(0, 2), _FakeShard(1, 0), _FakeShard(2, 0)]
        item = WorkloadItem(object="car")
        assert policy.choose(item, shards) == 1  # tie broken by index

    def test_registry_round_trip_and_errors(self):
        assert set(PLACEMENT_POLICIES) >= {"hash_tenant", "least_loaded"}
        assert isinstance(make_placement_policy(None), HashTenantPolicy)
        policy = LeastLoadedPolicy()
        assert make_placement_policy(policy) is policy
        with pytest.raises(ConfigError, match="unknown placement"):
            make_placement_policy("nope")
        with pytest.raises(ConfigError, match="already registered"):
            register_placement("hash_tenant", HashTenantPolicy)


class TestWorkloadFleetFields:
    def test_shard_pin_and_pause_after_round_trip(self, tmp_path):
        items = [
            WorkloadItem(object="car", limit=2, shard=1, pause_after=3),
            WorkloadItem(object="car", limit=2),
        ]
        path = tmp_path / "w.json"
        save_workload(str(path), items)
        assert load_workload(str(path)) == items

    def test_pre_fleet_workload_files_still_load(self, tmp_path):
        # A file written before the fleet fields existed has neither key.
        path = tmp_path / "old.json"
        path.write_text('{"queries": [{"object": "car", "limit": 2}]}')
        (item,) = load_workload(str(path))
        assert item.shard is None
        assert item.pause_after is None

    def test_fleet_field_validation(self):
        with pytest.raises(ConfigError, match="shard"):
            WorkloadItem(object="car", shard=-1)
        with pytest.raises(ConfigError, match="pause_after"):
            WorkloadItem(object="car", pause_after=0)


# ---------------------------------------------------------------------------
# Replay identity across real shard processes.
# ---------------------------------------------------------------------------


class TestFleetReplayIdentity:
    @pytest.mark.parametrize("placement", ["hash_tenant", "least_loaded"])
    def test_all_methods_identical_to_solo_with_migration(
        self, placement, solo_outcomes
    ):
        """Every registered method through the fleet, one session migrated.

        The headline acceptance test: replay routes 7 methods across two
        shard processes under each placement policy; one extra session is
        staged with ``pause_after`` and live-migrated to the other shard
        mid-flight. Every outcome must be element-wise identical to its
        solo reference.
        """
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2, placement=placement)
            try:
                handles = await replay_fleet(
                    router, ALL_METHOD_ITEMS, time_scale=0.0
                )
                staged = await router.submit(
                    WorkloadItem(
                        object="car",
                        limit=4,
                        method="exsample",
                        run_seed=99,
                        tenant="mover",
                        shard=0,
                        pause_after=1,
                    )
                )
                assert await staged.wait() == "paused"
                await router.migrate(staged, 1)
                outcomes = [await h.result() for h in handles]
                migrated = await staged.result()
                assert staged.shard == 1
                assert staged.migrations == 1
                stats = await router.stats()
                return handles, outcomes, migrated, stats
            finally:
                await router.shutdown()

        handles, outcomes, migrated, stats = asyncio.run(go())
        if placement == "hash_tenant":
            # tenant-0 hashes to shard 0, tenant-1/2 to shard 1, so the
            # affine policy provably uses both shards. (least_loaded may
            # legitimately keep everything on shard 0 when sessions settle
            # faster than they arrive; the migration below still exercises
            # its second shard.)
            assert {h.shard for h in handles} == {0, 1}
        for item, outcome in zip(ALL_METHOD_ITEMS, outcomes):
            solo = solo_outcomes[(item.method, item.run_seed)]
            assert outcome.query == solo.query
            assert outcome.gt_count == solo.gt_count
            assert_traces_identical(outcome.trace, solo.trace)
        solo_engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        solo_moved = solo_engine.run(
            DistinctObjectQuery("car", limit=4), method="exsample", run_seed=99
        )
        assert_traces_identical(migrated.trace, solo_moved.trace)
        assert stats.migrations == 1
        assert stats.finished == len(ALL_METHOD_ITEMS) + 1

    def test_shard_pin_overrides_placement(self):
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2)
            try:
                pinned = [
                    await router.submit(
                        WorkloadItem(
                            object="car", limit=2, run_seed=i,
                            tenant="same-tenant", shard=i,
                        )
                    )
                    for i in range(2)
                ]
                for handle in pinned:
                    await handle.result()
                return [h.shard for h in pinned]
            finally:
                await router.shutdown()

        assert asyncio.run(go()) == [0, 1]


# ---------------------------------------------------------------------------
# Cross-process checkpoint migration under the spawn start method.
# ---------------------------------------------------------------------------


class TestSpawnContextMigration:
    def test_every_method_migrates_between_spawned_shards(
        self, solo_outcomes
    ):
        """Pause on a loaded shard, restore in a fresh spawn-context
        process, merged trace byte-identical — for every method."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2, context="spawn")
            try:
                staged = []
                for index, item in enumerate(ALL_METHOD_ITEMS):
                    handle = await router.submit(
                        WorkloadItem(
                            object=item.object,
                            limit=item.limit,
                            method=item.method,
                            run_seed=item.run_seed,
                            tenant=item.tenant,
                            shard=index % 2,
                            pause_after=2,
                        )
                    )
                    staged.append(handle)
                outcomes = []
                for handle in staged:
                    state = await handle.wait()
                    source = handle.shard
                    if state == "paused":
                        await router.migrate(handle, (source + 1) % 2)
                        assert handle.shard == (source + 1) % 2
                    outcomes.append(await handle.result())
                stats = await router.stats()
                return outcomes, [h.migrations for h in staged], stats
            finally:
                await router.shutdown()

        outcomes, migrations, stats = asyncio.run(go())
        assert sum(migrations) >= 1
        assert stats.migrations == sum(migrations)
        for item, outcome in zip(ALL_METHOD_ITEMS, outcomes):
            solo = solo_outcomes[(item.method, item.run_seed)]
            assert_traces_identical(outcome.trace, solo.trace)


# ---------------------------------------------------------------------------
# Fleet-level admission control and statistics.
# ---------------------------------------------------------------------------


class TestFleetAdmission:
    def test_router_queue_overflow_is_typed(self):
        dataset = make_tiny_dataset(seed=11)
        config = FleetConfig(
            n_shards=1,
            queue_capacity=0,
            server=ServerConfig(max_in_flight=1),
        )

        async def go():
            router = await FleetRouter.launch(
                dataset, config=config, engine_seed=11
            )
            try:
                # An exhaustive scan holds the single slot long enough to
                # observe the full shard deterministically.
                first = await router.submit(
                    WorkloadItem(object="car", limit=1000)
                )
                await first.admitted()
                with pytest.raises(
                    ServerOverloadedError, match="queue full"
                ):
                    await router.submit(
                        WorkloadItem(object="car", limit=1, run_seed=1),
                        wait=False,
                    )
                # The patient path backpressures instead and completes
                # once the first session departs.
                second_task = asyncio.ensure_future(
                    router.submit(
                        WorkloadItem(object="car", limit=1, run_seed=1)
                    )
                )
                outcome_first = await first.result()
                second = await second_task
                outcome_second = await second.result()
                return outcome_first, outcome_second
            finally:
                await router.shutdown()

        outcome_first, outcome_second = asyncio.run(go())
        assert outcome_first.num_results >= 1
        assert outcome_second.num_results >= 1

    def test_submit_after_shutdown_is_refused(self):
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=1)
            await router.shutdown()
            with pytest.raises(QueryError, match="shut down"):
                await router.submit(WorkloadItem(object="car", limit=1))

        asyncio.run(go())


class TestFleetStats:
    def test_cross_shard_cache_aggregation(self):
        """Shard 1 re-running shard 0's query must hit the shared memo,
        and the aggregated per-scope counters must see both processes."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2)
            try:
                first = await router.submit(
                    WorkloadItem(object="car", limit=3, shard=0)
                )
                await first.result()
                second = await router.submit(
                    WorkloadItem(object="car", limit=3, shard=1)
                )
                await second.result()
                return await router.stats()
            finally:
                await router.shutdown()

        stats = asyncio.run(go())
        assert stats.shards == 2
        assert stats.finished == 2
        assert stats.submitted == 2
        assert [s["finished"] for s in stats.per_shard] == [1, 1]
        cache = stats.cache
        assert cache is not None
        assert cache.policy == "shared"
        # Identical query, identical detector: every frame shard 1
        # touched was already memoized by shard 0.
        assert cache.hits > 0
        assert cache.per_scope, "per-scope breakdown must aggregate"
        assert sum(s.hits for s in cache.per_scope.values()) == cache.hits
        assert (
            sum(s.misses for s in cache.per_scope.values()) == cache.misses
        )

    def test_private_cache_fleet_merges_per_shard_infos(self):
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2, shared_cache=False)
            try:
                for shard in range(2):
                    handle = await router.submit(
                        WorkloadItem(object="car", limit=2, shard=shard)
                    )
                    await handle.result()
                return await router.stats()
            finally:
                await router.shutdown()

        stats = asyncio.run(go())
        cache = stats.cache
        assert cache is not None
        assert cache.policy != "shared"
        assert cache.misses > 0

    def test_describe_is_printable(self):
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(dataset, n_shards=2)
            try:
                handle = await router.submit(
                    WorkloadItem(object="car", limit=2)
                )
                await handle.result()
                return await router.stats()
            finally:
                await router.shutdown()

        text = asyncio.run(go()).describe()
        assert "fleet: 2 shards" in text
        assert "shard 0:" in text
        assert "cache:" in text
