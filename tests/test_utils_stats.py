"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    geometric_mean,
    median_and_band,
    percentile_of,
    running_max,
    trapezoid_auc,
)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_single_value(self):
        assert geometric_mean([3.7]) == pytest.approx(3.7)

    def test_paper_style_ratios(self):
        # A mix like Figure 5's bars: mostly >1 with one slowdown.
        ratios = [6.0, 3.7, 1.9, 1.2, 0.75]
        gm = geometric_mean(ratios)
        assert 1.0 < gm < 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=1,
            max_size=30,
        )
    )
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10))
    def test_scale_equivariance(self, values):
        gm = geometric_mean(values)
        scaled = geometric_mean([v * 2 for v in values])
        assert scaled == pytest.approx(2 * gm, rel=1e-9)


class TestMedianAndBand:
    def test_shapes(self):
        runs = np.arange(30).reshape(3, 10)
        med, lo, hi = median_and_band(runs)
        assert med.shape == lo.shape == hi.shape == (10,)

    def test_ordering(self):
        rng = np.random.default_rng(0)
        runs = rng.random((21, 15))
        med, lo, hi = median_and_band(runs)
        assert np.all(lo <= med + 1e-12)
        assert np.all(med <= hi + 1e-12)

    def test_identical_runs_collapse(self):
        runs = np.tile(np.arange(5.0), (4, 1))
        med, lo, hi = median_and_band(runs)
        assert np.array_equal(med, lo)
        assert np.array_equal(med, hi)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            median_and_band(np.arange(5.0))


class TestRunningMax:
    def test_monotone(self):
        out = running_max([1, 3, 2, 5, 4])
        assert list(out) == [1, 3, 3, 5, 5]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9), min_size=1))
    def test_never_decreases(self, values):
        out = running_max(values)
        assert np.all(np.diff(out) >= 0)


class TestTrapezoidAuc:
    def test_constant_curve(self):
        assert trapezoid_auc([0, 1, 2], [5, 5, 5]) == pytest.approx(5.0)

    def test_linear_curve(self):
        assert trapezoid_auc([0, 10], [0, 10]) == pytest.approx(5.0)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            trapezoid_auc([1], [1])

    def test_rejects_non_increasing_x(self):
        with pytest.raises(ValueError):
            trapezoid_auc([3, 1], [0, 0])


class TestPercentileOf:
    def test_median(self):
        assert percentile_of([1, 2, 3, 4, 5], 0.5) == pytest.approx(3.0)

    def test_extremes(self):
        values = list(range(11))
        assert percentile_of(values, 0.0) == 0
        assert percentile_of(values, 1.0) == 10
