"""Tests for the proxy-model scorer."""

import numpy as np
import pytest

from repro.detection.proxy import ProxyModel
from repro.errors import ConfigError

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset(seed=5)


class TestScores:
    def test_covers_all_frames(self, dataset):
        proxy = ProxyModel(dataset.world, "car", quality=0.85, seed=0)
        scores = proxy.score_all()
        assert scores.shape == (dataset.total_frames,)
        assert np.all((scores > 0) & (scores <= 1))

    def test_cached(self, dataset):
        proxy = ProxyModel(dataset.world, "car", quality=0.85, seed=0)
        assert proxy.score_all() is proxy.score_all()

    def test_deterministic(self, dataset):
        a = ProxyModel(dataset.world, "car", quality=0.85, seed=0).score_all()
        b = ProxyModel(dataset.world, "car", quality=0.85, seed=0).score_all()
        assert np.array_equal(a, b)

    def test_positive_frames_score_higher(self, dataset):
        proxy = ProxyModel(dataset.world, "car", quality=0.9, seed=0)
        scores = proxy.score_all()
        present = dataset.world.presence_mask("car")
        assert present.any() and (~present).any()
        assert scores[present].mean() > scores[~present].mean()


class TestQualityCalibration:
    @pytest.mark.parametrize("quality", [0.6, 0.8, 0.95])
    def test_empirical_auc_matches_quality(self, dataset, quality):
        proxy = ProxyModel(dataset.world, "car", quality=quality, seed=1)
        assert proxy.empirical_auc() == pytest.approx(quality, abs=0.05)

    def test_useless_proxy(self, dataset):
        proxy = ProxyModel(dataset.world, "car", quality=0.5, seed=2)
        assert proxy.empirical_auc() == pytest.approx(0.5, abs=0.05)

    def test_separation_monotone_in_quality(self, dataset):
        low = ProxyModel(dataset.world, "car", quality=0.6)
        high = ProxyModel(dataset.world, "car", quality=0.9)
        assert high.separation > low.separation


class TestValidation:
    def test_rejects_quality_out_of_range(self, dataset):
        with pytest.raises(ConfigError):
            ProxyModel(dataset.world, "car", quality=0.4)
        with pytest.raises(ConfigError):
            ProxyModel(dataset.world, "car", quality=1.0)

    def test_auc_requires_both_classes(self, dataset):
        proxy = ProxyModel(dataset.world, "car", quality=0.8, seed=0)
        # Class with no instances anywhere -> presence mask all False.
        empty = ProxyModel(dataset.world, "unicorn", quality=0.8, seed=0)
        with pytest.raises(ConfigError):
            empty.empirical_auc()
        assert proxy.empirical_auc() > 0.5
