"""Property-based round-trip tests for trace persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampler import SearchTrace
from repro.io import load_trace, save_trace
from repro.query.engine import FoundObject


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    d0s = draw(
        st.lists(
            st.integers(min_value=0, max_value=3), min_size=n, max_size=n
        )
    )
    payloads = []
    uid = 0
    for count in d0s:
        for _ in range(count):
            if draw(st.booleans()):
                payloads.append(uid)
            else:
                payloads.append(
                    FoundObject(
                        video=draw(st.integers(0, 5)),
                        frame=draw(st.integers(0, 10_000)),
                        class_name=draw(
                            st.sampled_from(["car", "person", "boat"])
                        ),
                        score=draw(st.floats(0.0, 1.0)),
                        box_xyxy=(0.0, 0.0, 10.0, 10.0),
                        instance_uid=uid if draw(st.booleans()) else None,
                        track_id=uid,
                    )
                )
            uid += 1
    return SearchTrace(
        chunks=np.array(
            draw(st.lists(st.integers(0, 7), min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        frames=np.arange(n, dtype=np.int64),
        d0s=np.array(d0s, dtype=np.int64),
        d1s=np.zeros(n, dtype=np.int64),
        costs=np.full(n, 0.05),
        results=payloads,
        upfront_cost=draw(st.floats(0.0, 100.0)),
        searcher=draw(st.sampled_from(["exsample", "random", "proxy"])),
    )


@given(trace=traces())
@settings(max_examples=25, deadline=None)
def test_round_trip_preserves_everything(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "t.npz"
    loaded = load_trace(save_trace(trace, path))
    assert np.array_equal(loaded.chunks, trace.chunks)
    assert np.array_equal(loaded.frames, trace.frames)
    assert np.array_equal(loaded.d0s, trace.d0s)
    assert np.allclose(loaded.costs, trace.costs)
    assert loaded.upfront_cost == pytest.approx(trace.upfront_cost)
    assert loaded.searcher == trace.searcher
    assert len(loaded.results) == len(trace.results)
    for original, restored in zip(trace.results, loaded.results):
        if isinstance(original, int):
            assert restored == original
        else:
            assert isinstance(restored, FoundObject)
            assert restored.instance_uid == original.instance_uid
            assert restored.class_name == original.class_name


@given(trace=traces())
@settings(max_examples=15, deadline=None)
def test_round_trip_preserves_metrics(trace, tmp_path_factory):
    from repro.query.metrics import precision, unique_instance_curve

    path = tmp_path_factory.mktemp("traces2") / "t.npz"
    loaded = load_trace(save_trace(trace, path))
    assert loaded.total_cost == pytest.approx(trace.total_cost)
    assert precision(loaded) == pytest.approx(precision(trace))
    assert np.array_equal(
        unique_instance_curve(loaded), unique_instance_curve(trace)
    )
