"""Tests for the simulated decoder's cost model."""

import pytest

from repro.errors import ConfigError
from repro.video.decoder import SimulatedDecoder


class TestRandomAccessCost:
    def test_keyframe_cheapest(self):
        decoder = SimulatedDecoder(keyframe_interval=20)
        on_key = decoder.random_access_cost(40)
        just_after = decoder.random_access_cost(41)
        just_before_next = decoder.random_access_cost(59)
        assert on_key < just_after < just_before_next

    def test_cost_pattern_periodic(self):
        decoder = SimulatedDecoder(keyframe_interval=20)
        assert decoder.random_access_cost(5) == decoder.random_access_cost(25)

    def test_worst_case_is_full_gop(self):
        decoder = SimulatedDecoder(
            keyframe_interval=20, per_frame_cost=1.0, seek_cost=0.0
        )
        assert decoder.random_access_cost(19) == pytest.approx(20.0)
        assert decoder.random_access_cost(20) == pytest.approx(1.0)


class TestReadAndDecode:
    def test_sequential_access_cheaper(self):
        decoder = SimulatedDecoder(keyframe_interval=20)
        decoder.read_and_decode(0, 9)
        sequential = decoder.read_and_decode(0, 10).decode_cost
        fresh = SimulatedDecoder(keyframe_interval=20)
        random = fresh.read_and_decode(0, 10).decode_cost
        assert sequential < random

    def test_video_switch_breaks_sequence(self):
        decoder = SimulatedDecoder(keyframe_interval=20)
        decoder.read_and_decode(0, 9)
        cost = decoder.read_and_decode(1, 10).decode_cost
        assert cost == decoder.random_access_cost(10)

    def test_rejects_negative_frame(self):
        with pytest.raises(ConfigError):
            SimulatedDecoder().read_and_decode(0, -1)


class TestSequentialScan:
    def test_linear_in_frames(self):
        decoder = SimulatedDecoder(per_frame_cost=0.01, seek_cost=0.1)
        assert decoder.sequential_scan_cost(100) == pytest.approx(1.1)

    def test_zero_frames_free(self):
        assert SimulatedDecoder().sequential_scan_cost(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            SimulatedDecoder().sequential_scan_cost(-1)


class TestValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            SimulatedDecoder(keyframe_interval=0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            SimulatedDecoder(per_frame_cost=-1)
