"""Tests for the shared-memory transport behind the parallel backbone.

The contracts under test:

* a published world pickles as a ~100-byte handle and the attached
  world answers every query identically to the original;
* ``parallel_traces``/``parallel_sweep_methods`` stay element-wise
  identical to serial under both fork and spawn start methods with
  ``shared_world`` on (the CI default fork would otherwise mask
  spawn-only serialization bugs);
* segment hygiene — the pool unlinks every ``repro_shm_*`` segment on
  normal exit and after an injected worker crash, and nothing stale is
  left in ``/dev/shm``;
* one :class:`SharedDetectionCache` serves every process of a pool.
"""

import os
import pickle
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from functools import partial

import numpy as np
import pytest

from repro.detection.cache import make_detection_cache
from repro.errors import ConfigError
from repro.experiments.parallel import (
    dataset_engine,
    parallel_map,
    parallel_sweep_methods,
    parallel_traces,
)
from repro.parallel.shm import (
    _ATTACHED_SEGMENTS,
    _ATTACHED_WORLDS,
    _LIVE_STORES,
    SEGMENT_PREFIX,
    SharedDetectionCache,
    SharedWorldStore,
    attach_shared_world,
)
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset


def _segments() -> set:
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-POSIX dev boxes
        return set()
    return {name for name in names if name.startswith(SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test in this module must leave /dev/shm as it found it."""
    before = _segments()
    yield
    assert _segments() == before


def _traces_equal(a, b):
    return (
        np.array_equal(a.chunks, b.chunks)
        and np.array_equal(a.frames, b.frames)
        and np.array_equal(a.d0s, b.d0s)
        and np.array_equal(a.d1s, b.d1s)
        and np.array_equal(a.costs, b.costs)
    )


@contextmanager
def _attach_as_worker_would(handle):
    """Attach a handle bypassing the same-process short-circuits.

    The segment mapping must outlive every zero-copy view, so cleanup
    (registry restore + unmap) runs only after the ``with`` body.
    """
    store = _LIVE_STORES.pop(handle.segment)
    try:
        yield attach_shared_world(handle)
    finally:
        _LIVE_STORES[handle.segment] = store
        _ATTACHED_WORLDS.pop(handle.segment, None)
        segment = _ATTACHED_SEGMENTS.pop(handle.segment, None)
        if segment is not None:
            segment.close()


class TestSharedWorldStore:
    def test_handle_pickling_and_lifecycle(self):
        world = make_tiny_dataset(seed=3).world
        by_value = pickle.dumps(world)
        with SharedWorldStore(world) as store:
            as_handle = pickle.dumps(world)
            assert len(as_handle) < 512 < len(by_value)
            assert store.handle.segment in _segments()
            # Same-process unpickling short-circuits to the original.
            assert pickle.loads(as_handle) is world
            # A world cannot be published twice.
            with pytest.raises(ConfigError):
                SharedWorldStore(world)
        assert store.handle.segment not in _segments()
        assert world._shared_handle is None
        # Unpublished again: by-value pickling is restored, bit for bit.
        assert pickle.dumps(world) == by_value
        store.close()  # idempotent

    def test_attached_world_is_equivalent(self):
        world = make_tiny_dataset(seed=4).world
        with SharedWorldStore(world) as store:
            with _attach_as_worker_would(store.handle) as attached:
                assert attached is not world
                assert attached.num_instances == world.num_instances
                assert attached.class_names() == world.class_names()
                for name in world.class_names():
                    assert attached.count_of(name) == world.count_of(name)
                    assert attached.instances_of(name) == world.instances_of(name)
                frames = np.arange(0, 1200, 7)
                for video in range(world.repository.num_videos):
                    got = attached.visible_uids_batch(video, frames)
                    want = world.visible_uids_batch(video, frames)
                    assert np.array_equal(got[0], want[0])
                    assert np.array_equal(got[1], want[1])
                uids = np.arange(world.num_instances)
                at = world.instance_arrays().starts
                assert np.array_equal(
                    attached.boxes_at(uids, at), world.boxes_at(uids, at)
                )
                assert np.array_equal(
                    attached.presence_mask("car"), world.presence_mask("car")
                )
                assert [v.fps for v in attached.repository.videos] == [
                    v.fps for v in world.repository.videos
                ]
                # Lazy instance materialization round-trips exact values.
                assert list(attached.instances) == list(world.instances)


# -- identity under fork and spawn -------------------------------------------


def _make_dataset_searcher(engine, class_name, run_idx):
    env = engine.environment(class_name, run_seed=run_idx)
    return engine.make_searcher("exsample", env, run_seed=run_idx)


def _sweep_engine():
    _, engine = dataset_engine("dashcam", 0.02, 13)
    return engine


@pytest.mark.parametrize("context", ["fork", "spawn"])
def test_parallel_traces_identical_with_shared_world(context):
    engine = _sweep_engine()
    make = partial(_make_dataset_searcher, engine, "person")
    serial = parallel_traces(make, 3, jobs=1, frame_budget=300)
    parallel = parallel_traces(
        make, 3, jobs=2, context=context, shared_world=True, frame_budget=300
    )
    assert len(serial) == len(parallel) == 3
    for a, b in zip(serial, parallel):
        assert _traces_equal(a, b)
    assert engine.dataset.world._shared_handle is None


@pytest.mark.parametrize("context", ["fork", "spawn"])
def test_parallel_sweep_identical_with_shared_world(context):
    engine = _sweep_engine()
    query = DistinctObjectQuery("person", limit=6)
    serial = parallel_sweep_methods(engine, query, jobs=1)
    parallel = parallel_sweep_methods(
        engine, query, jobs=2, context=context, shared_world=True
    )
    assert list(serial) == list(parallel)
    for method in serial:
        assert _traces_equal(serial[method].trace, parallel[method].trace)


# -- hygiene: crash and exit cleanup -----------------------------------------


def _world_probe(world, item):
    return (item, world.num_instances)


def _crash_with_world(world, item):
    os._exit(17)


def test_segments_unlinked_after_normal_pool_exit():
    world = make_tiny_dataset(seed=5).world
    results = parallel_map(
        partial(_world_probe, world), range(4), jobs=2, shared_world=True
    )
    assert results == [(i, world.num_instances) for i in range(4)]
    assert world._shared_handle is None


def test_segments_unlinked_after_worker_crash():
    world = make_tiny_dataset(seed=6).world
    with pytest.raises(BrokenProcessPool):
        parallel_map(
            partial(_crash_with_world, world), range(4), jobs=2, shared_world=True
        )
    assert world._shared_handle is None
    # The autouse fixture asserts /dev/shm itself is clean.


# -- the cross-process detection memo ----------------------------------------


def _observe_with_engine(engine, run_seed):
    sizes = engine.dataset.chunk_map.sizes()
    rng = np.random.default_rng(0)
    picks = [
        (int(c), int(rng.integers(0, sizes[c])))
        for c in rng.integers(0, sizes.size, 48)
    ]
    observations = engine.environment("person", run_seed=run_seed).observe_batch(picks)
    info = engine.cache_info()
    hits, misses = (info.hits, info.misses) if info is not None else (0, 0)
    return [(o.d0, o.d1, o.cost) for o in observations], hits, misses


def _touch_and_publish(cache, key):
    """Worker body: one warm hit, one cold miss, publish, report pid."""
    cache.get(key)  # row written by the parent: a cross-process hit
    cache.get(("scope-cold",) + tuple(key[1:]))  # nothing there: a miss
    cache.publish_counters()
    return os.getpid()


class TestSharedCacheCounterAggregation:
    """publish_counters/aggregate_info: the fleet-stats counter plumbing."""

    def test_aggregate_sums_counters_of_every_publisher(self):
        cache = SharedDetectionCache()
        key = ("scope-warm", 0, 1)
        cache.put(key, ["row"])
        parallel_map(partial(_touch_and_publish, cache), [key, key], jobs=2)
        info = cache.aggregate_info()
        assert info.policy == "shared"
        # Two probes, each 1 warm hit + 1 cold miss; the parent's own
        # counters (published during aggregation) add zero.
        assert (info.hits, info.misses) == (2, 2)
        assert info.per_scope["scope-warm"].hits == 2
        assert info.per_scope["scope-warm"].misses == 0
        assert info.per_scope["scope-cold"].misses == 2
        # Local info() stays this-process-only by design.
        assert (cache.info().hits, cache.info().misses) == (0, 0)
        cache.clear()

    def test_counter_rows_are_not_cache_entries(self):
        cache = SharedDetectionCache()
        key = ("scope", 0, 1)
        cache.put(key, ["row"])
        cache.get(key)
        cache.publish_counters()
        assert len(cache) == 1
        assert cache.info().size == 1
        assert cache.aggregate_info().size == 1
        cache.clear()

    def test_clone_publishers_keep_distinct_counter_rows(self):
        """Every cache instance publishes under its own token, so two
        publishers in one process (e.g. re-pickled per pool task) never
        clobber each other's rows."""
        cache = SharedDetectionCache()
        key = ("scope", 0, 1)
        cache.put(key, ["row"])
        cache.get(key)
        clone = pickle.loads(pickle.dumps(cache))
        clone.get(key)
        clone.get(("scope-other", 0, 1))
        clone.publish_counters()
        info = cache.aggregate_info()
        assert (info.hits, info.misses) == (2, 1)
        assert info.per_scope["scope"].hits == 2
        assert info.per_scope["scope-other"].misses == 1
        cache.clear()


class TestSharedDetectionCache:
    def test_local_semantics_match_detection_cache(self):
        cache = SharedDetectionCache()
        key = (0, 10, "person")
        assert cache.get(key) is None
        cache.put(key, ["row-a", "row-b"])
        hit = cache.get(key)
        assert hit == ["row-a", "row-b"]
        hit.append("mutated")  # a copy, like DetectionCache.get
        assert cache.get(key) == ["row-a", "row-b"]
        info = cache.info()
        assert (info.policy, info.hits, info.misses) == ("shared", 2, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.info().requests == 0

    def test_pickle_ships_the_store_not_the_counters(self):
        cache = SharedDetectionCache()
        cache.put((0, 1, None), ["row"])
        cache.get((0, 1, None))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.hits == clone.misses == 0
        assert clone.get((0, 1, None)) == ["row"]  # same shared store
        cache.clear()

    def test_make_detection_cache_shared_spec(self):
        cache = make_detection_cache("shared")
        assert isinstance(cache, SharedDetectionCache)
        assert make_detection_cache("shared") is cache  # process singleton
        assert make_detection_cache(cache) is cache

    def test_one_store_serves_several_detectors_without_collisions(self):
        """Keys are namespaced by detector identity (seed/profile/world).

        A multi-dataset sweep's workers all adopt one shared cache, so
        detectors over *different* worlds — which reuse the same
        ``(video, frame)`` coordinates — must never read each other's
        rows. Regression test: un-scoped keys made fig5 crash on
        cross-world uids.
        """
        from repro.query.engine import QueryEngine
        from repro.video.datasets import make_dataset

        cache = SharedDetectionCache()
        engines = {}
        for name, seed in (("dashcam", 5), ("amsterdam", 5), ("dashcam", 6)):
            dataset = make_dataset(name, scale=0.02, seed=seed)
            engines[(name, seed)] = QueryEngine(
                dataset, seed=seed, detection_cache=cache
            )
        for (name, seed), engine in engines.items():
            reference = QueryEngine(
                make_dataset(name, scale=0.02, seed=seed),
                seed=seed,
                detection_cache="off",
            )
            for run_seed in (0, 1):  # second lap reads the shared rows
                got = _observe_with_engine(engine, run_seed)[0]
                assert got == _observe_with_engine(reference, run_seed)[0]
        scopes = {
            engine.detector.cache_scope() for engine in engines.values()
        }
        assert len(scopes) == len(engines)
        cache.clear()

    def test_fresh_workers_hit_entries_from_previous_pool(self):
        from repro.query.engine import QueryEngine
        from repro.video.datasets import make_dataset

        dataset = make_dataset("dashcam", scale=0.02, seed=5)
        engine = QueryEngine(dataset, seed=5, detection_cache="shared")
        engine.detection_cache.clear()
        fn = partial(_observe_with_engine, engine)
        first = parallel_map(fn, [0, 1], jobs=2, shared_world=True)
        second = parallel_map(fn, [0, 1], jobs=2, shared_world=True)
        assert [obs for obs, _, _ in first] == [obs for obs, _, _ in second]
        # Second pool's workers start with cold local counters; their hits
        # can only come from entries another process wrote to the store.
        assert all(hits > 0 and misses == 0 for _, hits, misses in second)
        # Serial reference: identical observations without any sharing.
        reference = QueryEngine(
            make_dataset("dashcam", scale=0.02, seed=5), seed=5, detection_cache="off"
        )
        for run_seed, (observations, _, _) in enumerate(first):
            assert _observe_with_engine(reference, run_seed)[0] == observations
        engine.detection_cache.clear()
