"""Tests for the §IV temporal simulation environment."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.theory.instances import InstancePopulation
from repro.theory.temporal_sim import TemporalEnvironment


@pytest.fixture
def pop():
    return InstancePopulation(
        starts=np.array([0, 40, 85]),
        durations=np.array([10, 30, 10]),
        total_frames=100,
    )


class TestConstruction:
    def test_even_chunks(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        assert list(env.chunk_sizes()) == [25, 25, 25, 25]

    def test_bounds_must_span_timeline(self, pop):
        with pytest.raises(DatasetError):
            TemporalEnvironment(pop, np.array([0, 50]))
        with pytest.raises(DatasetError):
            TemporalEnvironment(pop, np.array([10, 100]))

    def test_bounds_must_increase(self, pop):
        with pytest.raises(DatasetError):
            TemporalEnvironment(pop, np.array([0, 50, 50, 100]))


class TestObserve:
    def test_first_sighting_new(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        obs = env.observe(0, 5)  # frame 5: instance 0 visible
        assert obs.d0 == 1
        assert obs.d1 == 0
        assert obs.results == [0]

    def test_second_sighting_is_d1_not_result(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        env.observe(0, 5)
        obs = env.observe(0, 7)  # instance 0 again
        assert obs.d0 == 0
        assert obs.d1 == 1
        assert obs.results == []

    def test_empty_frame(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        obs = env.observe(0, 20)  # nothing visible
        assert (obs.d0, obs.d1) == (0, 0)

    def test_instance_spanning_chunks(self, pop):
        """Instance 1 covers frames [40, 70): chunks 1 and 2."""
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        first = env.observe(1, 20)   # global frame 45
        second = env.observe(2, 10)  # global frame 60
        assert first.d0 == 1
        assert second.d0 == 0
        assert second.d1 == 1

    def test_cost_parameter(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4, frame_cost=2.5)
        assert env.observe(0, 0).cost == 2.5

    def test_frame_out_of_chunk_rejected(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        with pytest.raises(DatasetError):
            env.observe(0, 30)

    def test_reset_forgets(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        env.observe(0, 5)
        env.reset()
        obs = env.observe(0, 5)
        assert obs.d0 == 1

    def test_distinct_found_tracks_counter(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        env.observe(0, 5)
        env.observe(1, 20)
        assert env.distinct_found() == 2


class TestVisibleInstances:
    def test_matches_population(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        for frame in range(0, 100, 7):
            assert set(env.visible_instances(frame)) == set(
                pop.visible_at(frame)
            )

    def test_num_instances(self, pop):
        env = TemporalEnvironment.with_even_chunks(pop, 4)
        assert env.num_instances == 3
