"""Tests for chunking policies and the chunk map."""

import numpy as np
import pytest

from repro.errors import ChunkingError
from repro.video.chunks import (
    AutoChunker,
    Chunk,
    ChunkMap,
    FixedDurationChunker,
    PerClipChunker,
)
from repro.video.video import Video, VideoRepository


@pytest.fixture
def repo():
    return VideoRepository(
        [
            Video("a", num_frames=1000, fps=10),  # 100 seconds
            Video("b", num_frames=250, fps=10),
        ]
    )


class TestChunk:
    def test_size(self):
        assert Chunk(0, 10, 30).size == 20

    def test_rejects_empty(self):
        with pytest.raises(ChunkingError):
            Chunk(0, 10, 10)


class TestFixedDurationChunker:
    def test_exact_partition(self, repo):
        cmap = FixedDurationChunker(minutes=0.5).chunk(repo)  # 300 frames
        assert cmap.sizes().sum() == repo.total_frames
        # Video a: 300+300+300+100; video b: 250.
        assert cmap.num_chunks == 5
        assert list(cmap.sizes()) == [300, 300, 300, 100, 250]

    def test_never_spans_videos(self, repo):
        cmap = FixedDurationChunker(minutes=10).chunk(repo)
        assert cmap.num_chunks == 2  # one chunk per video (duration > video)

    def test_rejects_bad_duration(self):
        with pytest.raises(ChunkingError):
            FixedDurationChunker(minutes=0)


class TestPerClipChunker:
    def test_one_chunk_per_video(self, repo):
        cmap = PerClipChunker().chunk(repo)
        assert cmap.num_chunks == repo.num_videos
        assert list(cmap.sizes()) == [1000, 250]


class TestChunkMap:
    def test_address_translation(self, repo):
        cmap = FixedDurationChunker(minutes=0.5).chunk(repo)
        video, frame = cmap.to_video_frame(1, 10)
        assert (video, frame) == (0, 310)
        assert cmap.to_global(1, 10) == 310
        # The last chunk lives in video b.
        video, frame = cmap.to_video_frame(4, 0)
        assert (video, frame) == (1, 0)
        assert cmap.to_global(4, 0) == 1000

    def test_global_bounds(self, repo):
        cmap = FixedDurationChunker(minutes=0.5).chunk(repo)
        bounds = cmap.global_bounds()
        assert bounds[0] == 0
        assert bounds[-1] == repo.total_frames
        assert np.all(np.diff(bounds) > 0)

    def test_chunk_of_global_roundtrip(self, repo):
        cmap = FixedDurationChunker(minutes=0.5).chunk(repo)
        for chunk in range(cmap.num_chunks):
            for within in (0, int(cmap.sizes()[chunk]) - 1):
                g = cmap.to_global(chunk, within)
                assert cmap.chunk_of_global(g) == chunk

    def test_within_bounds_checked(self, repo):
        cmap = PerClipChunker().chunk(repo)
        with pytest.raises(ChunkingError):
            cmap.to_video_frame(0, 1000)
        with pytest.raises(ChunkingError):
            cmap.to_global(1, 250)
        with pytest.raises(ChunkingError):
            cmap.chunk_of_global(respository_frame := repo.total_frames)

    def test_partition_must_be_exact(self, repo):
        with pytest.raises(ChunkingError):
            ChunkMap(repo, [Chunk(0, 0, 1000)])  # misses video b

    def test_chunk_must_fit_video(self, repo):
        with pytest.raises(ChunkingError):
            ChunkMap(repo, [Chunk(0, 0, 1001), Chunk(1, 0, 249)])

    def test_empty_chunk_list(self, repo):
        with pytest.raises(ChunkingError):
            ChunkMap(repo, [])


class TestAutoChunker:
    def test_target_scales_with_budget(self, repo):
        small = AutoChunker(expected_budget=64).target_chunks(repo)
        large = AutoChunker(expected_budget=6400).target_chunks(repo)
        assert small < large

    def test_bounds(self, repo):
        chunker = AutoChunker(expected_budget=10**9, max_chunks=128)
        assert chunker.target_chunks(repo) <= 128
        tiny = AutoChunker(expected_budget=1)
        assert tiny.target_chunks(repo) >= 2

    def test_partition_valid(self, repo):
        cmap = AutoChunker(expected_budget=640).chunk(repo)
        assert cmap.sizes().sum() == repo.total_frames
        assert np.all(cmap.sizes() > 0)

    def test_rejects_bad_config(self):
        with pytest.raises(ChunkingError):
            AutoChunker(expected_budget=0)
        with pytest.raises(ChunkingError):
            AutoChunker(expected_budget=10, samples_per_chunk=0)
