"""Tests for the §III-D occupancy simulator (fast path vs literal path)."""

import numpy as np
import pytest

from repro.core.estimator import expected_n1, expected_r
from repro.errors import DatasetError
from repro.theory.coin_sim import (
    RunTuples,
    first_two_appearances,
    run_statistics_at,
    simulate_many_runs,
    simulate_run_fast,
    simulate_run_literal,
)
from repro.utils.rng import spawn_rng


class TestFirstTwoAppearances:
    def test_ordering(self):
        p = np.full(1000, 0.1)
        t1, t2 = first_two_appearances(p, spawn_rng(0, "a"))
        assert np.all(t1 >= 1)
        assert np.all(t2 > t1)

    def test_geometric_mean_gap(self):
        p = np.full(50_000, 0.02)
        t1, _ = first_two_appearances(p, spawn_rng(1, "a"))
        assert np.mean(t1) == pytest.approx(50.0, rel=0.05)

    def test_rejects_degenerate_probabilities(self):
        with pytest.raises(DatasetError):
            first_two_appearances(np.array([0.0]), spawn_rng(0, "a"))
        with pytest.raises(DatasetError):
            first_two_appearances(np.array([1.0]), spawn_rng(0, "a"))


class TestRunStatistics:
    def test_hand_computed_case(self):
        p = np.array([0.5, 0.5, 0.5])
        t1 = np.array([1, 3, 10])
        t2 = np.array([2, 8, 12])
        tuples = run_statistics_at(p, t1, t2, np.array([1, 4, 9, 11]))
        # n=1: only instance 0 seen once; unseen = {1,2} -> R = 1.0
        # n=4: inst0 seen twice, inst1 once; R = 0.5 (inst2 unseen)
        # n=9: inst0 twice, inst1 twice; R = 0.5
        # n=11: inst2 now seen once; R = 0
        assert list(tuples.n1) == [1, 1, 0, 1]
        assert list(tuples.r_next) == [1.0, 0.5, 0.5, 0.0]

    def test_fast_matches_expectations(self):
        """Fast-path means agree with the exact closed forms."""
        p = spawn_rng(2, "p").uniform(0.001, 0.05, size=200)
        checkpoints = np.array([10, 50, 200])
        tuples = simulate_many_runs(p, checkpoints, 800, spawn_rng(3, "r"))
        for n in checkpoints:
            mask = tuples.n == n
            assert np.mean(tuples.n1[mask]) == pytest.approx(
                expected_n1(p, int(n)), rel=0.08
            )
            assert np.mean(tuples.r_next[mask]) == pytest.approx(
                expected_r(p, int(n)), rel=0.08
            )

    def test_fast_matches_literal_distribution(self):
        """The appearance-time shortcut and literal coin tossing agree."""
        p = np.array([0.05, 0.1, 0.02, 0.3, 0.15])
        max_n = 40
        checkpoints = np.arange(1, max_n + 1)
        fast_n1 = []
        lit_n1 = []
        for seed in range(400):
            fast = simulate_run_fast(p, checkpoints, spawn_rng(seed, "f"))
            lit = simulate_run_literal(p, max_n, spawn_rng(seed, "l"))
            fast_n1.append(fast.n1)
            lit_n1.append(lit.n1)
        fast_mean = np.mean(fast_n1, axis=0)
        lit_mean = np.mean(lit_n1, axis=0)
        assert np.allclose(fast_mean, lit_mean, atol=0.15)

    def test_r_next_monotone_nonincreasing_per_run(self):
        p = spawn_rng(4, "p").uniform(0.01, 0.1, size=50)
        tuples = simulate_run_fast(p, np.arange(1, 100), spawn_rng(5, "r"))
        assert np.all(np.diff(tuples.r_next) <= 1e-12)


class TestRunTuples:
    def test_at_exact_match(self):
        tuples = RunTuples(
            n=np.array([100, 100, 200]),
            n1=np.array([5, 6, 5]),
            r_next=np.array([0.1, 0.2, 0.3]),
        )
        values = tuples.at(100, 5, n_tolerance=0.0)
        assert list(values) == [0.1]

    def test_at_with_tolerance(self):
        tuples = RunTuples(
            n=np.array([95, 100, 105, 200]),
            n1=np.array([5, 5, 5, 5]),
            r_next=np.array([0.1, 0.2, 0.3, 0.9]),
        )
        values = tuples.at(100, 5, n_tolerance=0.06)
        assert sorted(values) == [0.1, 0.2, 0.3]

    def test_concatenate(self):
        a = RunTuples(np.array([1]), np.array([0]), np.array([0.5]))
        b = RunTuples(np.array([2]), np.array([1]), np.array([0.25]))
        merged = RunTuples.concatenate([a, b])
        assert merged.size == 2

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            RunTuples(np.array([1, 2]), np.array([0]), np.array([0.5]))

    def test_rejects_zero_runs(self):
        with pytest.raises(DatasetError):
            simulate_many_runs(
                np.array([0.1]), np.array([5]), 0, spawn_rng(0, "x")
            )
