"""Tests for Gamma beliefs and the chunk-selection policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belief import (
    BayesUCBPolicy,
    GammaBelief,
    GreedyMeanPolicy,
    ThompsonPolicy,
    UniformPolicy,
    beliefs_from_counts,
    make_policy,
)
from repro.errors import ConfigError
from repro.utils.rng import spawn_rng


class TestGammaBelief:
    def test_mean_matches_point_estimate(self):
        """Eq. III.4's parameters make the mean equal N1/n (plus prior)."""
        belief = GammaBelief(alpha=5.1, beta=101.0)
        assert belief.mean == pytest.approx(5.1 / 101.0)

    def test_variance_matches_bound_shape(self):
        belief = GammaBelief(alpha=5.1, beta=101.0)
        assert belief.variance == pytest.approx(5.1 / 101.0**2)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ConfigError):
            GammaBelief(alpha=0.0, beta=1.0)
        with pytest.raises(ConfigError):
            GammaBelief(alpha=1.0, beta=-1.0)

    def test_samples_nonnegative(self):
        belief = GammaBelief(alpha=0.1, beta=1.0)
        samples = belief.sample(spawn_rng(0, "s"), size=1000)
        assert np.all(samples >= 0)

    def test_sample_mean_converges(self):
        belief = GammaBelief(alpha=4.0, beta=8.0)
        samples = belief.sample(spawn_rng(1, "s"), size=50_000)
        assert np.mean(samples) == pytest.approx(belief.mean, rel=0.05)

    def test_quantiles_monotone(self):
        belief = GammaBelief(alpha=2.0, beta=3.0)
        qs = [belief.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_pdf_integrates_to_one(self):
        belief = GammaBelief(alpha=3.0, beta=2.0)
        x = np.linspace(0, 20, 20_000)
        mass = np.trapezoid(belief.pdf(x), x)
        assert mass == pytest.approx(1.0, abs=1e-3)

    @given(
        st.floats(min_value=0.01, max_value=50),
        st.floats(min_value=0.01, max_value=50),
    )
    @settings(max_examples=30)
    def test_quantile_inverts_cdf_ordering(self, alpha, beta):
        belief = GammaBelief(alpha=alpha, beta=beta)
        assert belief.quantile(0.25) <= belief.quantile(0.75)


class TestBeliefsFromCounts:
    def test_vectorised_parameters(self):
        alphas, betas = beliefs_from_counts(
            np.array([0, 3]), np.array([0, 10]), alpha0=0.1, beta0=1.0
        )
        assert alphas == pytest.approx([0.1, 3.1])
        assert betas == pytest.approx([1.0, 11.0])

    def test_rejects_parameters_that_go_nonpositive(self):
        with pytest.raises(ConfigError):
            beliefs_from_counts(np.array([-1.0]), np.array([5]), 0.5, 1.0)


def _flat_params(n_chunks):
    return np.full(n_chunks, 0.1), np.full(n_chunks, 1.0)


class TestThompsonPolicy:
    def test_respects_active_mask(self):
        policy = ThompsonPolicy()
        alphas, betas = _flat_params(5)
        active = np.array([False, False, True, False, False])
        rng = spawn_rng(0, "p")
        for _ in range(20):
            choice = policy.choose(alphas, betas, active, rng, step=1)
            assert choice[0] == 2

    def test_batch_shape(self):
        policy = ThompsonPolicy()
        alphas, betas = _flat_params(4)
        active = np.ones(4, dtype=bool)
        choices = policy.choose(alphas, betas, active, spawn_rng(1, "p"), 1, batch=7)
        assert choices.shape == (7,)
        assert np.all((choices >= 0) & (choices < 4))

    def test_prefers_strong_chunk(self):
        policy = ThompsonPolicy()
        alphas = np.array([0.1, 20.1, 0.1])
        betas = np.array([30.0, 30.0, 30.0])
        active = np.ones(3, dtype=bool)
        choices = policy.choose(
            alphas, betas, active, spawn_rng(2, "p"), 1, batch=500
        )
        counts = np.bincount(choices, minlength=3)
        assert counts[1] > 400

    def test_explores_ties_evenly(self):
        """Identical beliefs -> roughly uniform choice (breaks ties randomly)."""
        policy = ThompsonPolicy()
        alphas, betas = _flat_params(4)
        active = np.ones(4, dtype=bool)
        choices = policy.choose(
            alphas, betas, active, spawn_rng(3, "p"), 1, batch=4000
        )
        counts = np.bincount(choices, minlength=4)
        assert counts.min() > 700


class TestBayesUCBPolicy:
    def test_prefers_uncertain_over_certain_equal_mean(self):
        """Same posterior mean, fewer samples -> higher quantile -> chosen."""
        policy = BayesUCBPolicy()
        alphas = np.array([1.0, 10.0])
        betas = np.array([10.0, 100.0])  # both mean 0.1
        active = np.ones(2, dtype=bool)
        choice = policy.choose(alphas, betas, active, spawn_rng(0, "p"), step=5)
        assert choice[0] == 0

    def test_quantile_tightens_with_step(self):
        policy = BayesUCBPolicy()
        alphas = np.array([2.0])
        betas = np.array([10.0])
        from scipy import stats

        q_early = 1 - 1 / (1 * 1.0 + 1)
        q_late = 1 - 1 / (1000 * 1.0 + 1)
        early = stats.gamma.ppf(q_early, a=2.0, scale=0.1)
        late = stats.gamma.ppf(q_late, a=2.0, scale=0.1)
        assert late > early  # later steps use a higher quantile

    def test_respects_active_mask(self):
        policy = BayesUCBPolicy()
        alphas, betas = _flat_params(3)
        active = np.array([False, True, False])
        choice = policy.choose(alphas, betas, active, spawn_rng(1, "p"), step=2)
        assert choice[0] == 1

    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigError):
            BayesUCBPolicy(horizon=0)


class TestGreedyAndUniform:
    def test_greedy_picks_max_mean(self):
        policy = GreedyMeanPolicy()
        alphas = np.array([1.0, 5.0, 2.0])
        betas = np.array([10.0, 10.0, 10.0])
        active = np.ones(3, dtype=bool)
        choice = policy.choose(alphas, betas, active, spawn_rng(0, "p"), 1)
        assert choice[0] == 1

    def test_uniform_covers_active(self):
        policy = UniformPolicy()
        alphas, betas = _flat_params(4)
        active = np.array([True, False, True, False])
        choices = policy.choose(
            alphas, betas, active, spawn_rng(1, "p"), 1, batch=200
        )
        assert set(np.unique(choices)) <= {0, 2}
        assert len(set(np.unique(choices))) == 2

    def test_uniform_raises_when_nothing_active(self):
        policy = UniformPolicy()
        alphas, betas = _flat_params(2)
        with pytest.raises(ConfigError):
            policy.choose(alphas, betas, np.zeros(2, bool), spawn_rng(2, "p"), 1)


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("thompson", ThompsonPolicy),
            ("bayes_ucb", BayesUCBPolicy),
            ("greedy", GreedyMeanPolicy),
            ("uniform", UniformPolicy),
        ],
    )
    def test_dispatch(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("epsilon-greedy")


class TestVectorPriorsInBeliefs:
    """Per-chunk alpha0/beta0 arrays flow through Eq. III.4 element-wise."""

    def test_vector_priors_add_element_wise(self):
        n1 = np.array([0.0, 3.0, 1.0])
        n = np.array([0.0, 10.0, 4.0])
        alpha0 = np.array([0.1, 2.0, 0.5])
        beta0 = np.array([1.0, 11.0, 4.0])
        alphas, betas = beliefs_from_counts(n1, n, alpha0, beta0)
        assert alphas.tolist() == [0.1, 5.0, 1.5]
        assert betas.tolist() == [1.0, 21.0, 8.0]

    def test_scalar_prior_on_one_side_broadcasts(self):
        alphas, betas = beliefs_from_counts(
            np.array([1.0, 2.0]), np.array([5.0, 6.0]),
            0.1, np.array([1.0, 2.0]),
        )
        assert alphas.tolist() == [1.1, 2.1]
        assert betas.tolist() == [6.0, 8.0]

    def test_warm_start_equals_posterior_of_the_recorded_run(self):
        """Priors built from recorded counts ARE the earlier posterior."""
        n1_old = np.array([2.0, 0.0])
        n_old = np.array([6.0, 3.0])
        post_alpha, post_beta = beliefs_from_counts(n1_old, n_old, 0.1, 1.0)
        warm_alpha, warm_beta = beliefs_from_counts(
            np.zeros(2), np.zeros(2), post_alpha, post_beta
        )
        assert warm_alpha.tolist() == post_alpha.tolist()
        assert warm_beta.tolist() == post_beta.tolist()

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigError, match="2 entries for 3 chunks"):
            beliefs_from_counts(
                np.zeros(3), np.zeros(3), np.array([0.1, 0.2]), 1.0
            )
        with pytest.raises(ConfigError, match="entries for"):
            beliefs_from_counts(
                np.zeros(3), np.zeros(3), 0.1, np.array([1.0, 2.0])
            )

    def test_rejects_2d_and_nonpositive_arrays(self):
        with pytest.raises(ConfigError, match="1-D"):
            beliefs_from_counts(
                np.zeros(2), np.zeros(2), np.ones((2, 1)), 1.0
            )
        with pytest.raises(ConfigError, match="positive"):
            beliefs_from_counts(
                np.zeros(2), np.zeros(2), np.array([0.1, 0.0]), 1.0
            )
        with pytest.raises(ConfigError, match="positive"):
            beliefs_from_counts(
                np.zeros(2), np.zeros(2), 0.1, np.array([1.0, np.inf])
            )
