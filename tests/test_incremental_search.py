"""Incremental querying: successive run() calls continue one search.

A searcher's state — per-chunk beliefs, frame orders, drawn-frame sets —
lives on the searcher, not the trace, so calling ``run`` again continues
exactly where the previous call stopped: no frame is ever resampled, and the
beliefs keep everything already learned. This is the "find 10 more" user
interaction pattern for limit queries.
"""

import numpy as np

from repro.core.config import ExSampleConfig
from repro.core.environment import CallbackEnvironment, Observation
from repro.core.sampler import ExSampleSearcher
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.utils.rng import RngFactory

from tests.conftest import make_tiny_dataset


def hit_env(sizes, modulus=4):
    def observe(chunk, frame):
        found = int((chunk * 997 + frame) % modulus == 0)
        return Observation(
            d0=found, d1=0, results=[chunk * 10_000 + frame] * found, cost=1.0
        )

    return CallbackEnvironment(sizes, observe)


class TestIncrementalRuns:
    def test_no_frame_resampled_across_runs(self):
        env = hit_env([100, 100, 100])
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        first = searcher.run(result_limit=10)
        second = searcher.run(result_limit=10)
        pairs_first = set(zip(first.chunks.tolist(), first.frames.tolist()))
        pairs_second = set(zip(second.chunks.tolist(), second.frames.tolist()))
        assert not pairs_first & pairs_second

    def test_results_are_new_each_time(self):
        env = hit_env([100, 100, 100])
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        first = searcher.run(result_limit=10)
        second = searcher.run(result_limit=10)
        assert first.num_results >= 10
        assert second.num_results >= 10
        assert not set(first.results) & set(second.results)

    def test_beliefs_carry_over(self):
        """The second run starts informed: it needs no more samples per
        result than the first (statistically; assert generously)."""
        env = hit_env([400, 400, 400, 400], modulus=16)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=1), rng=RngFactory(1))
        first = searcher.run(result_limit=15)
        state_after_first = searcher.stats.total_samples
        second = searcher.run(result_limit=15)
        assert searcher.stats.total_samples == state_after_first + second.num_samples
        assert second.num_samples <= first.num_samples * 2

    def test_runs_eventually_exhaust(self):
        env = hit_env([30, 30])
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=2), rng=RngFactory(2))
        seen = 0
        for _ in range(10):
            trace = searcher.run(frame_budget=10)
            seen += trace.num_samples
            if trace.num_samples == 0:
                break
        assert seen == 60


class TestEngineSearcherKwargs:
    def test_sequential_stride_kwarg(self):
        engine = QueryEngine(make_tiny_dataset(seed=16), seed=16)
        outcome = engine.run(
            DistinctObjectQuery("car", frame_budget=10),
            method="sequential",
            stride=50,
        )
        # First frames of a stride-50 scan within chunk 0.
        assert list(outcome.trace.frames[:3]) == [0, 50, 100]

    def test_proxy_dedup_window_kwarg(self):
        engine = QueryEngine(make_tiny_dataset(seed=16), seed=16)
        tight = engine.run(
            DistinctObjectQuery("car", frame_budget=30),
            method="proxy",
            dedup_window_s=0.0,
        )
        spread = engine.run(
            DistinctObjectQuery("car", frame_budget=30),
            method="proxy",
            dedup_window_s=5.0,
        )
        def min_gap(trace):
            order = np.sort(
                trace.chunks.astype(np.int64) * 10**6 + trace.frames
            )
            return np.min(np.diff(order)) if order.size > 1 else 0

        assert min_gap(spread.trace) >= min_gap(tight.trace)

    def test_oracle_budget_hint_kwarg(self):
        engine = QueryEngine(make_tiny_dataset(seed=16), seed=16)
        outcome = engine.run(
            DistinctObjectQuery("bicycle", limit=3),
            method="oracle",
            sample_budget_hint=500,
        )
        assert outcome.num_results >= 3

    def test_proxy_quality_kwarg(self):
        engine = QueryEngine(make_tiny_dataset(seed=16), seed=16)
        sharp = engine.run(
            DistinctObjectQuery("car", limit=5),
            method="proxy",
            proxy_quality=0.99,
        )
        dull = engine.run(
            DistinctObjectQuery("car", limit=5),
            method="proxy",
            proxy_quality=0.5,
        )
        assert sharp.trace.num_samples <= dull.trace.num_samples
