"""Tests for the six evaluation dataset builders."""

import pytest

from repro.errors import DatasetError
from repro.theory.skew import skew_metric
from repro.video.datasets import DATASET_BUILDERS, make_dataset


class TestRegistry:
    def test_six_datasets(self):
        assert sorted(DATASET_BUILDERS) == [
            "amsterdam",
            "archie",
            "bdd1k",
            "bdd_mot",
            "dashcam",
            "night_street",
        ]

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            make_dataset("kitti")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            make_dataset("dashcam", scale=0)
        with pytest.raises(DatasetError):
            make_dataset("dashcam", scale=1.5)


class TestStructure:
    @pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
    def test_builds_and_is_consistent(self, name):
        ds = make_dataset(name, scale=0.02, seed=0)
        assert ds.total_frames > 0
        assert ds.chunk_map.sizes().sum() == ds.total_frames
        assert ds.world.num_instances > 0
        assert len(ds.classes) >= 6
        for class_name in ds.classes:
            assert ds.gt_count(class_name) > 0

    def test_cameras(self):
        assert make_dataset("dashcam", scale=0.02).camera == "moving"
        assert make_dataset("amsterdam", scale=0.02).camera == "static"

    def test_bdd_one_chunk_per_clip(self):
        ds = make_dataset("bdd1k", scale=0.03, seed=0)
        assert ds.chunk_map.num_chunks == ds.repository.num_videos

    def test_static_sets_keep_chunk_count_across_scales(self):
        """Scaling shrinks frames but preserves the ~60-chunk structure."""
        small = make_dataset("amsterdam", scale=0.05, seed=0)
        assert 55 <= small.chunk_map.num_chunks <= 65

    def test_dashcam_chunk_count(self):
        ds = make_dataset("dashcam", scale=0.05, seed=0)
        assert 25 <= ds.chunk_map.num_chunks <= 35

    def test_unknown_class_raises(self):
        ds = make_dataset("dashcam", scale=0.02)
        with pytest.raises(DatasetError):
            ds.gt_count("submarine")


class TestScaling:
    def test_frames_scale_linearly(self):
        small = make_dataset("archie", scale=0.02, seed=0)
        large = make_dataset("archie", scale=0.04, seed=0)
        assert large.total_frames == pytest.approx(2 * small.total_frames, rel=0.01)

    def test_instances_scale_roughly(self):
        small = make_dataset("archie", scale=0.02, seed=0)
        large = make_dataset("archie", scale=0.04, seed=0)
        ratio = large.world.num_instances / small.world.num_instances
        assert 1.5 < ratio < 2.5


class TestPaperSkewShape:
    """Figure 6's quantified exemplars, at reduced scale."""

    def test_dashcam_bicycle_highly_skewed(self):
        ds = make_dataset("dashcam", scale=0.1, seed=0)
        s = skew_metric(ds.skew_counts("bicycle"))
        assert s > 6  # paper: S = 14

    def test_archie_car_unskewed(self):
        ds = make_dataset("archie", scale=0.05, seed=0)
        s = skew_metric(ds.skew_counts("car"))
        assert s < 2  # paper: S = 1.1

    def test_night_street_person_moderate(self):
        ds = make_dataset("night_street", scale=0.05, seed=0)
        s = skew_metric(ds.skew_counts("person"))
        assert 2 < s < 10  # paper: S = 4.5

    def test_relative_ordering(self):
        """bicycle (dashcam) must be more skewed than car (archie)."""
        dashcam = make_dataset("dashcam", scale=0.05, seed=0)
        archie = make_dataset("archie", scale=0.05, seed=0)
        assert skew_metric(dashcam.skew_counts("bicycle")) > skew_metric(
            archie.skew_counts("car")
        )
