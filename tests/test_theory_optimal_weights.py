"""Tests for the Eq. IV.1 solver: feasibility, optimality, known cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.errors import SolverError
from repro.theory.optimal_weights import (
    expected_found,
    expected_found_curve,
    optimal_curve,
    optimal_weights,
    project_to_simplex,
    uniform_weights,
)
from repro.utils.rng import spawn_rng

vectors = st.lists(
    st.floats(min_value=-10, max_value=10), min_size=1, max_size=20
).map(np.array)


class TestSimplexProjection:
    @given(vectors)
    @settings(max_examples=60)
    def test_output_in_simplex(self, v):
        w = project_to_simplex(v)
        assert np.all(w >= 0)
        assert w.sum() == pytest.approx(1.0, abs=1e-9)

    @given(vectors)
    @settings(max_examples=60)
    def test_idempotent(self, v):
        w = project_to_simplex(v)
        again = project_to_simplex(w)
        assert np.allclose(w, again, atol=1e-9)

    @given(vectors)
    @settings(max_examples=60)
    def test_order_preserving(self, v):
        w = project_to_simplex(v)
        order_v = np.argsort(v, kind="stable")
        assert np.all(np.diff(w[order_v]) >= -1e-9)

    def test_already_simplex_unchanged(self):
        w = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(w), w)

    def test_rejects_matrix(self):
        with pytest.raises(SolverError):
            project_to_simplex(np.zeros((2, 2)))


class TestExpectedFound:
    def test_single_instance_closed_form(self):
        p = np.array([[0.1, 0.0]])
        w = np.array([1.0, 0.0])
        assert expected_found(p, w, 10) == pytest.approx(1 - 0.9**10)

    def test_monotone_in_n(self):
        rng = spawn_rng(0, "ef")
        p = rng.uniform(0, 0.01, size=(50, 4))
        w = uniform_weights(4)
        curve = expected_found_curve(p, w, np.array([10, 100, 1000]))
        assert np.all(np.diff(curve) > 0)

    def test_bounded_by_population(self):
        rng = spawn_rng(1, "ef")
        p = rng.uniform(0, 0.05, size=(30, 3))
        w = uniform_weights(3)
        assert expected_found(p, w, 10**6) <= 30 + 1e-9

    def test_numerically_stable_tiny_p(self):
        p = np.full((10, 2), 1e-9)
        value = expected_found(p, uniform_weights(2), 1000)
        assert value == pytest.approx(10 * (1e-9 * 1000), rel=0.01)


class TestOptimalWeights:
    def test_symmetric_problem_yields_uniform(self):
        """Equal chunks -> uniform is optimal (§IV-A)."""
        p = np.tile(np.array([[0.01, 0.01]]), (20, 1))
        w = optimal_weights(p, 100)
        assert w == pytest.approx([0.5, 0.5], abs=0.02)

    def test_concentrates_on_dominant_chunk(self):
        """All instances in chunk 0 -> all weight goes there."""
        p = np.zeros((10, 3))
        p[:, 0] = 0.02
        w = optimal_weights(p, 200)
        assert w[0] > 0.98

    def test_improves_on_uniform(self):
        rng = spawn_rng(2, "ow")
        p = np.zeros((100, 8))
        # Skewed: most instances live in two chunks.
        chunk_of = rng.choice([0, 1, 1, 1, 2], size=100)
        p[np.arange(100), chunk_of] = rng.uniform(0.001, 0.02, size=100)
        n = 500
        w = optimal_weights(p, n)
        assert expected_found(p, w, n) >= expected_found(
            p, uniform_weights(8), n
        ) - 1e-9

    def test_matches_slsqp_reference(self):
        """Cross-check projected gradient against scipy's SLSQP."""
        rng = spawn_rng(3, "ow")
        p = rng.uniform(0, 0.01, size=(40, 5))
        n = 300.0
        ours = optimal_weights(p, n)

        def negative_objective(w):
            return -expected_found(p, w, n)

        reference = minimize(
            negative_objective,
            uniform_weights(5),
            method="SLSQP",
            bounds=[(0, 1)] * 5,
            constraints=[{"type": "eq", "fun": lambda w: w.sum() - 1}],
        )
        assert expected_found(p, ours, n) == pytest.approx(
            -reference.fun, rel=1e-3
        )

    def test_two_chunk_brute_force(self):
        """M=2 lets us brute-force the optimum over a fine grid."""
        rng = spawn_rng(4, "ow")
        p = rng.uniform(0, 0.03, size=(30, 2))
        p[:20, 1] = 0.0  # chunk 0 much richer
        n = 150.0
        ours = optimal_weights(p, n)
        grid = np.linspace(0, 1, 2001)
        values = [
            expected_found(p, np.array([g, 1 - g]), n) for g in grid
        ]
        best = max(values)
        assert expected_found(p, ours, n) == pytest.approx(best, rel=1e-4)

    def test_budget_dependence(self):
        """Small budgets chase the dense chunk; larger budgets spread out."""
        p = np.zeros((101, 2))
        p[:100, 0] = 0.05   # 100 instances in chunk 0
        p[100, 1] = 0.001  # 1 rare instance in chunk 1
        w_small = optimal_weights(p, 10)
        w_large = optimal_weights(p, 100_000)
        assert w_small[0] > 0.9
        assert w_large[1] > w_small[1]

    def test_rejects_bad_inputs(self):
        with pytest.raises(SolverError):
            optimal_weights(np.zeros((0, 2)), 10)
        with pytest.raises(SolverError):
            optimal_weights(np.zeros(5), 10)
        with pytest.raises(SolverError):
            optimal_weights(np.zeros((2, 2)), 0)


class TestOptimalCurve:
    def test_nondecreasing(self):
        rng = spawn_rng(5, "oc")
        p = rng.uniform(0, 0.01, size=(50, 4))
        curve = optimal_curve(p, np.array([10.0, 100.0, 1000.0]))
        assert np.all(np.diff(curve) >= -1e-6)

    def test_dominates_uniform_curve(self):
        rng = spawn_rng(6, "oc")
        p = np.zeros((60, 4))
        chunk_of = rng.choice([0, 0, 0, 1], size=60)
        p[np.arange(60), chunk_of] = 0.01
        grid = np.array([50.0, 200.0])
        opt = optimal_curve(p, grid)
        uni = expected_found_curve(p, uniform_weights(4), grid)
        assert np.all(opt >= uni - 1e-6)
