"""The async serving layer (repro.serving) and the request/fulfil split.

The acceptance bar, mirroring the session-API redesign's: serving must be
*invisible* in the results. A session run on a loaded ``QueryServer`` —
its detection fused with seven other tenants' requests, scheduled by any
policy, paused and checkpointed mid-flight — must produce a trace
byte-identical to the same ``(query, method, run_seed)`` run solo. What
serving *is* allowed to change (and must, to be worth having) is the
detector-call schedule: fewer, larger fused calls.

Every async test drives a private event loop via ``asyncio.run`` — the
suite stays dependency-free and runs unmodified under
``PYTHONASYNCIODEBUG=1`` (a CI job does exactly that).
"""

import asyncio

import pytest

from repro.core.environment import FrameRequest, propose_frames
from repro.core.registry import SEARCH_METHODS
from repro.core.sampler import ExSampleSearcher
from repro.errors import (
    ConfigError,
    QueryError,
    ServerDrainingError,
    ServerOverloadedError,
)
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.query.session import QuerySession
from repro.serving import (
    DetectorBatcher,
    ServerConfig,
    WorkloadItem,
    load_workload,
    make_scheduling_policy,
    replay,
    save_workload,
    serve_sessions,
)
from repro.serving.policies import (
    DeadlinePolicy,
    FewestSamplesFirstPolicy,
    RoundRobinPolicy,
)

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


def fresh_engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


QUERY = DistinctObjectQuery("car", limit=5)


# ---------------------------------------------------------------------------
# The request/fulfil split on the environment and the SearchRun.
# ---------------------------------------------------------------------------


class TestRequestFulfilSplit:
    def test_observe_batch_equals_propose_then_ingest(self, engine):
        """The blocking path is exactly the composition of the halves."""
        picks = [(0, 3), (1, 7), (0, 4), (5, 0)]
        env_a = engine.environment("car", run_seed=0)
        env_b = engine.environment("car", run_seed=0)
        via_observe = env_a.observe_batch(picks)
        request = env_b.propose_batch(picks)
        assert isinstance(request, FrameRequest)
        assert request.picks == picks
        assert request.class_filter == "car"
        assert len(request) == len(picks)
        via_split = env_b.ingest_batch(request, env_b.detect_request(request))
        assert [(o.d0, o.d1, o.cost, o.results) for o in via_observe] == [
            (o.d0, o.d1, o.cost, o.results) for o in via_split
        ]

    def test_propose_touches_no_detector_or_discriminator_state(self, engine):
        env = engine.environment("car", run_seed=0)
        calls_before = engine.detector.detect_calls
        frames_before = engine.detector.frames_processed
        request = env.propose_batch([(0, 1), (2, 2)])
        assert engine.detector.detect_calls == calls_before
        assert engine.detector.frames_processed == frames_before
        assert len(request.videos) == 2

    def test_ingest_rejects_misaligned_detections(self, engine):
        env = engine.environment("car", run_seed=0)
        request = env.propose_batch([(0, 1), (2, 2)])
        with pytest.raises(QueryError, match="detection lists"):
            env.ingest_batch(request, [[]])

    def test_propose_frames_dispatch(self, engine):
        env = engine.environment("car", run_seed=0)
        assert propose_frames(env, [(0, 1)]) is not None

        class NoSplit:
            pass

        assert propose_frames(NoSplit(), [(0, 1)]) is None

    def test_manual_propose_fulfil_equals_step(self, engine):
        """Driving the split by hand reproduces step()'s trace exactly."""
        reference = engine.run(QUERY, method="exsample", run_seed=4,
                               batch_size=3).trace
        session = fresh_engine().session(
            QUERY, method="exsample", run_seed=4, batch_size=3
        )
        run = session.search_run
        env = run.searcher.env
        while True:
            proposal = run.propose()
            if proposal is None:
                break
            detections = env.detect_request(proposal.request)
            observations = env.ingest_batch(proposal.request, detections)
            run.fulfil(proposal, observations)
        assert run.finished
        assert_traces_identical(reference, run.trace())

    def test_double_propose_rejected(self, engine):
        run = fresh_engine().session(QUERY, run_seed=0).search_run
        proposal = run.propose()
        assert proposal is not None
        with pytest.raises(RuntimeError, match="outstanding"):
            run.propose()
        env = run.searcher.env
        run.fulfil(
            proposal,
            env.ingest_batch(
                proposal.request, env.detect_request(proposal.request)
            ),
        )
        assert run.propose() is not None  # boundary reached, propose again

    def test_fulfil_without_proposal_rejected(self, engine):
        run = fresh_engine().session(QUERY, run_seed=0).search_run
        from repro.core.sampler import StepProposal

        with pytest.raises(RuntimeError, match="no outstanding"):
            run.fulfil(StepProposal(picks=[(0, 0)], request=None), [])

    def test_propose_on_exhausted_searcher_sets_reason(self):
        """pick_batch() returning [] finishes the run through propose()."""
        env = fresh_engine().environment("car", run_seed=0)
        searcher = ExSampleSearcher(env)
        run = searcher.begin()  # no explicit limit: budget = every frame
        while True:
            proposal = run.propose()
            if proposal is None:
                break
            detections = env.detect_request(proposal.request)
            run.fulfil(proposal, env.ingest_batch(proposal.request, detections))
        assert run.finished
        assert run.reason in ("frame_budget", "exhausted")
        assert run.propose() is None  # terminal: stays None


# ---------------------------------------------------------------------------
# Server outcomes are identical to solo runs.
# ---------------------------------------------------------------------------


class TestServerIdentity:
    @pytest.mark.parametrize("method", tuple(SEARCH_METHODS))
    def test_server_outcome_identical_to_solo(self, method):
        """Acceptance criterion: serving never changes a trace, any method."""
        solo_engine = fresh_engine()
        reference = solo_engine.run(
            QUERY, method=method, run_seed=2, batch_size=3
        ).trace

        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=8)
            # Load the server: the probed session shares the detector with
            # three concurrent neighbours.
            neighbours = [
                await server.submit(
                    DistinctObjectQuery("car", limit=3),
                    run_seed=10 + i,
                    batch_size=4,
                )
                for i in range(3)
            ]
            probe = await server.submit(
                QUERY, method=method, run_seed=2, batch_size=3
            )
            outcome = await probe.result()
            for handle in neighbours:
                await handle.result()
            return outcome

        outcome = asyncio.run(go())
        assert_traces_identical(reference, outcome.trace)

    def test_run_many_is_server_backed_and_identical(self):
        engine = fresh_engine()
        queries = [
            DistinctObjectQuery("car", limit=4),
            DistinctObjectQuery("bicycle", limit=3),
            DistinctObjectQuery("dog", limit=2),
        ]
        outcomes = engine.run_many(queries, method="exsample", batch_size=4)
        for seed, (query, outcome) in enumerate(zip(queries, outcomes)):
            solo = engine.run(
                query, method="exsample", run_seed=seed, batch_size=4
            )
            assert_traces_identical(outcome.trace, solo.trace)

    def test_run_many_works_inside_a_running_event_loop(self):
        """Jupyter/async-app parity: the historical run_many was plain
        synchronous code that worked anywhere; the server-backed one hosts
        its loop on a worker thread when one is already running."""
        engine = fresh_engine()
        queries = [DistinctObjectQuery("car", limit=3) for _ in range(2)]
        outside = engine.run_many(queries, batch_size=4)

        async def go():
            return engine.run_many(queries, batch_size=4)

        inside = asyncio.run(go())
        for a, b in zip(outside, inside):
            assert_traces_identical(a.trace, b.trace)

    def test_serve_sessions_propagates_errors_from_inner_loop(self, engine):
        async def go():
            with pytest.raises(QueryError, match="exactly one"):
                # A bogus "session" object fails inside submit; the error
                # must cross the worker-thread boundary intact.
                serve_sessions([None], engine=engine)

        asyncio.run(go())

    def test_scheduling_policy_does_not_change_outcomes(self):
        queries = [DistinctObjectQuery("car", limit=3) for _ in range(4)]
        baseline = None
        for policy in ("round_robin", "fewest_samples", "deadline"):
            engine = fresh_engine()
            outcomes = engine.run_many(
                queries,
                batch_size=4,
                server_config=ServerConfig(policy=policy),
            )
            traces = [o.trace for o in outcomes]
            if baseline is None:
                baseline = traces
            else:
                for a, b in zip(baseline, traces):
                    assert_traces_identical(a, b)

    def test_batching_disabled_identical_outcomes_more_calls(self):
        queries = [DistinctObjectQuery("car", limit=3) for _ in range(4)]

        fused_engine = fresh_engine()
        fused = fused_engine.run_many(queries, batch_size=4)
        fused_calls = fused_engine.detector.detect_calls

        plain_engine = fresh_engine()
        plain = plain_engine.run_many(
            queries, batch_size=4,
            server_config=ServerConfig(batching=False),
        )
        plain_calls = plain_engine.detector.detect_calls

        for a, b in zip(fused, plain):
            assert_traces_identical(a.trace, b.trace)
        assert fused_calls < plain_calls


# ---------------------------------------------------------------------------
# The batcher.
# ---------------------------------------------------------------------------


class TestDetectorBatcher:
    def test_same_class_sessions_fuse(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=8, max_batch_size=1024)
            handles = [
                await server.submit(
                    DistinctObjectQuery("car", limit=3),
                    run_seed=i,
                    batch_size=4,
                )
                for i in range(6)
            ]
            for handle in handles:
                await handle.result()
            return server.stats()

        stats = asyncio.run(go())
        assert stats.detector_calls < stats.batcher.requests
        assert stats.fusion_ratio > 1.5
        assert stats.batch_occupancy > 4.0

    def test_max_batch_size_splits_fused_calls(self):
        engine = fresh_engine()

        async def go():
            # 4 sessions x 4 frames with an 8-frame cap: each flush must
            # split into >= 2 calls, and everything still completes.
            server = engine.serve(max_in_flight=4, max_batch_size=8)
            handles = [
                await server.submit(
                    DistinctObjectQuery("car", limit=3),
                    run_seed=i,
                    batch_size=4,
                )
                for i in range(4)
            ]
            for handle in handles:
                await handle.result()
            return server.stats()

        stats = asyncio.run(go())
        assert stats.batcher.max_occupancy <= 8

    def test_mixed_classes_do_not_fuse_but_complete(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=4)
            handles = [
                await server.submit(
                    DistinctObjectQuery(cls, limit=2), run_seed=i, batch_size=2
                )
                for i, cls in enumerate(["car", "bicycle", "dog"])
            ]
            return [await h.result() for h in handles]

        outcomes = asyncio.run(go())
        assert [o.num_results >= 2 for o in outcomes] == [True] * 3

    def test_batcher_propagates_detector_errors(self):
        class ExplodingDetector:
            cache = None

            def detect_batch(self, videos, frames, class_filter=None):
                raise RuntimeError("GPU on fire")

        async def go():
            batcher = DetectorBatcher(
                RoundRobinPolicy(), flush_latency=0.001
            )
            request = FrameRequest(
                picks=[(0, 0)], videos=[0], frames=[0], class_filter=None
            )

            class Handle:
                seq = 0
                tenant = "t"
                num_samples = 0
                deadline = None

            with pytest.raises(RuntimeError, match="GPU on fire"):
                await batcher.detect(ExplodingDetector(), request, Handle())

        asyncio.run(go())

    def test_session_failure_reported_not_swallowed(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve()
            handle = await server.submit(QUERY, run_seed=0)
            # Sabotage the environment mid-flight: the failure must land
            # on this handle, not kill the loop.
            handle.session.search_run.searcher.env.detector = None
            state = await handle.wait()
            return state, handle.error, server.stats().failed

        state, error, failed = asyncio.run(go())
        # The env lacking a detector falls back to inline observation,
        # which still works -- so either it finished (fallback path) or
        # failed cleanly; both prove the server survived.
        assert state in ("finished", "failed")
        assert failed in (0, 1)


# ---------------------------------------------------------------------------
# Scheduling policies.
# ---------------------------------------------------------------------------


class _FakeHandle:
    def __init__(self, seq, num_samples=0, deadline=None):
        self.seq = seq
        self.num_samples = num_samples
        self.deadline = deadline
        self.tenant = "t"


class TestPolicies:
    def test_registry_resolution(self):
        assert isinstance(
            make_scheduling_policy("round_robin"), RoundRobinPolicy
        )
        policy = DeadlinePolicy()
        assert make_scheduling_policy(policy) is policy
        assert isinstance(make_scheduling_policy(None), RoundRobinPolicy)
        with pytest.raises(ConfigError, match="unknown scheduling policy"):
            make_scheduling_policy("lifo")

    def test_round_robin_orders_by_submission(self):
        handles = [_FakeHandle(seq) for seq in (2, 0, 1)]
        ordered = sorted(handles, key=RoundRobinPolicy().key)
        assert [h.seq for h in ordered] == [0, 1, 2]

    def test_fewest_samples_orders_by_progress(self):
        handles = [
            _FakeHandle(0, num_samples=9),
            _FakeHandle(1, num_samples=2),
            _FakeHandle(2, num_samples=2),
        ]
        ordered = sorted(handles, key=FewestSamplesFirstPolicy().key)
        assert [h.seq for h in ordered] == [1, 2, 0]

    def test_deadline_orders_earliest_first_none_last(self):
        handles = [
            _FakeHandle(0, deadline=None),
            _FakeHandle(1, deadline=9.0),
            _FakeHandle(2, deadline=1.0),
        ]
        ordered = sorted(handles, key=DeadlinePolicy().key)
        assert [h.seq for h in ordered] == [2, 1, 0]

    def test_deadline_policy_governs_admission_order(self):
        engine = fresh_engine()
        finished_order = []

        async def go():
            server = engine.serve(
                max_in_flight=1, policy="deadline", flush_latency=0.0005
            )

            async def watch(handle, label):
                await handle.wait()
                finished_order.append(label)

            first = await server.submit(QUERY, run_seed=0, batch_size=2)
            # Queued behind `first`; admission must pick the tighter
            # deadline even though it was submitted later.
            loose = await server.submit(
                QUERY, run_seed=1, batch_size=2, deadline=60.0
            )
            tight = await server.submit(
                QUERY, run_seed=2, batch_size=2, deadline=0.5
            )
            await asyncio.gather(
                watch(first, "first"), watch(loose, "loose"),
                watch(tight, "tight"),
            )

        asyncio.run(go())
        assert finished_order.index("tight") < finished_order.index("loose")


# ---------------------------------------------------------------------------
# Admission control and backpressure.
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_max_in_flight_queues_excess_sessions(self):
        engine = fresh_engine()
        observed = {}

        async def go():
            server = engine.serve(max_in_flight=1)
            first = await server.submit(QUERY, run_seed=0, batch_size=2)
            second = await server.submit(QUERY, run_seed=1, batch_size=2)
            observed["states"] = (first.state, second.state)
            observed["queued"] = server.stats().queued
            await first.result()
            await second.result()
            observed["final"] = server.stats().finished

        asyncio.run(go())
        assert observed["states"] == ("running", "queued")
        assert observed["queued"] == 1
        assert observed["final"] == 2

    def test_overload_raises_without_wait(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1, queue_capacity=1)
            await server.submit(QUERY, run_seed=0)
            await server.submit(QUERY, run_seed=1)
            with pytest.raises(ServerOverloadedError, match="queue full"):
                await server.submit(QUERY, run_seed=2, wait=False)
            await server.drain()

        asyncio.run(go())

    def test_backpressure_waits_for_room_then_admits(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1, queue_capacity=1)
            handles = await asyncio.gather(
                *(
                    server.submit(QUERY, run_seed=i, batch_size=4)
                    for i in range(4)
                )
            )
            outcomes = [await h.result() for h in handles]
            return outcomes

        outcomes = asyncio.run(go())
        assert len(outcomes) == 4
        assert all(o.num_results >= 5 for o in outcomes)

    def test_queue_capacity_zero_wakes_waiters_on_departure(self):
        """Regression: with queue_capacity=0 the only admission signal is
        an in-flight slot freeing up; backpressured submitters must be
        woken then (they used to wait forever on the empty-queue pump)."""
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1, queue_capacity=0)
            handles = await asyncio.gather(
                *(
                    server.submit(QUERY, run_seed=i, batch_size=4)
                    for i in range(3)
                )
            )
            return [await h.result() for h in handles]

        outcomes = asyncio.run(asyncio.wait_for(go(), timeout=30))
        assert len(outcomes) == 3
        assert all(o.num_results >= 5 for o in outcomes)

    def test_submit_requires_exactly_one_of_query_session(self, engine):
        async def go():
            server = engine.serve()
            with pytest.raises(QueryError, match="exactly one"):
                await server.submit()
            session = engine.session(QUERY)
            with pytest.raises(QueryError, match="exactly one"):
                await server.submit(QUERY, session=session)

        asyncio.run(go())

    def test_submit_session_rejects_searcher_overrides(self, engine):
        """Overrides only apply when the server builds the session; dropping
        them silently would run a misconfigured search."""

        async def go():
            server = engine.serve()
            session = engine.session(QUERY)
            with pytest.raises(QueryError, match="cannot be combined"):
                await server.submit(session=session, batch_size=8)
            with pytest.raises(QueryError, match="cannot be combined"):
                await server.submit(session=session, method="random")
            # tenant/deadline/pause_after are server-side: allowed.
            handle = await server.submit(
                session=session, tenant="a", pause_after=1
            )
            await handle.wait()

        asyncio.run(go())

    def test_evict_finished_forgets_terminal_sessions(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve()
            handle = await server.submit(QUERY, batch_size=4)
            await handle.result()
            assert server.stats().submitted == 1
            assert server.evict_finished() == 1
            assert server.stats().submitted == 0
            assert server.evict_finished() == 0

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Checkpoint/restore *under serving* (satellite).
# ---------------------------------------------------------------------------


class TestCheckpointUnderServing:
    @pytest.mark.parametrize("method", tuple(SEARCH_METHODS))
    def test_pause_checkpoint_restore_into_fresh_server(self, method):
        """Mid-flight checkpoint on a loaded server, restored elsewhere.

        The merged trace (steps under server A + steps under server B
        after a pickle round-trip) must equal an uninterrupted solo run —
        for every registered method.
        """
        reference = fresh_engine().run(
            QUERY, method=method, run_seed=2, batch_size=3
        ).trace

        engine_a = fresh_engine()

        async def first_leg():
            server = engine_a.serve(max_in_flight=8)
            # Concurrent neighbours ensure the checkpoint happens while
            # the batcher is actively fusing this session's requests.
            neighbours = [
                await server.submit(
                    DistinctObjectQuery("car", limit=3),
                    run_seed=20 + i,
                    batch_size=4,
                )
                for i in range(2)
            ]
            probe = await server.submit(
                QUERY, method=method, run_seed=2, batch_size=3, pause_after=2
            )
            state = await probe.wait()
            for neighbour in neighbours:
                await neighbour.result()
            return state, probe

        state, probe = asyncio.run(first_leg())
        if state == "finished":
            # Tiny queries can finish inside two steps; the solo-identity
            # test already covers that path, nothing left to restore.
            assert_traces_identical(reference, probe.session.trace())
            return
        assert state == "paused"
        assert probe.steps == 2
        with pytest.raises(QueryError, match="paused"):
            asyncio.run(probe.result())

        blob = probe.session.checkpoint()
        restored = QuerySession.restore(blob)

        engine_b = fresh_engine()

        async def second_leg():
            server = engine_b.serve(max_in_flight=4)
            sibling = await server.submit(
                DistinctObjectQuery("bicycle", limit=2),
                run_seed=31,
                batch_size=4,
            )
            handle = await server.submit(session=restored)
            outcome = await handle.result()
            await sibling.result()
            return outcome

        outcome = asyncio.run(second_leg())
        assert_traces_identical(reference, outcome.trace)

    def test_pause_requested_externally_stops_at_boundary(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve()
            handle = await server.submit(
                DistinctObjectQuery("car", frame_budget=2000), batch_size=2
            )
            await asyncio.sleep(0.01)
            handle.pause()
            state = await handle.wait()
            return state, handle

        state, handle = asyncio.run(go())
        assert state == "paused"
        assert 0 < handle.session.num_samples < 2000
        # A paused session sits at a batch boundary: checkpointable, and
        # the restored copy picks up exactly where serving stopped.
        restored = QuerySession.restore(handle.session.checkpoint())
        assert restored.num_samples == handle.session.num_samples


class TestGracefulDrain:
    """drain_gracefully: nothing accepted is dropped, nothing new enters."""

    def test_drain_settles_accepted_sessions_then_refuses(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1)
            running = await server.submit(QUERY, run_seed=0, batch_size=4)
            queued = await server.submit(QUERY, run_seed=1, batch_size=4)
            assert queued.state == "queued"
            await server.drain_gracefully()
            assert server.draining
            assert server.stats().draining
            # Both the in-flight and the still-queued session finished.
            assert running.state == "finished"
            assert queued.state == "finished"
            with pytest.raises(ServerDrainingError, match="no longer"):
                await server.submit(QUERY, run_seed=2)
            # Idempotent: a second drain is a no-op, not an error.
            await server.drain_gracefully()
            return await running.result(), await queued.result()

        first, second = asyncio.run(go())
        assert first.num_results >= 5
        assert second.num_results >= 5

    def test_drain_checkpoint_leaves_every_session_checkpointable(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1)
            running = await server.submit(
                DistinctObjectQuery("car", frame_budget=2000), batch_size=2
            )
            queued = await server.submit(QUERY, run_seed=1)
            await asyncio.sleep(0.01)
            await server.drain_gracefully(checkpoint=True)
            assert running.state == "paused"
            assert queued.state == "paused"
            return running, queued

        running, queued = asyncio.run(go())
        # In-flight paused at a batch boundary mid-run; the queued one
        # paused unstarted. Both restore.
        assert running.session.num_samples > 0
        assert queued.session.num_samples == 0
        for handle in (running, queued):
            restored = QuerySession.restore(handle.session.checkpoint())
            assert restored.num_samples == handle.session.num_samples

    def test_backpressured_waiter_is_refused_when_drain_begins(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=1, queue_capacity=0)
            running = await server.submit(QUERY, run_seed=0, batch_size=4)
            waiter = asyncio.ensure_future(
                server.submit(QUERY, run_seed=1)
            )
            await asyncio.sleep(0)  # let the waiter enter backpressure
            await server.drain_gracefully()
            with pytest.raises(ServerDrainingError, match="waited"):
                await waiter
            # The waiter's session was never accepted, so the drain only
            # settled the running one.
            assert server.stats().finished == 1
            await running.result()

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Workload files and replay.
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_roundtrip(self, tmp_path):
        items = [
            WorkloadItem(object="car", limit=3, tenant="a"),
            WorkloadItem(
                object="bicycle", recall=0.5, arrival=0.5, method="random",
                run_seed=2, deadline=4.0, batch_size=8,
            ),
        ]
        path = tmp_path / "wl.json"
        save_workload(str(path), items)
        assert load_workload(str(path)) == items

    def test_bare_list_accepted(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('[{"object": "car", "limit": 2}]')
        items = load_workload(str(path))
        assert items[0].query() == DistinctObjectQuery("car", limit=2)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('{"queries": [{"object": "car", "limt": 3}]}')
        with pytest.raises(ConfigError, match="unknown keys"):
            load_workload(str(path))

    def test_missing_object_rejected(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('{"queries": [{"limit": 3}]}')
        with pytest.raises(ConfigError, match="needs an 'object'"):
            load_workload(str(path))

    def test_replay_submits_by_arrival_returns_in_item_order(self):
        engine = fresh_engine()
        items = [
            WorkloadItem(object="car", limit=2, arrival=0.02, tenant="late"),
            WorkloadItem(object="car", limit=2, run_seed=1, tenant="early"),
        ]

        async def go():
            server = engine.serve()
            handles = await replay(server, items, time_scale=0)
            await server.drain()
            return handles

        handles = asyncio.run(go())
        # handles[i] belongs to items[i], however arrivals were ordered...
        assert [h.tenant for h in handles] == ["late", "early"]
        # ...while submission itself followed arrival order (seq is the
        # server's monotonic submission counter).
        assert handles[1].seq < handles[0].seq
        assert all(h.state == "finished" for h in handles)


# ---------------------------------------------------------------------------
# Stats plumbing (per-tenant, per-scope cache breakdown).
# ---------------------------------------------------------------------------


class TestServerStats:
    def test_per_tenant_and_cache_scope_breakdown(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve(max_in_flight=8)
            handles = [
                await server.submit(
                    DistinctObjectQuery("car", limit=3),
                    run_seed=i,
                    tenant="alice" if i % 2 == 0 else "bob",
                    batch_size=4,
                )
                for i in range(4)
            ]
            for handle in handles:
                await handle.result()
            # Replay alice's first query verbatim: every frame it needs is
            # now memoized, so its requests arrive pre-cached — the case
            # the per-tenant cache-hit attribution exists to expose.
            rerun = await server.submit(
                DistinctObjectQuery("car", limit=3),
                run_seed=0,
                tenant="alice",
                batch_size=4,
            )
            await rerun.result()
            return server.stats()

        stats = asyncio.run(go())
        assert set(stats.per_tenant) == {"alice", "bob"}
        alice = stats.per_tenant["alice"]
        assert alice.sessions == 3 and alice.finished == 3
        assert alice.samples > 0 and alice.detector_frames > 0
        assert alice.detect_wait.count == alice.detector_requests
        # Engine cache info flows through, with the per-scope breakdown
        # attributing every lookup to this engine's one detector scope.
        assert stats.cache is not None
        scope = engine.detector.cache_scope()
        assert scope in stats.cache.per_scope
        per_scope = stats.cache.per_scope[scope]
        assert per_scope.hits + per_scope.misses == stats.cache.requests
        # The verbatim rerun's frames were already memoized when its
        # fused calls were issued, so its hits land on alice.
        assert stats.batcher.tenant_cache_hits.get("alice", 0) > 0

    def test_per_tenant_detector_stats_with_batching_disabled(self):
        """Direct (unfused) detector calls must still show up per tenant."""
        engine = fresh_engine()

        async def go():
            server = engine.serve(batching=False)
            handle = await server.submit(
                DistinctObjectQuery("car", limit=3), tenant="a", batch_size=4
            )
            await handle.result()
            return server.stats()

        stats = asyncio.run(go())
        tenant = stats.per_tenant["a"]
        assert tenant.detector_requests > 0
        assert tenant.detector_frames > 0
        assert tenant.detect_wait.count == tenant.detector_requests
        assert stats.detector_calls == tenant.detector_requests

    def test_describe_renders(self):
        engine = fresh_engine()

        async def go():
            server = engine.serve()
            await (await server.submit(QUERY, batch_size=4)).result()
            return server.stats()

        text = asyncio.run(go()).describe()
        assert "sessions:" in text and "detector:" in text
        assert "tenant default:" in text
