"""Tests for the simulated object detector."""

import pytest

from repro.detection.detections import Detection, filter_class, filter_score
from repro.detection.simulated import (
    PERFECT_PROFILE,
    DetectorProfile,
    SimulatedDetector,
)
from repro.errors import ConfigError
from repro.video.geometry import BoundingBox

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset(seed=3)


class TestDeterminism:
    def test_same_frame_identical(self, dataset):
        detector = SimulatedDetector(dataset.world, seed=0)
        a = detector.detect(0, 100)
        b = detector.detect(0, 100)
        assert len(a) == len(b)
        for da, db in zip(a, b):
            assert da.box == db.box
            assert da.score == db.score
            assert da.instance_uid == db.instance_uid

    def test_different_seeds_differ(self, dataset):
        frames_with_objects = [
            f for f in range(0, 1000, 10)
            if dataset.world.visible(0, f)
        ]
        frame = frames_with_objects[0]
        a = SimulatedDetector(dataset.world, seed=0).detect(0, frame)
        b = SimulatedDetector(dataset.world, seed=99).detect(0, frame)
        assert [d.score for d in a] != [d.score for d in b]


class TestPerfectProfile:
    def test_detects_exactly_ground_truth(self, dataset):
        detector = SimulatedDetector(dataset.world, profile=PERFECT_PROFILE, seed=0)
        for frame in range(0, 1200, 37):
            detections = detector.detect(0, frame)
            visible = dataset.world.visible(0, frame)
            assert {d.instance_uid for d in detections} == {
                i.uid for i in visible
            }

    def test_boxes_match_ground_truth(self, dataset):
        detector = SimulatedDetector(dataset.world, profile=PERFECT_PROFILE, seed=0)
        for frame in range(0, 1200, 101):
            for det in detector.detect(0, frame):
                inst = dataset.world.instances[det.instance_uid]
                gt = inst.box_at(frame).clipped(640, 480)
                assert det.box.iou(gt) > 0.99


class TestNoiseModel:
    def test_miss_rate_statistical(self, dataset):
        profile = DetectorProfile(
            miss_rate=0.5, small_box_penalty=0.0,
            false_positives_per_frame=0.0, jitter=0.0,
        )
        detector = SimulatedDetector(dataset.world, profile=profile, seed=1)
        total_visible = 0
        total_detected = 0
        for frame in range(0, 1200, 3):
            visible = dataset.world.visible(0, frame)
            total_visible += len(visible)
            total_detected += len(detector.detect(0, frame))
        assert total_visible > 100
        rate = total_detected / total_visible
        assert 0.4 < rate < 0.6

    def test_false_positive_rate_statistical(self, dataset):
        profile = DetectorProfile(
            miss_rate=0.0, small_box_penalty=0.0,
            false_positives_per_frame=0.5, jitter=0.0,
        )
        detector = SimulatedDetector(dataset.world, profile=profile, seed=2)
        fp_count = 0
        frames = 400
        for frame in range(frames):
            fp_count += sum(
                1 for d in detector.detect(0, frame) if d.is_false_positive
            )
        assert fp_count / frames == pytest.approx(0.5, rel=0.3)

    def test_jitter_bounded(self, dataset):
        profile = DetectorProfile(
            miss_rate=0.0, small_box_penalty=0.0,
            false_positives_per_frame=0.0, jitter=0.03,
        )
        detector = SimulatedDetector(dataset.world, profile=profile, seed=3)
        for frame in range(0, 1200, 53):
            for det in detector.detect(0, frame):
                gt = dataset.world.instances[det.instance_uid].box_at(frame)
                assert det.box.iou(gt) > 0.5

    def test_scores_in_unit_interval(self, dataset):
        detector = SimulatedDetector(dataset.world, seed=4)
        for frame in range(0, 1200, 37):
            for det in detector.detect(0, frame):
                assert 0.0 <= det.score <= 1.0

    def test_small_boxes_missed_more(self, dataset):
        """The small-box penalty must push the miss probability up."""
        profile = DetectorProfile(miss_rate=0.1, small_box_penalty=0.5)
        detector = SimulatedDetector(dataset.world, profile=profile, seed=0)
        small = detector._miss_probability(BoundingBox(0, 0, 20, 20))
        large = detector._miss_probability(BoundingBox(0, 0, 300, 300))
        assert small > large
        assert large == pytest.approx(0.1)


class TestInterface:
    def test_class_filter(self, dataset):
        detector = SimulatedDetector(dataset.world, profile=PERFECT_PROFILE, seed=0)
        for frame in range(0, 1200, 61):
            only_cars = detector.detect(0, frame, class_filter="car")
            assert all(d.class_name == "car" for d in only_cars)

    def test_frames_processed_counter(self, dataset):
        detector = SimulatedDetector(dataset.world, seed=0)
        detector.detect(0, 0)
        detector.detect(0, 1)
        assert detector.frames_processed == 2

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            DetectorProfile(miss_rate=1.0)
        with pytest.raises(ConfigError):
            DetectorProfile(false_positives_per_frame=-1)
        with pytest.raises(ConfigError):
            DetectorProfile(jitter=-0.1)


class TestDetectionHelpers:
    def _det(self, cls, score):
        return Detection(
            video=0, frame=0, box=BoundingBox(0, 0, 1, 1),
            class_name=cls, score=score,
        )

    def test_filter_class(self):
        dets = [self._det("car", 0.9), self._det("dog", 0.8)]
        assert [d.class_name for d in filter_class(dets, "car")] == ["car"]

    def test_filter_score(self):
        dets = [self._det("car", 0.9), self._det("car", 0.3)]
        assert len(filter_score(dets, 0.5)) == 1

    def test_false_positive_flag(self):
        assert self._det("car", 0.5).is_false_positive
