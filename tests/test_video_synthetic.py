"""Tests for synthetic world building."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.video.synthetic import (
    ClassSpec,
    ObjectInstance,
    SyntheticWorld,
    build_world,
)
from repro.video.geometry import BoundingBox
from repro.video.video import Video, VideoRepository

from tests.conftest import make_tiny_dataset


@pytest.fixture
def repo():
    return VideoRepository([Video("a", 3000, fps=10), Video("b", 3000, fps=10)])


@pytest.fixture
def world(repo):
    return build_world(
        repo,
        [
            ClassSpec("car", count=40, mean_duration_s=5.0),
            ClassSpec("dog", count=10, mean_duration_s=3.0,
                      skew=("hotspots", 1, 0.1)),
        ],
        seed=1,
    )


class TestClassSpec:
    def test_rejects_negative_count(self):
        with pytest.raises(DatasetError):
            ClassSpec("x", count=-1, mean_duration_s=1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(DatasetError):
            ClassSpec("x", count=1, mean_duration_s=0)

    def test_rejects_unknown_skew(self):
        with pytest.raises(DatasetError):
            ClassSpec("x", count=1, mean_duration_s=1.0, skew=("zipf", 2))


class TestObjectInstance:
    def _instance(self, start=10, end=60):
        return ObjectInstance(
            uid=0,
            class_name="car",
            video=0,
            start=start,
            end=end,
            entry_box=BoundingBox(0, 0, 10, 10),
            exit_box=BoundingBox(100, 100, 120, 120),
            global_start=start,
        )

    def test_duration(self):
        assert self._instance().duration == 50

    def test_box_at_endpoints(self):
        inst = self._instance()
        assert inst.box_at(10) == inst.entry_box
        assert inst.box_at(59) == inst.exit_box

    def test_box_moves_smoothly(self):
        inst = self._instance()
        prev = inst.box_at(10)
        for frame in range(11, 60):
            current = inst.box_at(frame)
            assert prev.iou(current) > 0.3  # consecutive frames overlap
            prev = current

    def test_box_outside_interval_rejected(self):
        with pytest.raises(DatasetError):
            self._instance().box_at(9)

    def test_visible_in(self):
        inst = self._instance()
        assert inst.visible_in(0, 10)
        assert not inst.visible_in(0, 60)
        assert not inst.visible_in(1, 10)

    def test_empty_interval_rejected(self):
        with pytest.raises(DatasetError):
            self._instance(start=10, end=10)


class TestWorldBuilding:
    def test_counts(self, world):
        assert world.count_of("car") == 40
        assert world.count_of("dog") == 10
        assert world.num_instances == 50
        assert world.class_names() == ["car", "dog"]

    def test_instances_fit_videos(self, world, repo):
        for inst in world.instances:
            assert 0 <= inst.start < inst.end <= repo.videos[inst.video].num_frames

    def test_uids_dense(self, world):
        assert [inst.uid for inst in world.instances] == list(range(50))

    def test_deterministic(self, repo):
        spec = [ClassSpec("car", count=10, mean_duration_s=5.0)]
        a = build_world(repo, spec, seed=9)
        b = build_world(repo, spec, seed=9)
        assert [i.start for i in a.instances] == [i.start for i in b.instances]

    def test_seed_changes_placement(self, repo):
        spec = [ClassSpec("car", count=10, mean_duration_s=5.0)]
        a = build_world(repo, spec, seed=1)
        b = build_world(repo, spec, seed=2)
        assert [i.start for i in a.instances] != [i.start for i in b.instances]

    def test_hotspot_concentration(self, world):
        """The dog class used a single tight hotspot."""
        mids = np.array([i.global_midpoint for i in world.instances_of("dog")])
        spread = mids.max() - mids.min()
        assert spread < 6000 * 0.5  # much tighter than the full timeline


class TestWorldQueries:
    def test_visible_matches_intervals(self, world):
        for video in (0, 1):
            for frame in (0, 500, 1500, 2999):
                fast = {i.uid for i in world.visible(video, frame)}
                brute = {
                    i.uid
                    for i in world.instances
                    if i.visible_in(video, frame)
                }
                assert fast == brute

    def test_visible_unknown_video(self, world):
        assert world.visible(99, 0) == []

    def test_presence_mask_matches_instances(self, world):
        mask = world.presence_mask("dog")
        assert mask.shape == (6000,)
        expected = np.zeros(6000, dtype=bool)
        for inst in world.instances_of("dog"):
            expected[inst.global_start : inst.global_end] = True
        assert np.array_equal(mask, expected)

    def test_chunk_counts_sum(self, world):
        bounds = np.array([0, 1500, 3000, 4500, 6000])
        assert world.chunk_counts("car", bounds).sum() == 40

    def test_chunk_probabilities_mass(self, world):
        bounds = np.array([0, 3000, 6000])
        p = world.chunk_probabilities("car", bounds)
        widths = np.diff(bounds)
        durations = np.array([i.duration for i in world.instances_of("car")])
        assert p @ widths == pytest.approx(durations.astype(float))

    def test_count_of_unknown_class(self, world):
        assert world.count_of("unicorn") == 0

    def test_uid_order_enforced(self, repo):
        inst = ObjectInstance(
            uid=5, class_name="car", video=0, start=0, end=10,
            entry_box=BoundingBox(0, 0, 1, 1), exit_box=BoundingBox(0, 0, 1, 1),
            global_start=0,
        )
        with pytest.raises(DatasetError):
            SyntheticWorld(repo, [inst])


class TestVectorisedVisibility:
    """visible_uids / visible_uids_batch / boxes_at agree with the objects."""

    def test_visible_uids_matches_visible(self):
        dataset = make_tiny_dataset(seed=21)
        world = dataset.world
        for video in (0, 1):
            for frame in range(0, 1200, 17):
                uids = world.visible_uids(video, frame).tolist()
                assert uids == [i.uid for i in world.visible(video, frame)]

    def test_batch_agrees_on_both_paths(self, monkeypatch):
        from repro.video import synthetic as synthetic_mod

        dataset = make_tiny_dataset(seed=21)
        world = dataset.world
        frames = np.arange(0, 1200, 13)
        want_flat = []
        want_counts = []
        for frame in frames:
            uids = world.visible_uids(0, int(frame))
            want_flat.extend(uids.tolist())
            want_counts.append(uids.size)
        for budget in (4_000_000, 0):  # broadcast mask path, then fallback
            monkeypatch.setattr(
                synthetic_mod, "_VISIBILITY_MASK_BUDGET", budget
            )
            got_flat, got_counts = world.visible_uids_batch(0, frames)
            assert got_flat.tolist() == want_flat
            assert got_counts.tolist() == want_counts

    def test_batch_empty_and_unknown_video(self):
        dataset = make_tiny_dataset(seed=21)
        world = dataset.world
        flat, counts = world.visible_uids_batch(99, np.array([1, 2, 3]))
        assert flat.size == 0 and counts.tolist() == [0, 0, 0]
        flat, counts = world.visible_uids_batch(0, np.array([], dtype=np.int64))
        assert flat.size == 0 and counts.size == 0

    def test_boxes_at_matches_box_at(self):
        dataset = make_tiny_dataset(seed=21)
        world = dataset.world
        for frame in range(0, 1200, 29):
            uids = world.visible_uids(0, frame)
            if not uids.size:
                continue
            got = world.boxes_at(uids, frame)
            want = np.stack(
                [world.instances[int(u)].box_at(frame).as_array() for u in uids]
            )
            assert np.allclose(got, want)
