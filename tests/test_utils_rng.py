"""Tests for deterministic RNG spawning."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngFactory, TransientRng, as_generator, spawn_rng


class TestSpawnRng:
    def test_same_keys_same_stream(self):
        a = spawn_rng(42, "detector", 5)
        b = spawn_rng(42, "detector", 5)
        assert np.array_equal(a.random(100), b.random(100))

    def test_different_keys_different_streams(self):
        a = spawn_rng(42, "detector", 5)
        b = spawn_rng(42, "detector", 6)
        assert not np.array_equal(a.random(100), b.random(100))

    def test_different_seeds_different_streams(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert not np.array_equal(a.random(100), b.random(100))

    def test_key_types_distinguished(self):
        # The string "5" and the int 5 must map to distinct streams.
        a = spawn_rng(0, "5")
        b = spawn_rng(0, 5)
        assert not np.array_equal(a.random(50), b.random(50))

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_always_returns_generator(self, seed, key):
        gen = spawn_rng(seed, key)
        assert isinstance(gen, np.random.Generator)
        value = float(gen.random())
        assert 0.0 <= value < 1.0


class TestRngFactory:
    def test_stream_stability(self):
        factory = RngFactory(7)
        first = factory.stream("a", 1).random(10)
        second = factory.stream("a", 1).random(10)
        assert np.array_equal(first, second)

    def test_child_independence(self):
        factory = RngFactory(7)
        child = factory.child("sub")
        assert child.seed != factory.seed
        a = factory.stream("x").random(50)
        b = child.stream("x").random(50)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        assert RngFactory(7).child("sub").seed == RngFactory(7).child("sub").seed

    def test_integers_in_range(self):
        factory = RngFactory(3)
        for _ in range(20):
            value = factory.integers(5, 15, "k")
            assert 5 <= value < 15

    def test_generator_shortcut(self):
        factory = RngFactory(9)
        assert isinstance(factory.generator(), np.random.Generator)


class TestAsGenerator:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_int(self):
        a = as_generator(5).random(10)
        b = as_generator(5).random(10)
        assert np.array_equal(a, b)

    def test_from_factory(self):
        factory = RngFactory(5)
        assert isinstance(as_generator(factory), np.random.Generator)

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestTransientRng:
    def test_reproducible_per_key(self):
        pool = TransientRng()
        a = pool.seeded(42, "detect", 0, 7).random()
        b = pool.seeded(42, "detect", 0, 7).random()
        assert a == b

    def test_distinct_keys_distinct_streams(self):
        pool = TransientRng()
        a = pool.seeded(42, "detect", 0, 7).random()
        b = pool.seeded(42, "detect", 0, 8).random()
        assert a != b

    def test_independent_pools_agree(self):
        a = TransientRng().seeded(3, "x", 1)
        draws_a = [a.random() for _ in range(4)] + [float(a.beta(8, 2))]
        b = TransientRng().seeded(3, "x", 1)
        draws_b = [b.random() for _ in range(4)] + [float(b.beta(8, 2))]
        assert draws_a == draws_b

    def test_reseeding_resets_mid_stream(self):
        pool = TransientRng()
        gen = pool.seeded(1, "k")
        first = gen.random()
        gen.random()  # advance
        assert pool.seeded(1, "k").random() == first
