"""Tests for the §VII fusion searcher and its hybrid frame order."""

import numpy as np
import pytest

from repro.core.config import ExSampleConfig
from repro.core.environment import CallbackEnvironment, Observation
from repro.errors import ConfigError
from repro.extensions.fusion import FusionSearcher, HybridScoredOrder
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.utils.rng import RngFactory, spawn_rng

from tests.conftest import make_tiny_dataset


class TestHybridScoredOrder:
    def _order(self, size=100, upgrade_after=5, scores=None, events=None):
        events = events if events is not None else []
        score_array = scores if scores is not None else np.zeros(size)
        return (
            HybridScoredOrder(
                size,
                spawn_rng(0, "h"),
                score_fn=lambda: score_array,
                upgrade_after=upgrade_after,
                on_upgrade=lambda: events.append("scan"),
            ),
            events,
        )

    def test_is_permutation(self):
        order, _ = self._order(size=60, upgrade_after=10)
        out = []
        while order.remaining:
            out.append(order.next())
        assert sorted(out) == list(range(60))

    def test_upgrade_fires_once_at_threshold(self):
        order, events = self._order(size=50, upgrade_after=5)
        for _ in range(5):
            order.next()
        assert events == []  # threshold draws happen pre-upgrade
        order.next()
        assert events == ["scan"]
        order.next()
        assert events == ["scan"]
        assert order.upgraded

    def test_no_upgrade_if_never_reached(self):
        order, events = self._order(size=50, upgrade_after=10)
        for _ in range(9):
            order.next()
        assert events == []

    def test_upgrade_after_zero_scans_immediately(self):
        order, events = self._order(size=50, upgrade_after=0)
        order.next()
        assert events == ["scan"]

    def test_scored_phase_prefers_high_scores(self):
        size = 200
        scores = np.zeros(size)
        scores[:10] = 50.0
        hits = 0
        for seed in range(100):
            order = HybridScoredOrder(
                size,
                spawn_rng(seed, "h2"),
                score_fn=lambda: scores,
                upgrade_after=0,
                on_upgrade=lambda: None,
            )
            if order.next() < 10:
                hits += 1
        assert hits > 80

    def test_scored_phase_skips_already_emitted(self):
        size = 30
        order, _ = self._order(size=size, upgrade_after=15)
        out = [order.next() for _ in range(size)]
        assert sorted(out) == list(range(size))
        assert len(set(out)) == size

    def test_validation(self):
        with pytest.raises(ConfigError):
            HybridScoredOrder(
                10, spawn_rng(0, "h3"), lambda: np.zeros(10), -1, lambda: None
            )
        order = HybridScoredOrder(
            10, spawn_rng(0, "h4"), lambda: np.zeros(4), 0, lambda: None
        )
        with pytest.raises(ConfigError):
            order.next()  # score shape mismatch surfaces at upgrade


def skewed_env(good_chunk=1, n_chunks=4, size=200):
    def observe(chunk, frame):
        found = int(chunk == good_chunk and frame % 4 == 0)
        return Observation(
            d0=found, d1=0, results=[chunk * size + frame] * found, cost=1.0
        )

    return CallbackEnvironment([size] * n_chunks, observe)


class TestFusionSearcher:
    def _searcher(self, env, upgrade_after=8, scan_cost=10.0, scores=None):
        n_chunks = env.chunk_sizes().size
        size = int(env.chunk_sizes()[0])
        score_map = scores or {
            j: np.zeros(size, dtype=float) for j in range(n_chunks)
        }
        return FusionSearcher(
            env,
            chunk_scores=lambda j: score_map[j],
            chunk_scan_cost=lambda j: scan_cost,
            config=ExSampleConfig(seed=0),
            rng=RngFactory(0),
            upgrade_after=upgrade_after,
        )

    def test_runs_and_finds(self):
        searcher = self._searcher(skewed_env())
        trace = searcher.run(result_limit=20)
        assert trace.num_results >= 20

    def test_scan_cost_charged_in_trace(self):
        searcher = self._searcher(skewed_env(), upgrade_after=2, scan_cost=100.0)
        trace = searcher.run(result_limit=20)
        scans = len(searcher.scanned_chunks)
        assert scans >= 1
        # Total cost = one unit per frame + 100 per scanned chunk.
        assert trace.total_cost == pytest.approx(trace.num_samples + 100.0 * scans)

    def test_cold_chunks_never_scanned(self):
        searcher = self._searcher(skewed_env(), upgrade_after=10_000)
        searcher.run(result_limit=20)
        assert searcher.scanned_chunks == []

    def test_good_scores_cut_sample_count(self):
        """Scores aligned with the hit pattern reduce detector invocations."""
        size = 200
        hit_scores = np.zeros(size)
        hit_scores[::4] = 10.0  # matches the observe() hit pattern
        flat = {j: np.zeros(size) for j in range(4)}
        informative = {j: hit_scores.copy() for j in range(4)}
        flat_trace = self._searcher(
            skewed_env(), upgrade_after=4, scores=flat
        ).run(result_limit=30)
        sharp_trace = self._searcher(
            skewed_env(), upgrade_after=4, scores=informative
        ).run(result_limit=30)
        assert sharp_trace.num_samples < flat_trace.num_samples

    def test_validation(self):
        env = skewed_env()
        with pytest.raises(ConfigError):
            FusionSearcher(
                env,
                chunk_scores=lambda j: np.zeros(200),
                chunk_scan_cost=lambda j: 1.0,
                upgrade_after=-1,
            )
        with pytest.raises(ConfigError):
            FusionSearcher(
                env,
                chunk_scores=lambda j: np.zeros(200),
                chunk_scan_cost=lambda j: 1.0,
                temperature=0,
            )


class TestEngineIntegration:
    def test_fusion_method_runs(self):
        engine = QueryEngine(make_tiny_dataset(seed=8), seed=8)
        outcome = engine.run(
            DistinctObjectQuery("car", limit=5), method="exsample_fusion"
        )
        assert outcome.num_results >= 5

    def test_fusion_beats_proxy_on_time(self):
        """Fusion's incremental scans must undercut the full upfront scan."""
        engine = QueryEngine(make_tiny_dataset(seed=8), seed=8)
        query = DistinctObjectQuery("bicycle", recall_target=0.5)
        fusion = engine.run(query, method="exsample_fusion")
        proxy = engine.run(query, method="proxy")
        t_fusion = fusion.time_to_recall(0.5)
        t_proxy = proxy.time_to_recall(0.5)
        assert t_fusion is not None and t_proxy is not None
        assert t_fusion < t_proxy

    def test_fusion_sample_efficiency(self):
        """With a decent proxy, fusion needs no more samples than ExSample
        (allowing small-scale noise)."""
        engine = QueryEngine(make_tiny_dataset(seed=8), seed=8)
        query = DistinctObjectQuery("bicycle", recall_target=0.7)
        fusion_samples = []
        plain_samples = []
        for seed in range(3):
            fusion_samples.append(
                engine.run(
                    query, method="exsample_fusion", run_seed=seed
                ).trace.num_samples
            )
            plain_samples.append(
                engine.run(query, method="exsample", run_seed=seed).trace.num_samples
            )
        assert np.median(fusion_samples) <= np.median(plain_samples) * 1.5
