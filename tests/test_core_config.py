"""Tests for ExSampleConfig validation."""

import pytest

from repro.core.config import PAPER_ALPHA0, PAPER_BETA0, ExSampleConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_priors(self):
        config = ExSampleConfig()
        assert config.alpha0 == PAPER_ALPHA0 == 0.1
        assert config.beta0 == PAPER_BETA0 == 1.0

    def test_paper_policy_and_order(self):
        config = ExSampleConfig()
        assert config.policy == "thompson"
        assert config.within_chunk_order == "randomplus"
        assert config.batch_size == 1


class TestValidation:
    @pytest.mark.parametrize("alpha0", [0.0, -0.1])
    def test_rejects_nonpositive_alpha0(self, alpha0):
        with pytest.raises(ConfigError):
            ExSampleConfig(alpha0=alpha0)

    @pytest.mark.parametrize("beta0", [0.0, -1.0])
    def test_rejects_nonpositive_beta0(self, beta0):
        with pytest.raises(ConfigError):
            ExSampleConfig(beta0=beta0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError, match="policy"):
            ExSampleConfig(policy="ucb1")

    def test_rejects_unknown_order(self):
        with pytest.raises(ConfigError, match="order"):
            ExSampleConfig(within_chunk_order="zigzag")

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            ExSampleConfig(batch_size=0)

    def test_rejects_bad_ucb_horizon(self):
        with pytest.raises(ConfigError):
            ExSampleConfig(ucb_horizon=0)

    @pytest.mark.parametrize(
        "policy", ["thompson", "bayes_ucb", "greedy", "uniform"]
    )
    def test_accepts_all_policies(self, policy):
        assert ExSampleConfig(policy=policy).policy == policy


class TestReplace:
    def test_replace_returns_new(self):
        base = ExSampleConfig()
        changed = base.replace(batch_size=8)
        assert changed.batch_size == 8
        assert base.batch_size == 1

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            ExSampleConfig().replace(alpha0=-1)


class TestVectorPriors:
    """Per-chunk prior arrays: the repository index's warm-start format."""

    def test_accepts_per_chunk_arrays(self):
        import numpy as np

        config = ExSampleConfig(
            alpha0=[0.1, 2.0, 0.5], beta0=np.array([1.0, 11.0, 4.0])
        )
        assert isinstance(config.alpha0, np.ndarray)
        assert config.alpha0.tolist() == [0.1, 2.0, 0.5]
        assert config.beta0.tolist() == [1.0, 11.0, 4.0]

    def test_normalised_arrays_are_read_only(self):
        import numpy as np

        config = ExSampleConfig(alpha0=[0.1, 2.0])
        with pytest.raises(ValueError):
            config.alpha0[0] = 5.0
        assert not config.alpha0.flags.writeable
        assert np.shares_memory(config.alpha0, config.alpha0) is True

    def test_scalar_and_mixed_priors_still_work(self):
        config = ExSampleConfig(alpha0=0.3, beta0=[1.0, 2.0])
        assert config.alpha0 == 0.3
        assert config.beta0.tolist() == [1.0, 2.0]

    @pytest.mark.parametrize(
        "bad",
        [
            [0.1, 0.0],               # a nonpositive entry
            [0.1, -2.0],
            [],                       # empty
            [[0.1, 0.2]],             # 2-D
            [0.1, float("nan")],      # non-finite
            [0.1, float("inf")],
        ],
    )
    def test_rejects_bad_arrays_for_both_priors(self, bad):
        with pytest.raises(ConfigError):
            ExSampleConfig(alpha0=bad)
        with pytest.raises(ConfigError):
            ExSampleConfig(beta0=bad)

    def test_replace_preserves_vector_priors(self):
        import numpy as np

        base = ExSampleConfig(alpha0=[0.1, 2.0])
        changed = base.replace(batch_size=8)
        assert np.array_equal(changed.alpha0, base.alpha0)
        assert changed.batch_size == 8
