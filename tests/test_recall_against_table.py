"""Tests for approximate-GT recall accounting (§V-A denominators)."""

import pytest

from repro.detection.simulated import PERFECT_PROFILE, SimulatedDetector
from repro.errors import QueryError
from repro.query.engine import QueryEngine
from repro.query.metrics import recall_against_table
from repro.query.query import DistinctObjectQuery
from repro.tracking.groundtruth import approximate_ground_truth

from tests.conftest import make_tiny_dataset


class TestRecallAgainstTable:
    def test_denominator_swap(self):
        dataset = make_tiny_dataset(seed=15)
        engine = QueryEngine(dataset, seed=15)
        outcome = engine.run(
            DistinctObjectQuery("car", recall_target=0.5), method="exsample"
        )
        report = recall_against_table(
            outcome.trace, approx_count=40, true_count=dataset.gt_count("car")
        )
        assert report["found"] >= 1
        assert report["recall_vs_true"] == pytest.approx(
            report["found"] / dataset.gt_count("car")
        )
        assert report["recall_vs_approx"] == pytest.approx(
            min(report["found"] / 40, 1.0)
        )

    def test_capped_at_one(self):
        dataset = make_tiny_dataset(seed=15)
        engine = QueryEngine(dataset, seed=15)
        outcome = engine.run(
            DistinctObjectQuery("car", recall_target=0.5), method="exsample"
        )
        report = recall_against_table(outcome.trace, approx_count=1, true_count=30)
        assert report["recall_vs_approx"] == 1.0

    def test_validation(self):
        dataset = make_tiny_dataset(seed=15)
        engine = QueryEngine(dataset, seed=15)
        outcome = engine.run(DistinctObjectQuery("car", limit=2))
        with pytest.raises(QueryError):
            recall_against_table(outcome.trace, approx_count=0, true_count=10)

    def test_paper_pipeline_end_to_end(self):
        """The §V-A evaluation loop: scan-built GT as the denominator."""
        dataset = make_tiny_dataset(seed=15)
        detector = SimulatedDetector(dataset.world, profile=PERFECT_PROFILE, seed=0)
        table = approximate_ground_truth(dataset, detector, stride=2)
        engine = QueryEngine(dataset, detector=detector, seed=15)
        outcome = engine.run(
            DistinctObjectQuery("car", recall_target=0.5), method="exsample"
        )
        report = recall_against_table(
            outcome.trace,
            approx_count=max(table.count("car"), 1),
            true_count=dataset.gt_count("car"),
        )
        # With a perfect detector, the approximate denominator sits near the
        # truth, so both recalls agree closely.
        assert report["denominator_ratio"] == pytest.approx(1.0, abs=0.35)
        assert abs(
            report["recall_vs_true"] - report["recall_vs_approx"]
        ) < 0.35
