"""Smoke tests: every example script must run end-to-end.

Examples are the first thing a new user executes; breaking one silently is
worse than breaking an internal module. Each test imports the script as a
module and runs its ``main()`` with stdout captured (the fusion example is
exercised at reduced scope elsewhere — it sweeps nine full queries and is
too slow for the unit suite, so here we only verify it imports and exposes
the expected entry point).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "rare_object_hunt",
    "proxy_vs_sampling",
    "chunk_tuning",
    "custom_dataset",
    "streaming_resume",
    "async_serving",
    "fleet_serving",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{name} produced no output"


def test_all_examples_present():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= names
    assert "fusion_search" in names


def test_fusion_example_importable():
    module = load_example("fusion_search")
    assert callable(module.main)
