"""Cross-dataset invariants: properties every built dataset must satisfy.

These are parametrised over all six dataset builders and every class inside
them — the broad structural safety net underneath the experiment harnesses.
"""

import numpy as np
import pytest

from repro.detection.proxy import ProxyModel
from repro.detection.simulated import SimulatedDetector
from repro.video.datasets import DATASET_BUILDERS, make_dataset

SCALE = 0.02


@pytest.fixture(scope="module", params=sorted(DATASET_BUILDERS))
def dataset(request):
    return make_dataset(request.param, scale=SCALE, seed=1)


class TestStructuralInvariants:
    def test_chunks_partition_repository(self, dataset):
        sizes = dataset.chunk_map.sizes()
        assert sizes.sum() == dataset.total_frames
        assert np.all(sizes > 0)

    def test_global_bounds_monotone(self, dataset):
        bounds = dataset.chunk_map.global_bounds()
        assert bounds[0] == 0
        assert bounds[-1] == dataset.total_frames
        assert np.all(np.diff(bounds) > 0)

    def test_every_instance_inside_its_video(self, dataset):
        for inst in dataset.world.instances:
            video = dataset.repository.videos[inst.video]
            assert 0 <= inst.start < inst.end <= video.num_frames

    def test_global_coordinates_consistent(self, dataset):
        for inst in dataset.world.instances[:: max(len(dataset.world.instances) // 50, 1)]:
            expected = dataset.repository.global_index(inst.video, inst.start)
            assert inst.global_start == expected

    def test_chunk_counts_sum_to_gt(self, dataset):
        bounds = dataset.chunk_map.global_bounds()
        for class_name in dataset.classes:
            counts = dataset.world.chunk_counts(class_name, bounds)
            assert counts.sum() == dataset.gt_count(class_name)

    def test_chunk_probability_mass_conservation(self, dataset):
        bounds = dataset.chunk_map.global_bounds()
        widths = np.diff(bounds).astype(float)
        for class_name in dataset.classes[:3]:
            p = dataset.world.chunk_probabilities(class_name, bounds)
            durations = np.array(
                [i.duration for i in dataset.world.instances_of(class_name)],
                dtype=float,
            )
            assert p @ widths == pytest.approx(durations)

    def test_presence_mask_density_sane(self, dataset):
        """Mask density can exceed per-instance duration share (instances
        overlap) but must never exceed their summed share."""
        for class_name in dataset.classes[:3]:
            mask = dataset.world.presence_mask(class_name)
            durations = sum(
                i.duration for i in dataset.world.instances_of(class_name)
            )
            assert 0 < mask.sum() <= durations


class TestSubstratesOverDatasets:
    def test_detector_deterministic_everywhere(self, dataset):
        detector_a = SimulatedDetector(dataset.world, seed=5)
        detector_b = SimulatedDetector(dataset.world, seed=5)
        rng_frames = np.linspace(
            0, dataset.repository.videos[0].num_frames - 1, 5
        ).astype(int)
        for frame in rng_frames:
            a = detector_a.detect(0, int(frame))
            b = detector_b.detect(0, int(frame))
            assert [d.score for d in a] == [d.score for d in b]

    def test_proxy_scores_cover_dataset(self, dataset):
        class_name = dataset.classes[0]
        proxy = ProxyModel(dataset.world, class_name, quality=0.85, seed=2)
        scores = proxy.score_all()
        assert scores.shape == (dataset.total_frames,)
        assert np.isfinite(scores).all()
