"""Tests for trace/outcome persistence."""

import json

import numpy as np
import pytest

from repro.core.sampler import SearchTrace
from repro.io import (
    PersistenceError,
    dataset_fingerprint,
    load_outcome_summary,
    load_trace,
    save_outcome_summary,
    save_trace,
)
from repro.query.engine import FoundObject, QueryEngine
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset


def make_trace():
    return SearchTrace(
        chunks=np.array([0, 1, 1], dtype=np.int64),
        frames=np.array([5, 2, 9], dtype=np.int64),
        d0s=np.array([1, 0, 2], dtype=np.int64),
        d1s=np.array([0, 1, 0], dtype=np.int64),
        costs=np.array([0.05, 0.05, 0.05]),
        results=[
            7,
            FoundObject(
                video=0, frame=9, class_name="car", score=0.9,
                box_xyxy=(1.0, 2.0, 3.0, 4.0), instance_uid=12, track_id=0,
            ),
            FoundObject(
                video=0, frame=9, class_name="car", score=0.4,
                box_xyxy=(5.0, 6.0, 7.0, 8.0), instance_uid=None, track_id=1,
            ),
        ],
        upfront_cost=3.5,
        searcher="exsample",
    )


class TestTraceRoundTrip:
    def test_arrays_and_scalars(self, tmp_path):
        trace = make_trace()
        path = save_trace(trace, tmp_path / "run1")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert np.array_equal(loaded.chunks, trace.chunks)
        assert np.array_equal(loaded.frames, trace.frames)
        assert np.array_equal(loaded.d0s, trace.d0s)
        assert np.array_equal(loaded.d1s, trace.d1s)
        assert np.allclose(loaded.costs, trace.costs)
        assert loaded.upfront_cost == trace.upfront_cost
        assert loaded.searcher == "exsample"

    def test_payloads_round_trip(self, tmp_path):
        trace = make_trace()
        loaded = load_trace(save_trace(trace, tmp_path / "run2"))
        assert loaded.results[0] == 7
        found = loaded.results[1]
        assert isinstance(found, FoundObject)
        assert found.instance_uid == 12
        assert found.box_xyxy == (1.0, 2.0, 3.0, 4.0)
        assert loaded.results[2].instance_uid is None

    def test_derived_metrics_survive(self, tmp_path):
        trace = make_trace()
        loaded = load_trace(save_trace(trace, tmp_path / "run3"))
        assert loaded.total_cost == pytest.approx(trace.total_cost)
        assert loaded.samples_to_results(3) == trace.samples_to_results(3)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises((PersistenceError, Exception)):
            load_trace(path)

    def test_end_to_end_with_engine(self, tmp_path):
        engine = QueryEngine(make_tiny_dataset(seed=13), seed=13)
        outcome = engine.run(DistinctObjectQuery("car", limit=5))
        loaded = load_trace(save_trace(outcome.trace, tmp_path / "real"))
        assert loaded.num_results == outcome.trace.num_results
        assert loaded.num_samples == outcome.trace.num_samples


class TestOutcomeSummary:
    def test_summary_round_trip(self, tmp_path):
        dataset = make_tiny_dataset(seed=13)
        engine = QueryEngine(dataset, seed=13)
        outcome = engine.run(DistinctObjectQuery("car", recall_target=0.4))
        path = save_outcome_summary(
            outcome, tmp_path / "summary.json", dataset=dataset
        )
        summary = load_outcome_summary(path)
        assert summary["method"] == "exsample"
        assert summary["gt_count"] == dataset.gt_count("car")
        assert summary["final_recall"] >= 0.4
        assert summary["dataset"]["name"] == "tiny"
        assert "0.1" in summary["milestones"]

    def test_summary_is_valid_json(self, tmp_path):
        dataset = make_tiny_dataset(seed=13)
        engine = QueryEngine(dataset, seed=13)
        outcome = engine.run(DistinctObjectQuery("car", limit=3))
        path = save_outcome_summary(outcome, tmp_path / "s.json")
        parsed = json.loads(path.read_text())
        assert parsed["num_results"] >= 3

    def test_corrupt_summary(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(PersistenceError):
            load_outcome_summary(path)


class TestFingerprint:
    def test_fields(self):
        dataset = make_tiny_dataset(seed=13)
        fp = dataset_fingerprint(dataset)
        assert fp["name"] == "tiny"
        assert fp["total_frames"] == dataset.total_frames
        assert fp["classes"] == dataset.classes
