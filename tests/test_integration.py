"""Integration tests: the paper's headline claims at reduced scale.

These run the full pipeline (dataset -> detector -> discriminator ->
searchers -> metrics) and assert the *relationships* the paper reports, with
tolerances appropriate for miniature workloads:

1. ExSample substantially beats random sampling under skew (§V-C);
2. ExSample is not much worse than random without skew (§IV-B);
3. ExSample reaches high recall before a proxy scan completes (Table I);
4. the Eq. IV.1 oracle upper-bounds ExSample's discovery curve (§IV-A);
5. batched ExSample behaves like unbatched (§III-F).
"""

import numpy as np

from repro.baselines import RandomSearcher
from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.query.engine import QueryEngine
from repro.query.metrics import time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.optimal_weights import expected_found, optimal_weights
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory, spawn_rng
from repro.video.datasets import make_dataset


def median_samples(make_searcher, runs, target):
    values = []
    for run_idx in range(runs):
        trace = make_searcher(run_idx).run(result_limit=target)
        values.append(trace.num_samples)
    return float(np.median(values))


class TestSkewAdvantage:
    """§V-C: under skew ExSample clearly beats random sampling."""

    def test_heavy_skew_big_savings(self):
        population = InstancePopulation.place(
            400, 400_000, 700, spawn_rng(0, "it"), skew_fraction=1 / 32
        )
        bounds = even_chunk_bounds(400_000, 32)
        target = 200

        def make_ex(run_idx):
            return ExSampleSearcher(
                TemporalEnvironment(population, bounds),
                ExSampleConfig(seed=run_idx),
                rng=RngFactory(run_idx),
            )

        def make_rnd(run_idx):
            return RandomSearcher(
                TemporalEnvironment(population, bounds), rng=RngFactory(100 + run_idx)
            )

        ex = median_samples(make_ex, 5, target)
        rnd = median_samples(make_rnd, 5, target)
        assert rnd / ex > 1.5

    def test_no_skew_not_much_worse(self):
        """Figure 3 top row: worst observed 0.79x; we allow 0.6x at tiny scale."""
        population = InstancePopulation.place(
            400, 400_000, 700, spawn_rng(1, "it"), skew_fraction=None
        )
        bounds = even_chunk_bounds(400_000, 32)
        target = 150

        def make_ex(run_idx):
            return ExSampleSearcher(
                TemporalEnvironment(population, bounds),
                ExSampleConfig(seed=run_idx),
                rng=RngFactory(run_idx),
            )

        def make_rnd(run_idx):
            return RandomSearcher(
                TemporalEnvironment(population, bounds), rng=RngFactory(100 + run_idx)
            )

        ex = median_samples(make_ex, 5, target)
        rnd = median_samples(make_rnd, 5, target)
        assert rnd / ex > 0.6


class TestProxyRelation:
    """Table I: ExSample@90% beats the scan on a skewed video dataset."""

    def test_exsample_beats_scan_time(self):
        dataset = make_dataset("dashcam", scale=0.04, seed=1)
        engine = QueryEngine(dataset, seed=1)
        scan_seconds = engine.cost_model.scan_cost(dataset.total_frames)
        query = DistinctObjectQuery(
            "traffic light", recall_target=0.9, frame_budget=dataset.total_frames
        )
        outcome = engine.run(query, method="exsample")
        t90 = time_to_recall(outcome.trace, outcome.gt_count, 0.9)
        assert t90 is not None
        assert t90 < scan_seconds

    def test_proxy_time_dominated_by_scan(self):
        dataset = make_dataset("night_street", scale=0.04, seed=2)
        engine = QueryEngine(dataset, seed=2)
        query = DistinctObjectQuery(
            "person", recall_target=0.5, frame_budget=dataset.total_frames
        )
        ex = engine.run(query, method="exsample")
        px = engine.run(query, method="proxy")
        t_ex = time_to_recall(ex.trace, ex.gt_count, 0.5)
        t_px = time_to_recall(px.trace, px.gt_count, 0.5)
        assert t_ex is not None and t_px is not None
        assert t_px > t_ex * 3  # scan swamps everything


class TestOracleUpperBound:
    """§IV-A: the optimal static allocation upper-bounds ExSample."""

    def test_exsample_below_oracle_expectation(self):
        population = InstancePopulation.place(
            500, 500_000, 700, spawn_rng(3, "it"), skew_fraction=1 / 16
        )
        bounds = even_chunk_bounds(500_000, 16)
        budget = 2500
        p_matrix = population.chunk_probabilities(bounds)
        weights = optimal_weights(p_matrix, float(budget))
        oracle_expected = expected_found(p_matrix, weights, float(budget))
        found = []
        for seed in range(5):
            env = TemporalEnvironment(population, bounds)
            trace = ExSampleSearcher(
                env, ExSampleConfig(seed=seed), rng=RngFactory(seed)
            ).run(frame_budget=budget)
            found.append(trace.num_results)
        # Median realised discovery stays at or below the offline optimum
        # (small slack: the oracle expectation is itself an estimate of a
        # mean, single runs fluctuate).
        assert np.median(found) <= oracle_expected * 1.05

    def test_exsample_approaches_oracle(self):
        """...but not by much: ExSample converges toward the dashed line."""
        population = InstancePopulation.place(
            500, 500_000, 700, spawn_rng(4, "it"), skew_fraction=1 / 16
        )
        bounds = even_chunk_bounds(500_000, 16)
        budget = 4000
        p_matrix = population.chunk_probabilities(bounds)
        weights = optimal_weights(p_matrix, float(budget))
        oracle_expected = expected_found(p_matrix, weights, float(budget))
        env = TemporalEnvironment(population, bounds)
        trace = ExSampleSearcher(
            env, ExSampleConfig(seed=0), rng=RngFactory(0)
        ).run(frame_budget=budget)
        assert trace.num_results > 0.8 * oracle_expected


class TestBatchedEquivalence:
    """§III-F: batching changes throughput, not outcome quality (much)."""

    def test_batched_close_to_unbatched(self):
        population = InstancePopulation.place(
            400, 400_000, 700, spawn_rng(5, "it"), skew_fraction=1 / 16
        )
        bounds = even_chunk_bounds(400_000, 32)
        budget = 2000

        def run_with_batch(batch, seed):
            env = TemporalEnvironment(population, bounds)
            return ExSampleSearcher(
                env,
                ExSampleConfig(seed=seed, batch_size=batch),
                rng=RngFactory(seed),
            ).run(frame_budget=budget).num_results

        single = np.median([run_with_batch(1, s) for s in range(3)])
        batched = np.median([run_with_batch(16, s) for s in range(3)])
        assert batched > single * 0.85


class TestEndToEndRecallHonesty:
    """Recall accounting must be robust to detector noise and FP tracks."""

    def test_precision_reasonable_with_noisy_detector(self):
        dataset = make_dataset("dashcam", scale=0.03, seed=3)
        engine = QueryEngine(dataset, seed=3)
        outcome = engine.run(
            DistinctObjectQuery("person", recall_target=0.5), method="exsample"
        )
        from repro.query.metrics import precision

        assert precision(outcome.trace) > 0.6

    def test_recall_never_exceeds_one(self):
        dataset = make_dataset("dashcam", scale=0.03, seed=3)
        engine = QueryEngine(dataset, seed=3)
        outcome = engine.run(
            DistinctObjectQuery("bus", frame_budget=2000), method="random"
        )
        from repro.query.metrics import recall_curve

        curve = recall_curve(outcome.trace, outcome.gt_count)
        assert np.all(curve <= 1.0 + 1e-9)
        assert np.all(np.diff(curve) >= 0)
