"""Tests for the query engine over the tiny dataset."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query.engine import SEARCH_METHODS, QueryEngine
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_tiny_dataset(seed=6), seed=6)


class TestRunMethods:
    @pytest.mark.parametrize("method", SEARCH_METHODS)
    def test_every_method_completes(self, engine, method):
        query = DistinctObjectQuery("car", limit=5)
        outcome = engine.run(query, method=method)
        assert outcome.num_results >= 5
        assert outcome.trace.num_samples >= 1
        assert outcome.method == method

    def test_unknown_method(self, engine):
        with pytest.raises(QueryError):
            engine.run(DistinctObjectQuery("car", limit=1), method="magic")

    def test_unknown_class(self, engine):
        with pytest.raises(QueryError):
            engine.run(DistinctObjectQuery("plane", limit=1))


class TestOutcome:
    def test_recall_target_reaches_target(self, engine):
        query = DistinctObjectQuery("car", recall_target=0.5)
        outcome = engine.run(query, method="exsample")
        assert outcome.recall() >= 0.5 - 1e-9

    def test_found_objects_have_metadata(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=3), method="exsample"
        )
        for found in outcome.found:
            assert found.class_name == "car"
            assert 0 <= found.score <= 1
            assert len(found.box_xyxy) == 4

    def test_frame_budget_respected(self, engine):
        query = DistinctObjectQuery("dog", frame_budget=25)
        outcome = engine.run(query, method="random")
        assert outcome.trace.num_samples <= 25

    def test_proxy_has_upfront_cost(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=2), method="proxy"
        )
        expected = engine.cost_model.scan_cost(engine.dataset.total_frames)
        assert outcome.trace.upfront_cost == pytest.approx(expected)

    def test_sampling_methods_have_no_upfront_cost(self, engine):
        for method in ("exsample", "random", "randomplus", "sequential"):
            outcome = engine.run(
                DistinctObjectQuery("car", limit=2), method=method
            )
            assert outcome.trace.upfront_cost == 0.0

    def test_costs_match_cost_model(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=2), method="random"
        )
        assert np.allclose(outcome.trace.costs, 1 / 20)


class TestEngineInternals:
    def test_proxy_model_cached(self, engine):
        a = engine.proxy_model("car", quality=0.8)
        b = engine.proxy_model("car", quality=0.8)
        assert a is b
        c = engine.proxy_model("car", quality=0.9)
        assert c is not a

    def test_environment_fresh_per_run(self, engine):
        env_a = engine.environment("car", run_seed=0)
        env_b = engine.environment("car", run_seed=0)
        assert env_a.discriminator is not env_b.discriminator

    def test_run_seed_changes_trajectory(self, engine):
        query = DistinctObjectQuery("car", limit=5)
        a = engine.run(query, method="exsample", run_seed=0)
        b = engine.run(query, method="exsample", run_seed=1)
        assert not np.array_equal(a.trace.frames[:10], b.trace.frames[:10])

    def test_run_deterministic_given_seed(self, engine):
        query = DistinctObjectQuery("car", limit=5)
        a = engine.run(query, method="exsample", run_seed=3)
        b = engine.run(query, method="exsample", run_seed=3)
        assert np.array_equal(a.trace.frames, b.trace.frames)
        assert np.array_equal(a.trace.chunks, b.trace.chunks)
