"""Tests for the query engine over the tiny dataset."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query.engine import SEARCH_METHODS, QueryEngine
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_tiny_dataset(seed=6), seed=6)


class TestRunMethods:
    @pytest.mark.parametrize("method", SEARCH_METHODS)
    def test_every_method_completes(self, engine, method):
        query = DistinctObjectQuery("car", limit=5)
        outcome = engine.run(query, method=method)
        assert outcome.num_results >= 5
        assert outcome.trace.num_samples >= 1
        assert outcome.method == method

    def test_unknown_method(self, engine):
        with pytest.raises(QueryError):
            engine.run(DistinctObjectQuery("car", limit=1), method="magic")

    def test_unknown_class(self, engine):
        with pytest.raises(QueryError):
            engine.run(DistinctObjectQuery("plane", limit=1))


class TestOutcome:
    def test_recall_target_reaches_target(self, engine):
        query = DistinctObjectQuery("car", recall_target=0.5)
        outcome = engine.run(query, method="exsample")
        assert outcome.recall() >= 0.5 - 1e-9

    def test_found_objects_have_metadata(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=3), method="exsample"
        )
        for found in outcome.found:
            assert found.class_name == "car"
            assert 0 <= found.score <= 1
            assert len(found.box_xyxy) == 4

    def test_frame_budget_respected(self, engine):
        query = DistinctObjectQuery("dog", frame_budget=25)
        outcome = engine.run(query, method="random")
        assert outcome.trace.num_samples <= 25

    def test_cost_budget_respected(self, engine):
        frame_cost = 1.0 / engine.cost_model.detector_fps
        # A budget mid-way through frame 31 sidesteps float-sum dust.
        query = DistinctObjectQuery("dog", cost_budget=30.5 * frame_cost)
        outcome = engine.run(query, method="random")
        # Stops the moment the budget is crossed, never a full frame past.
        assert outcome.trace.num_samples == 31
        assert outcome.trace.total_cost == pytest.approx(31 * frame_cost)

    def test_cost_budget_with_recall_target(self, engine):
        frame_cost = 1.0 / engine.cost_model.detector_fps
        budget = 10.5 * frame_cost
        query = DistinctObjectQuery(
            "car", recall_target=0.9, cost_budget=budget
        )
        outcome = engine.run(query, method="exsample")
        # At most the frame that crosses the budget is charged beyond it.
        assert outcome.trace.num_samples <= 11
        assert outcome.trace.total_cost < budget + frame_cost

    def test_cost_budget_includes_proxy_scan(self, engine):
        scan = engine.cost_model.scan_cost(engine.dataset.total_frames)
        query = DistinctObjectQuery("car", limit=50, cost_budget=scan / 2)
        outcome = engine.run(query, method="proxy")
        # The upfront scan alone exceeds the budget: nothing gets sampled.
        assert outcome.trace.num_samples == 0

    def test_proxy_has_upfront_cost(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=2), method="proxy"
        )
        expected = engine.cost_model.scan_cost(engine.dataset.total_frames)
        assert outcome.trace.upfront_cost == pytest.approx(expected)

    def test_sampling_methods_have_no_upfront_cost(self, engine):
        for method in ("exsample", "random", "randomplus", "sequential"):
            outcome = engine.run(
                DistinctObjectQuery("car", limit=2), method=method
            )
            assert outcome.trace.upfront_cost == 0.0

    def test_costs_match_cost_model(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=2), method="random"
        )
        assert np.allclose(outcome.trace.costs, 1 / 20)


class TestEngineInternals:
    def test_proxy_model_cached(self, engine):
        a = engine.proxy_model("car", quality=0.8)
        b = engine.proxy_model("car", quality=0.8)
        assert a is b
        c = engine.proxy_model("car", quality=0.9)
        assert c is not a

    def test_environment_fresh_per_run(self, engine):
        env_a = engine.environment("car", run_seed=0)
        env_b = engine.environment("car", run_seed=0)
        assert env_a.discriminator is not env_b.discriminator

    def test_run_seed_changes_trajectory(self, engine):
        query = DistinctObjectQuery("car", limit=5)
        a = engine.run(query, method="exsample", run_seed=0)
        b = engine.run(query, method="exsample", run_seed=1)
        assert not np.array_equal(a.trace.frames[:10], b.trace.frames[:10])

    def test_run_deterministic_given_seed(self, engine):
        query = DistinctObjectQuery("car", limit=5)
        a = engine.run(query, method="exsample", run_seed=3)
        b = engine.run(query, method="exsample", run_seed=3)
        assert np.array_equal(a.trace.frames, b.trace.frames)
        assert np.array_equal(a.trace.chunks, b.trace.chunks)


def _mixed_fps_dataset(fps_a: float, fps_b: float):
    """A two-video dataset with heterogeneous frame rates."""
    from repro.video.chunks import FixedDurationChunker
    from repro.video.datasets import Dataset
    from repro.video.synthetic import ClassSpec, build_world
    from repro.video.video import Video, VideoRepository

    repository = VideoRepository(
        [
            Video("mixed-a", int(120 * fps_a), fps=fps_a, width=640, height=480),
            Video("mixed-b", int(120 * fps_b), fps=fps_b, width=640, height=480),
        ]
    )
    world = build_world(
        repository,
        [ClassSpec("car", count=20, mean_duration_s=6.0, size_range=(60, 200))],
        seed=1,
    )
    chunk_map = FixedDurationChunker(minutes=0.5).chunk(repository)
    return Dataset(
        name="mixed",
        repository=repository,
        world=world,
        chunk_map=chunk_map,
        camera="static",
    )


class TestBatchSizePlumbing:
    """make_searcher's batch_size must reach every method, not just exsample."""

    @pytest.mark.parametrize(
        "method", ["random", "randomplus", "sequential", "proxy", "oracle"]
    )
    def test_baselines_receive_batch_size(self, engine, method):
        env = engine.environment("car")
        searcher = engine.make_searcher(method, env, batch_size=16)
        assert searcher.batch_size == 16
        assert len(searcher.pick_batch()) == 16

    def test_exsample_folds_batch_size_into_config(self, engine):
        env = engine.environment("car")
        searcher = engine.make_searcher("exsample", env, batch_size=16)
        assert searcher.config.batch_size == 16

    def test_batch_size_conflicts_with_explicit_config(self, engine):
        from repro.core.config import ExSampleConfig

        env = engine.environment("car")
        with pytest.raises(QueryError):
            engine.make_searcher(
                "exsample", env, config=ExSampleConfig(), batch_size=8
            )

    def test_batch_size_validated(self, engine):
        env = engine.environment("car")
        with pytest.raises(QueryError):
            engine.make_searcher("random", env, batch_size=0)

    def test_run_accepts_batch_size(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", limit=5),
            method="random",
            batch_size=8,
        )
        assert outcome.num_results >= 5


class TestMixedFpsRepositories:
    """make_searcher must not assume videos[0].fps speaks for everyone."""

    def test_sequential_stride_uses_repository_fps(self):
        dataset = _mixed_fps_dataset(10.0, 30.0)
        engine = QueryEngine(dataset, seed=2)
        env = engine.environment("car")
        searcher = engine.make_searcher("sequential", env)
        # Frame-weighted: (1200*10 + 3600*30) / 4800 = 25.
        assert searcher.stride == int(dataset.repository.common_fps())
        assert searcher.stride == 25

    def test_sub_1fps_footage_gets_positive_stride(self):
        dataset = _mixed_fps_dataset(0.5, 0.5)
        engine = QueryEngine(dataset, seed=2)
        env = engine.environment("car")
        searcher = engine.make_searcher("sequential", env)
        assert searcher.stride == 1

    def test_explicit_stride_still_wins(self):
        dataset = _mixed_fps_dataset(10.0, 30.0)
        engine = QueryEngine(dataset, seed=2)
        env = engine.environment("car")
        searcher = engine.make_searcher("sequential", env, stride=7)
        assert searcher.stride == 7

    def test_query_runs_end_to_end(self):
        dataset = _mixed_fps_dataset(5.0, 30.0)
        engine = QueryEngine(dataset, seed=2)
        outcome = engine.run(
            DistinctObjectQuery("car", limit=3), method="sequential"
        )
        assert outcome.num_results >= 3
