"""Tests for the GPU-batching cost model and the batch-time ablation."""

import pytest

from repro.errors import ConfigError
from repro.experiments import ablations
from repro.query.cost import CostModel


class TestBatchedSampleCost:
    def test_batch_one_equals_single(self):
        model = CostModel(detector_fps=20.0)
        assert model.batched_sample_cost(1) == pytest.approx(1 / 20)

    def test_monotone_decreasing_in_batch(self):
        model = CostModel(detector_fps=20.0)
        costs = [model.batched_sample_cost(b) for b in (1, 2, 8, 64, 1024)]
        assert costs == sorted(costs, reverse=True)

    def test_asymptote_is_marginal_fraction(self):
        model = CostModel(detector_fps=20.0)
        limit = model.batched_sample_cost(10**6, marginal_fraction=0.4)
        assert limit == pytest.approx(0.4 / 20, rel=1e-3)

    def test_speedup_ceiling(self):
        model = CostModel(detector_fps=20.0)
        speedup = model.batched_sample_cost(1) / model.batched_sample_cost(10**6)
        assert speedup == pytest.approx(2.5, rel=1e-3)

    def test_validation(self):
        model = CostModel()
        with pytest.raises(ConfigError):
            model.batched_sample_cost(0)
        with pytest.raises(ConfigError):
            model.batched_sample_cost(8, marginal_fraction=0.0)
        with pytest.raises(ConfigError):
            model.batched_sample_cost(8, marginal_fraction=1.5)


class TestBatchTimeAblation:
    def test_batching_wins_on_time(self):
        """§III-F: despite costing samples, batching buys wall-clock time."""
        config = ablations.AblationConfig(
            num_instances=400,
            total_frames=400_000,
            num_chunks=16,
            runs=3,
            frame_budget=2500,
            target_results=150,
        )
        result = ablations.batch_time_ablation(config)
        t1 = result["batch=1 seconds"]
        t64 = result["batch=64 seconds"]
        assert t1 is not None and t64 is not None
        assert t64 < t1  # throughput gain outweighs sample inefficiency
