"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_query_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--object", "car"])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListDatasets:
    def test_lists_all_six(self):
        code, text = run_cli("list-datasets")
        assert code == 0
        for name in ("dashcam", "bdd1k", "bdd_mot", "amsterdam", "archie",
                     "night_street"):
            assert name in text


class TestQuery:
    def test_basic_query(self):
        code, text = run_cli(
            "query", "--dataset", "dashcam", "--object", "traffic light",
            "--limit", "5", "--scale", "0.02",
        )
        assert code == 0
        assert "distinct results" in text
        assert "video" in text

    def test_default_limit_applied(self):
        code, text = run_cli(
            "query", "--dataset", "dashcam", "--object", "person",
            "--scale", "0.02",
        )
        assert code == 0
        assert "distinct results" in text

    @pytest.mark.parametrize("method", ["random", "exsample_fusion"])
    def test_other_methods(self, method):
        code, text = run_cli(
            "query", "--dataset", "dashcam", "--object", "person",
            "--limit", "3", "--scale", "0.02", "--method", method,
        )
        assert code == 0


class TestCompare:
    def test_compare_all_methods(self):
        code, text = run_cli(
            "compare", "--dataset", "dashcam", "--object", "traffic light",
            "--recall", "0.3", "--scale", "0.02",
        )
        assert code == 0
        for method in ("exsample", "random", "proxy", "oracle"):
            assert method in text


class TestServe:
    def test_workload_replay(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text(
            """
            {"queries": [
              {"object": "person", "limit": 2, "tenant": "a", "batch_size": 4},
              {"object": "person", "limit": 2, "run_seed": 1, "tenant": "b",
               "batch_size": 4},
              {"object": "traffic light", "limit": 2, "tenant": "a",
               "arrival": 0.01, "batch_size": 4}
            ]}
            """
        )
        code, text = run_cli(
            "serve", "--dataset", "dashcam", "--workload", str(workload),
            "--scale", "0.02", "--time-scale", "0",
        )
        assert code == 0
        assert "workload replay" in text
        assert "finished" in text
        assert "detector:" in text
        assert "tenant a:" in text and "tenant b:" in text

    def test_invalid_entries_reported_cleanly(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text(
            """
            {"queries": [
              {"object": "person", "limit": 2},
              {"object": "unicorn", "limit": 1},
              {"object": "person", "method": "frobnicate"},
              {"object": "person", "limit": 1, "batch_size": 0}
            ]}
            """
        )
        code, text = run_cli(
            "serve", "--dataset", "dashcam", "--workload", str(workload),
        )
        assert code == 1
        assert "unicorn" in text
        assert "frobnicate" in text
        assert "batch_size" in text
        assert "workload replay" not in text  # nothing was served

    def test_empty_workload(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text('{"queries": []}')
        code, text = run_cli(
            "serve", "--dataset", "dashcam", "--workload", str(workload),
        )
        assert code == 0
        assert "empty" in text

    def test_policy_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--dataset", "dashcam", "--workload", "x.json",
                 "--policy", "lifo"]
            )

    def test_requires_exactly_one_of_workload_and_listen(self, tmp_path):
        code, text = run_cli("serve", "--dataset", "dashcam")
        assert code == 1
        assert "exactly one" in text
        workload = tmp_path / "wl.json"
        workload.write_text('{"queries": []}')
        code, text = run_cli(
            "serve", "--dataset", "dashcam", "--workload", str(workload),
            "--listen", "127.0.0.1:0",
        )
        assert code == 1
        assert "exactly one" in text

    def test_listen_spec_validated(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="HOST:PORT"):
            run_cli(
                "serve", "--dataset", "dashcam", "--listen", "no-port-here",
            )
        with pytest.raises(ReproError, match="integer"):
            run_cli(
                "serve", "--dataset", "dashcam", "--listen", "127.0.0.1:x",
            )


class TestFleet:
    def test_fleet_replay(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text(
            """
            {"queries": [
              {"object": "person", "limit": 2, "tenant": "a"},
              {"object": "person", "limit": 2, "run_seed": 1, "tenant": "b"},
              {"object": "traffic light", "limit": 1, "tenant": "a",
               "shard": 1}
            ]}
            """
        )
        code, text = run_cli(
            "fleet", "--dataset", "dashcam", "--workload", str(workload),
            "--scale", "0.02", "--time-scale", "0", "--shards", "2",
        )
        assert code == 0
        assert "fleet replay" in text
        assert "fleet: 2 shards" in text
        assert "finished" in text
        assert "shard 0:" in text and "shard 1:" in text

    def test_shard_pin_beyond_fleet_rejected(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text(
            '{"queries": [{"object": "person", "limit": 1, "shard": 5}]}'
        )
        code, text = run_cli(
            "fleet", "--dataset", "dashcam", "--workload", str(workload),
            "--scale", "0.02", "--shards", "2",
        )
        assert code == 1
        assert "invalid workload" in text
        assert "shard" in text

    def test_empty_workload(self, tmp_path):
        workload = tmp_path / "wl.json"
        workload.write_text('{"queries": []}')
        code, text = run_cli(
            "fleet", "--dataset", "dashcam", "--workload", str(workload),
        )
        assert code == 0
        assert "empty" in text

    def test_placement_and_context_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "--dataset", "dashcam", "--workload", "x.json",
                 "--placement", "round_robin_shards"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "--dataset", "dashcam", "--workload", "x.json",
                 "--context", "greenthreads"]
            )


class TestExperimentAndAblation:
    def test_fig6_experiment_runs(self, monkeypatch):
        # fig6 is the cheapest full-artifact harness; shrink it further by
        # monkeypatching its quick config.
        from repro.experiments import fig6 as fig6_mod

        monkeypatch.setattr(
            fig6_mod.Fig6Config, "quick",
            classmethod(lambda cls: cls(scale=0.02, trials=1)),
        )
        code, text = run_cli("experiment", "fig6")
        assert code == 0
        assert "Figure 6" in text

    def test_ablation_runs(self, monkeypatch):
        from repro.experiments import ablations as abl

        monkeypatch.setattr(
            abl.AblationConfig, "quick",
            classmethod(
                lambda cls: cls(
                    num_instances=150, total_frames=150_000, num_chunks=8,
                    runs=2, frame_budget=500, target_results=50,
                )
            ),
        )
        code, text = run_cli("ablation", "batch")
        assert code == 0
        assert "batch=1" in text
