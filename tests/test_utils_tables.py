"""Tests for the text rendering helpers."""

import pytest

from repro.utils.tables import ascii_table, format_duration, sparkline


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (52, "52s"),
            (97, "1m37s"),
            (537, "8m57s"),
            (2460, "41m"),
            (35400, "9h50m"),
            (3600, "1h"),
            (0, "0s"),
            (27060, "7h31m"),  # the paper's night-street/motorcycle@90%
        ],
    )
    def test_paper_table_values(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_rounds_fractional_seconds(self):
        assert format_duration(89.6) == "1m30s"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestAsciiTable:
    def test_contains_all_cells(self):
        out = ascii_table(["a", "bb"], [["x", 1], ["yy", 22]])
        assert "x" in out and "yy" in out and "22" in out

    def test_title_first_line(self):
        out = ascii_table(["a"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        out = ascii_table(["name", "value"], [["a", 1], ["bc", 234]])
        lines = out.splitlines()
        # All rows share a width.
        widths = {len(line) for line in lines if line}
        assert len(widths) <= 2  # header separator may differ slightly

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        out = ascii_table(["v"], [[1.23456], [2.0]])
        assert "1.23" in out
        assert "2" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        out = sparkline([3, 3, 3])
        assert out == out[0] * 3

    def test_rising_series_ends_high(self):
        out = sparkline(list(range(20)), width=20)
        assert out[-1] == "█"
        assert out[0] == "▁"

    def test_downsamples_to_width(self):
        out = sparkline(list(range(1000)), width=40)
        assert len(out) == 40
