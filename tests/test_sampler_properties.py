"""Property-based tests of the search loop's structural invariants.

Hypothesis drives the sampler over randomly shaped environments (chunk
layouts, hit patterns, policies, batch sizes) and checks the invariants that
must hold for *any* configuration:

* sampling is without replacement — no (chunk, frame) pair repeats;
* frames stay within their chunk's bounds;
* the per-chunk sample counts in the trace equal the searcher's n_j state;
* discovery curves are monotone and d0-consistent;
* stopping conditions are respected exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ExSampleConfig
from repro.core.environment import CallbackEnvironment, Observation
from repro.core.sampler import ExSampleSearcher
from repro.utils.rng import RngFactory

chunk_layouts = st.lists(
    st.integers(min_value=1, max_value=60), min_size=1, max_size=8
)
policies = st.sampled_from(["thompson", "bayes_ucb", "greedy", "uniform"])
orders = st.sampled_from(["randomplus", "uniform", "sequential"])
batch_sizes = st.sampled_from([1, 3, 16])


def hit_env(sizes, hit_modulus):
    """Deterministic environment: a frame holds an object iff divisible."""

    def observe(chunk, frame):
        found = int((chunk * 1000 + frame) % hit_modulus == 0)
        payload = [chunk * 100_000 + frame] * found
        return Observation(d0=found, d1=0, results=payload, cost=1.0)

    return CallbackEnvironment(sizes, observe)


@given(
    sizes=chunk_layouts,
    policy=policies,
    order=orders,
    batch=batch_sizes,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_no_replacement_and_bounds(sizes, policy, order, batch, seed):
    env = hit_env(sizes, hit_modulus=7)
    searcher = ExSampleSearcher(
        env,
        ExSampleConfig(seed=seed, policy=policy, within_chunk_order=order,
                       batch_size=batch),
        rng=RngFactory(seed),
    )
    trace = searcher.run()  # run to exhaustion
    assert trace.num_samples == sum(sizes)
    pairs = list(zip(trace.chunks.tolist(), trace.frames.tolist()))
    assert len(set(pairs)) == len(pairs), "a frame was sampled twice"
    for chunk, frame in pairs:
        assert 0 <= frame < sizes[chunk]


@given(
    sizes=chunk_layouts,
    batch=batch_sizes,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_trace_counts_match_state(sizes, batch, seed):
    env = hit_env(sizes, hit_modulus=5)
    searcher = ExSampleSearcher(
        env, ExSampleConfig(seed=seed, batch_size=batch), rng=RngFactory(seed)
    )
    trace = searcher.run(frame_budget=min(sum(sizes), 40))
    trace_counts = np.bincount(trace.chunks, minlength=len(sizes))
    assert np.array_equal(trace_counts, searcher.stats.n)
    assert searcher.stats.total_samples == trace.num_samples


@given(
    sizes=chunk_layouts,
    seed=st.integers(min_value=0, max_value=2**16),
    limit=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=30, deadline=None)
def test_result_limit_exact(sizes, seed, limit):
    env = hit_env(sizes, hit_modulus=3)
    searcher = ExSampleSearcher(
        env, ExSampleConfig(seed=seed), rng=RngFactory(seed)
    )
    trace = searcher.run(result_limit=limit)
    total_hits = sum(
        1
        for chunk, size in enumerate(sizes)
        for frame in range(size)
        if (chunk * 1000 + frame) % 3 == 0
    )
    if total_hits >= limit:
        # Stopped exactly at (or within one frame's worth of) the limit.
        assert trace.num_results >= limit
        curve = trace.discovery_curve()
        assert curve[-2] < limit if curve.size > 1 else True
    else:
        assert trace.num_results == total_hits


@given(
    sizes=chunk_layouts,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_discovery_curve_consistency(sizes, seed):
    env = hit_env(sizes, hit_modulus=4)
    searcher = ExSampleSearcher(
        env, ExSampleConfig(seed=seed), rng=RngFactory(seed)
    )
    trace = searcher.run()
    curve = trace.discovery_curve()
    assert np.all(np.diff(curve) >= 0)
    assert curve[-1] == trace.num_results == len(trace.results)
    assert trace.d0s.sum() == trace.num_results
