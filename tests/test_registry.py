"""The pluggable searcher registry (repro.core.registry).

New search methods register a factory under a name; the engine, the CLI
parser and the live ``SEARCH_METHODS`` view must all pick the registration
up without any engine edits — that is the whole point of the registry.
"""

import pytest

from repro.baselines import RandomSearcher
from repro.cli import build_parser
from repro.core.registry import (
    SEARCH_METHODS,
    SearcherSpec,
    register_searcher,
    searcher_spec,
    searcher_specs,
    unregister_searcher,
)
from repro.errors import ConfigError, QueryError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset

BUILTIN_METHODS = (
    "exsample",
    "random",
    "randomplus",
    "sequential",
    "proxy",
    "oracle",
    "exsample_fusion",
)


class TestBuiltinRegistrations:
    def test_all_builtins_registered_in_historical_order(self):
        assert tuple(SEARCH_METHODS) == BUILTIN_METHODS

    def test_every_builtin_has_a_description(self):
        for spec in searcher_specs():
            assert isinstance(spec, SearcherSpec)
            assert spec.description, f"{spec.name} has no description"

    def test_specs_resolve_by_name(self):
        for name in BUILTIN_METHODS:
            assert searcher_spec(name).name == name


class TestLiveView:
    def test_sequence_protocol(self):
        assert len(SEARCH_METHODS) == len(tuple(SEARCH_METHODS))
        assert SEARCH_METHODS[0] == "exsample"
        assert "random" in SEARCH_METHODS
        assert "no_such_method" not in SEARCH_METHODS
        assert SEARCH_METHODS == BUILTIN_METHODS

    def test_view_is_live(self):
        @register_searcher("registry_test_live", description="temp")
        def _factory(ctx):  # pragma: no cover - never constructed
            raise AssertionError

        try:
            assert "registry_test_live" in SEARCH_METHODS
            assert tuple(SEARCH_METHODS)[-1] == "registry_test_live"
        finally:
            unregister_searcher("registry_test_live")
        assert "registry_test_live" not in SEARCH_METHODS


class TestRegistrationErrors:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_searcher("exsample")(lambda ctx: None)

    def test_duplicate_error_lists_available(self):
        with pytest.raises(ConfigError, match="random"):
            register_searcher("exsample")(lambda ctx: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            register_searcher("")

    def test_unknown_method_lists_available(self):
        with pytest.raises(QueryError) as excinfo:
            searcher_spec("definitely_not_a_method")
        message = str(excinfo.value)
        for name in BUILTIN_METHODS:
            assert name in message

    def test_engine_surfaces_unknown_method(self):
        engine = QueryEngine(make_tiny_dataset(seed=5), seed=5)
        with pytest.raises(QueryError, match="exsample"):
            engine.run(
                DistinctObjectQuery("car", limit=1), method="definitely_not_a_method"
            )

    def test_unregister_unknown_raises(self):
        with pytest.raises(QueryError, match="cannot unregister"):
            unregister_searcher("definitely_not_a_method")


class TestThirdPartyRegistration:
    """A plug-in method must work end to end without touching the engine."""

    def test_plugin_runs_through_engine_cli_and_view(self):
        built = {}

        @register_searcher(
            "registry_test_plugin",
            description="random under a new name",
            accepts_extras=True,
        )
        def _factory(ctx):
            built["extras"] = dict(ctx.extras)
            return RandomSearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch())

        try:
            # Visible in the live view ...
            assert "registry_test_plugin" in SEARCH_METHODS
            # ... accepted by the CLI parser's --method choices ...
            args = build_parser().parse_args(
                [
                    "query",
                    "--dataset", "dashcam",
                    "--object", "person",
                    "--method", "registry_test_plugin",
                ]
            )
            assert args.method == "registry_test_plugin"
            # ... and runnable through the engine, extras included.
            engine = QueryEngine(make_tiny_dataset(seed=5), seed=5)
            outcome = engine.run(
                DistinctObjectQuery("car", limit=3),
                method="registry_test_plugin",
                batch_size=4,
                favourite_colour="teal",
            )
            assert outcome.num_results >= 3
            assert outcome.method == "registry_test_plugin"
            assert built["extras"] == {"favourite_colour": "teal"}
        finally:
            unregister_searcher("registry_test_plugin")

    def test_plugin_matches_builtin_given_same_rng_keying(self):
        """The registry adds no hidden state: a plug-in factory building
        RandomSearcher the same way produces byte-identical picks when the
        rng keying (which includes the method name) matches."""

        @register_searcher("registry_test_random_clone")
        def _factory(ctx):
            return RandomSearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch())

        try:
            engine = QueryEngine(make_tiny_dataset(seed=6), seed=6)
            env = engine.environment("car", run_seed=1)
            clone = engine.make_searcher(
                "registry_test_random_clone", env, run_seed=1
            )
            picks_clone = [clone.pick_batch() for _ in range(5)]
            env2 = engine.environment("car", run_seed=1)
            builtin = engine.make_searcher("random", env2, run_seed=1)
            picks_builtin = [builtin.pick_batch() for _ in range(5)]
            # Streams are keyed by method name, so the sequences differ ...
            assert picks_clone != picks_builtin
            # ... but both are valid (chunk, frame) draws over the dataset.
            sizes = engine.dataset.chunk_map.sizes()
            for batch in picks_clone:
                for chunk, frame in batch:
                    assert 0 <= frame < sizes[chunk]
        finally:
            unregister_searcher("registry_test_random_clone")


class TestEngineFactoryParity:
    """make_searcher argument handling preserved across the redesign."""

    def test_batch_size_validation(self):
        engine = QueryEngine(make_tiny_dataset(seed=7), seed=7)
        env = engine.environment("car")
        with pytest.raises(QueryError, match="batch_size"):
            engine.make_searcher("random", env, batch_size=0)

    def test_misspelled_kwarg_fails_fast(self):
        """A typo must not silently run a misconfigured search."""
        engine = QueryEngine(make_tiny_dataset(seed=7), seed=7)
        env = engine.environment("car")
        with pytest.raises(QueryError, match="batchsize"):
            engine.make_searcher("random", env, batchsize=64)
        with pytest.raises(QueryError, match="unknown keyword"):
            engine.run(DistinctObjectQuery("car", limit=1), striide=3)

    def test_config_and_batch_size_conflict(self):
        from repro.core.config import ExSampleConfig

        engine = QueryEngine(make_tiny_dataset(seed=7), seed=7)
        for method in ("exsample", "exsample_fusion"):
            env = engine.environment("car")
            with pytest.raises(QueryError, match="inside the ExSampleConfig"):
                engine.make_searcher(
                    method, env, config=ExSampleConfig(), batch_size=8
                )

    def test_plugin_joins_method_sweeps(self):
        from repro.experiments.runner import sweep_methods

        @register_searcher("registry_test_sweep")
        def _factory(ctx):
            return RandomSearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch())

        try:
            engine = QueryEngine(make_tiny_dataset(seed=8), seed=8)
            outcomes = sweep_methods(
                engine, DistinctObjectQuery("car", limit=2), batch_size=8
            )
            assert tuple(outcomes) == tuple(SEARCH_METHODS)
            assert "registry_test_sweep" in outcomes
            assert outcomes["registry_test_sweep"].num_results >= 2
        finally:
            unregister_searcher("registry_test_sweep")

    def test_engineless_context_rejected_for_engine_coupled_methods(self):
        from repro.core.registry import SearcherContext
        from repro.utils.rng import RngFactory

        engine = QueryEngine(make_tiny_dataset(seed=7), seed=7)
        env = engine.environment("car")
        ctx = SearcherContext(engine=None, env=env, rngs=RngFactory(0))
        for method in ("sequential", "proxy", "oracle", "exsample_fusion"):
            with pytest.raises(QueryError, match=method):
                searcher_spec(method).factory(ctx)
