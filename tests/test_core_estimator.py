"""Tests for the R-hat estimator: identities, bounds, SeenCounter semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import (
    SeenCounter,
    bias_bound_maxp,
    bias_bound_moments,
    expected_bias,
    expected_n1,
    expected_r,
    pi_seen_at,
    point_estimate,
    poisson_lambda,
    variance_bound,
)

probabilities = st.lists(
    st.floats(min_value=1e-6, max_value=0.4), min_size=1, max_size=50
).map(np.array)


class TestPointEstimate:
    def test_zero_before_samples(self):
        assert point_estimate(0, 0) == 0.0

    def test_basic_ratio(self):
        assert point_estimate(5, 100) == pytest.approx(0.05)


class TestTheoreticalIdentities:
    def test_pi_at_zero_is_p(self):
        p = np.array([0.1, 0.2])
        assert np.allclose(pi_seen_at(p, 0), p)

    def test_pi_decreasing_in_n(self):
        p = np.array([0.05, 0.2])
        for n in range(5):
            assert np.all(pi_seen_at(p, n + 1) <= pi_seen_at(p, n))

    def test_expected_r_at_zero(self):
        p = np.array([0.1, 0.3])
        assert expected_r(p, 0) == pytest.approx(0.4)

    @given(probabilities, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_bias_identity(self, p, n):
        """E[N1/n] - E[R(n+1)] must equal Σ p·π(n) exactly."""
        lhs = expected_n1(p, n) / n - expected_r(p, n)
        assert lhs == pytest.approx(expected_bias(p, n), rel=1e-9, abs=1e-12)

    @given(probabilities, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_bias_nonnegative(self, p, n):
        assert expected_bias(p, n) >= 0

    @given(probabilities, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_bias_bound_maxp(self, p, n):
        """Relative bias <= max p_i (left inequality of Eq. III.2)."""
        estimate = expected_n1(p, n) / n
        if estimate <= 1e-12:
            return
        relative = expected_bias(p, n) / estimate
        assert relative <= bias_bound_maxp(p) + 1e-9

    @given(probabilities, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_bias_bound_moments(self, p, n):
        """Relative bias <= sqrt(N)(mu_p + sigma_p) (right ineq. of Eq. III.2)."""
        estimate = expected_n1(p, n) / n
        if estimate <= 1e-12:
            return
        relative = expected_bias(p, n) / estimate
        assert relative <= bias_bound_moments(p) + 1e-9

    @given(probabilities, st.integers(min_value=1, max_value=100))
    @settings(max_examples=50)
    def test_poisson_lambda_equals_expected_n1(self, p, n):
        assert poisson_lambda(p, n) == pytest.approx(expected_n1(p, n))

    def test_variance_bound_infinite_before_samples(self):
        assert variance_bound(np.array([0.1]), 0) == np.inf

    @given(probabilities, st.integers(min_value=1, max_value=100))
    @settings(max_examples=30)
    def test_variance_bound_formula(self, p, n):
        assert variance_bound(p, n) == pytest.approx(
            expected_n1(p, n) / (n * n)
        )


class TestVarianceBoundEmpirically:
    def test_bound_holds_monte_carlo(self):
        """Var[N1/n] <= E[N1/n]/n, measured over simulated runs."""
        rng = np.random.default_rng(0)
        p = rng.uniform(0.001, 0.05, size=50)
        n = 60
        estimates = []
        for _ in range(3000):
            counts = rng.binomial(n, p)
            estimates.append(np.sum(counts == 1) / n)
        measured_var = float(np.var(estimates))
        bound = expected_n1(p, n) / (n * n)
        assert measured_var <= bound * 1.15  # small MC tolerance


class TestSeenCounter:
    def test_first_sighting_is_d0(self):
        counter = SeenCounter()
        d0, d1 = counter.observe_frame([7])
        assert (d0, d1) == (1, 0)
        assert counter.n1 == 1
        assert counter.distinct == 1

    def test_second_sighting_is_d1(self):
        counter = SeenCounter()
        counter.observe_frame([7])
        d0, d1 = counter.observe_frame([7])
        assert (d0, d1) == (0, 1)
        assert counter.n1 == 0  # moved out of the seen-once bucket

    def test_third_sighting_is_neither(self):
        counter = SeenCounter()
        counter.observe_frame([7])
        counter.observe_frame([7])
        d0, d1 = counter.observe_frame([7])
        assert (d0, d1) == (0, 0)
        assert counter.n1 == 0

    def test_duplicates_within_frame_count_once(self):
        counter = SeenCounter()
        d0, d1 = counter.observe_frame([3, 3, 3])
        assert (d0, d1) == (1, 0)

    def test_mixed_frame(self):
        counter = SeenCounter()
        counter.observe_frame([1])
        counter.observe_frame([2])
        # 1 is re-seen (d1), 3 is new (d0), 2 is absent.
        d0, d1 = counter.observe_frame([1, 3])
        assert (d0, d1) == (1, 1)
        assert counter.distinct == 3

    def test_estimate_tracks_n1_over_n(self):
        counter = SeenCounter()
        counter.observe_frame([1])
        counter.observe_frame([])
        assert counter.estimate == pytest.approx(0.5)

    def test_n_counts_frames_not_instances(self):
        counter = SeenCounter()
        counter.observe_frame([1, 2, 3])
        assert counter.n == 1

    def test_times_seen(self):
        counter = SeenCounter()
        counter.observe_frame([4])
        counter.observe_frame([4])
        assert counter.times_seen(4) == 2
        assert counter.times_seen(99) == 0

    def test_estimate_converges_to_expected(self):
        """On a Bernoulli stream the counter's N1 matches theory."""
        rng = np.random.default_rng(1)
        p = np.full(100, 0.02)
        n = 200
        n1_values = []
        for _ in range(300):
            counter = SeenCounter()
            for _ in range(n):
                present = np.flatnonzero(rng.random(100) < p)
                counter.observe_frame(present)
            n1_values.append(counter.n1)
        assert np.mean(n1_values) == pytest.approx(expected_n1(p, n), rel=0.1)
