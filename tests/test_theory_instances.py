"""Tests for instance populations and their placement/probability math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.theory.instances import (
    InstancePopulation,
    even_chunk_bounds,
    lognormal_durations,
    lognormal_probabilities,
)
from repro.utils.rng import spawn_rng


class TestLognormalProbabilities:
    def test_range(self):
        p = lognormal_probabilities(1000, spawn_rng(0, "p"))
        assert np.all(p > 0)
        assert np.all(p <= 0.5)

    def test_mean_approximately_target(self):
        p = lognormal_probabilities(100_000, spawn_rng(1, "p"), mean_p=3e-3)
        assert np.mean(p) == pytest.approx(3e-3, rel=0.15)

    def test_heavy_skew_like_paper(self):
        """§III-D: p spanning several orders of magnitude."""
        p = lognormal_probabilities(1000, spawn_rng(2, "p"))
        assert np.max(p) / np.min(p) > 1e3

    def test_rejects_bad_inputs(self):
        with pytest.raises(DatasetError):
            lognormal_probabilities(0, spawn_rng(0, "p"))
        with pytest.raises(DatasetError):
            lognormal_probabilities(10, spawn_rng(0, "p"), mean_p=1.5)


class TestLognormalDurations:
    def test_mean_matches_target(self):
        d = lognormal_durations(100_000, 700, spawn_rng(3, "d"))
        assert np.mean(d) == pytest.approx(700, rel=0.1)

    def test_paper_spread(self):
        """§IV-B: shortest ~50 frames, longest ~5000 for 2000 draws at 700."""
        d = lognormal_durations(2000, 700, spawn_rng(4, "d"))
        assert d.min() < 120
        assert d.max() > 2500

    def test_minimum_one_frame(self):
        d = lognormal_durations(1000, 1.5, spawn_rng(5, "d"))
        assert np.all(d >= 1)

    def test_rejects_bad_duration(self):
        with pytest.raises(DatasetError):
            lognormal_durations(10, 0, spawn_rng(0, "d"))


class TestPlacement:
    def test_instances_fit_timeline(self):
        pop = InstancePopulation.place(
            500, 50_000, 300, spawn_rng(6, "pl"), skew_fraction=1 / 16
        )
        assert np.all(pop.starts >= 0)
        assert np.all(pop.ends <= 50_000)
        assert pop.count == 500

    def test_uniform_placement_spreads(self):
        pop = InstancePopulation.place(2000, 100_000, 100, spawn_rng(7, "pl"))
        mids = pop.midpoints
        # Roughly a quarter in each quarter of the timeline.
        quarter_counts = np.histogram(mids, bins=4, range=(0, 100_000))[0]
        assert quarter_counts.min() > 350

    def test_skewed_placement_concentrates(self):
        pop = InstancePopulation.place(
            2000, 100_000, 100, spawn_rng(8, "pl"), skew_fraction=1 / 32
        )
        central = np.abs(pop.midpoints - 50_000) < 100_000 / 64
        # 95% of instances should land in the central 1/32.
        assert np.mean(central) > 0.85

    def test_custom_center(self):
        pop = InstancePopulation.place(
            1000, 100_000, 100, spawn_rng(9, "pl"),
            skew_fraction=1 / 32, center=0.25,
        )
        assert abs(np.median(pop.midpoints) - 25_000) < 3000

    def test_rejects_bad_skew(self):
        with pytest.raises(DatasetError):
            InstancePopulation.place(
                10, 1000, 10, spawn_rng(0, "pl"), skew_fraction=2.0
            )

    def test_rejects_tiny_timeline(self):
        with pytest.raises(DatasetError):
            InstancePopulation.place(10, 1, 10, spawn_rng(0, "pl"))


class TestDerivedQuantities:
    @pytest.fixture
    def pop(self):
        return InstancePopulation(
            starts=np.array([0, 10, 90]),
            durations=np.array([5, 20, 10]),
            total_frames=100,
        )

    def test_global_p(self, pop):
        assert pop.global_p() == pytest.approx([0.05, 0.2, 0.1])

    def test_visible_at(self, pop):
        assert list(pop.visible_at(0)) == [0]
        assert list(pop.visible_at(4)) == [0]
        assert list(pop.visible_at(5)) == []
        assert list(pop.visible_at(15)) == [1]
        assert list(pop.visible_at(95)) == [2]

    def test_visible_at_brute_force_agreement(self):
        pop = InstancePopulation.place(100, 5000, 50, spawn_rng(10, "v"))
        for frame in [0, 100, 2500, 4999]:
            fast = set(pop.visible_at(frame))
            brute = {
                i
                for i in range(pop.count)
                if pop.starts[i] <= frame < pop.ends[i]
            }
            assert fast == brute

    def test_chunk_probabilities_mass_conservation(self, pop):
        """Σ_j p_ij * width_j must equal each instance's duration."""
        bounds = np.array([0, 25, 50, 100])
        p = pop.chunk_probabilities(bounds)
        widths = np.diff(bounds)
        recovered = p @ widths
        assert recovered == pytest.approx(pop.durations.astype(float))

    def test_chunk_probabilities_rows_in_unit(self, pop):
        bounds = even_chunk_bounds(100, 10)
        p = pop.chunk_probabilities(bounds)
        assert np.all(p >= 0)
        assert np.all(p <= 1)

    def test_chunk_counts_sum_to_n(self, pop):
        bounds = even_chunk_bounds(100, 4)
        counts = pop.chunk_counts(bounds)
        assert counts.sum() == pop.count

    def test_validation_errors(self):
        with pytest.raises(DatasetError):
            InstancePopulation(
                starts=np.array([0]), durations=np.array([0]), total_frames=10
            )
        with pytest.raises(DatasetError):
            InstancePopulation(
                starts=np.array([5]), durations=np.array([10]), total_frames=10
            )


class TestEvenChunkBounds:
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=50)
    def test_partition_properties(self, total, chunks):
        if chunks > total:
            with pytest.raises(DatasetError):
                even_chunk_bounds(total, chunks)
            return
        bounds = even_chunk_bounds(total, chunks)
        assert bounds[0] == 0
        assert bounds[-1] == total
        assert len(bounds) == chunks + 1
        assert np.all(np.diff(bounds) >= 1)

    def test_near_equal_sizes(self):
        bounds = even_chunk_bounds(100, 7)
        sizes = np.diff(bounds)
        assert sizes.max() - sizes.min() <= 1
