"""Tests for queries, the cost model and the evaluation metrics."""

import numpy as np
import pytest

from repro.core.sampler import SearchTrace
from repro.errors import ConfigError, QueryError
from repro.query.cost import PAPER_DETECTOR_FPS, PAPER_SCAN_FPS, CostModel
from repro.query.engine import FoundObject
from repro.query.metrics import (
    duplicate_fraction,
    precision,
    recall_curve,
    samples_to_recall,
    savings_ratio,
    time_to_recall,
    unique_instance_curve,
)
from repro.query.query import DistinctObjectQuery


class TestCostModel:
    def test_paper_constants(self):
        assert PAPER_DETECTOR_FPS == 20.0
        assert PAPER_SCAN_FPS == 100.0

    def test_sample_cost_default(self):
        model = CostModel()
        assert model.sample_cost(0, 123) == pytest.approx(1 / 20)

    def test_scan_cost(self):
        model = CostModel()
        # The paper's BDD-1k row: ~54 minutes for ~324k frames.
        frames = int(54 * 60 * 100)
        assert model.scan_cost(frames) == pytest.approx(54 * 60)

    def test_detailed_mode_adds_decode(self):
        flat = CostModel().sample_cost(0, 19)
        detailed = CostModel(detailed=True).sample_cost(0, 19)
        assert detailed > flat

    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(detector_fps=0)
        with pytest.raises(ConfigError):
            CostModel().scan_cost(-1)


class TestDistinctObjectQuery:
    def test_limit_query(self):
        q = DistinctObjectQuery("car", limit=20)
        assert q.resolve_limit(1000) == 20

    def test_recall_query_uses_ceiling(self):
        q = DistinctObjectQuery("car", recall_target=0.9)
        assert q.resolve_limit(28) == 26  # ceil(25.2)
        assert q.resolve_limit(10) == 9

    def test_unbounded_query(self):
        q = DistinctObjectQuery("car")
        assert q.resolve_limit(100) is None

    def test_validation(self):
        with pytest.raises(QueryError):
            DistinctObjectQuery("")
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", limit=0)
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", recall_target=1.5)
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", limit=5, recall_target=0.5)
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", frame_budget=0)
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", cost_budget=0.0)
        with pytest.raises(QueryError):
            DistinctObjectQuery("car", cost_budget=-1.0)

    def test_cost_budget_accepted(self):
        q = DistinctObjectQuery("car", limit=5, cost_budget=120.0)
        assert q.cost_budget == 120.0


def _found(uid, video=0, frame=0):
    return FoundObject(
        video=video, frame=frame, class_name="car", score=0.9,
        box_xyxy=(0, 0, 1, 1), instance_uid=uid, track_id=0,
    )


def make_trace(d0s, payloads, costs=None, upfront=0.0):
    n = len(d0s)
    return SearchTrace(
        chunks=np.zeros(n, dtype=np.int64),
        frames=np.arange(n, dtype=np.int64),
        d0s=np.asarray(d0s, dtype=np.int64),
        d1s=np.zeros(n, dtype=np.int64),
        costs=np.asarray(costs if costs is not None else np.ones(n), dtype=float),
        results=payloads,
        upfront_cost=upfront,
    )


class TestMetrics:
    def test_unique_curve_ignores_fp_and_duplicates(self):
        trace = make_trace(
            [1, 1, 1, 1],
            [_found(1), _found(None), _found(1), _found(2)],
        )
        assert list(unique_instance_curve(trace)) == [1, 1, 1, 2]

    def test_unique_curve_int_payloads(self):
        trace = make_trace([1, 0, 1], [5, 5])
        assert list(unique_instance_curve(trace)) == [1, 1, 1]

    def test_recall_curve(self):
        trace = make_trace([1, 1], [_found(1), _found(2)])
        assert recall_curve(trace, 4) == pytest.approx([0.25, 0.5])

    def test_samples_to_recall(self):
        trace = make_trace([1, 0, 1], [_found(1), _found(2)])
        assert samples_to_recall(trace, 2, 0.5) == 1
        assert samples_to_recall(trace, 2, 1.0) == 3
        assert samples_to_recall(trace, 3, 1.0) is None

    def test_time_to_recall_includes_upfront(self):
        trace = make_trace(
            [1], [_found(1)], costs=[2.0], upfront=100.0
        )
        assert time_to_recall(trace, 1, 1.0) == pytest.approx(102.0)

    def test_savings_ratio_time(self):
        slow = make_trace([0, 0, 0, 1], [_found(1)])
        fast = make_trace([1], [_found(1)])
        assert savings_ratio(slow, fast, 1, 1.0, mode="time") == pytest.approx(4.0)

    def test_savings_ratio_samples(self):
        slow = make_trace([0, 1], [_found(1)], costs=[9.0, 9.0])
        fast = make_trace([1], [_found(1)], costs=[1.0])
        assert savings_ratio(slow, fast, 1, 1.0, mode="samples") == pytest.approx(2.0)

    def test_savings_ratio_none_when_unreached(self):
        empty = make_trace([0], [])
        fast = make_trace([1], [_found(1)])
        assert savings_ratio(empty, fast, 1, 1.0) is None

    def test_savings_ratio_bad_mode(self):
        trace = make_trace([1], [_found(1)])
        with pytest.raises(QueryError):
            savings_ratio(trace, trace, 1, 1.0, mode="frames")

    def test_precision(self):
        trace = make_trace(
            [1, 1, 1], [_found(1), _found(None), _found(2)]
        )
        assert precision(trace) == pytest.approx(2 / 3)

    def test_precision_empty(self):
        assert precision(make_trace([0], [])) == 1.0

    def test_duplicate_fraction(self):
        trace = make_trace(
            [1, 1, 1], [_found(1), _found(1), _found(2)]
        )
        assert duplicate_fraction(trace) == pytest.approx(1 / 3)

    def test_recall_validation(self):
        trace = make_trace([1], [_found(1)])
        with pytest.raises(QueryError):
            samples_to_recall(trace, 1, 0.0)
        with pytest.raises(QueryError):
            recall_curve(trace, 0)
