"""Tests for bounding-box geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.video.geometry import BoundingBox, interpolate, iou_matrix
from repro.utils.rng import spawn_rng

coords = st.floats(min_value=0, max_value=1000)


@st.composite
def boxes(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(st.floats(min_value=0.1, max_value=500))
    h = draw(st.floats(min_value=0.1, max_value=500))
    return BoundingBox(x1, y1, x1 + w, y1 + h)


class TestBoundingBox:
    def test_basic_properties(self):
        box = BoundingBox(10, 20, 30, 60)
        assert box.width == 20
        assert box.height == 40
        assert box.area == 800
        assert box.center == (20, 40)

    def test_rejects_inverted(self):
        with pytest.raises(DatasetError):
            BoundingBox(10, 0, 5, 10)
        with pytest.raises(DatasetError):
            BoundingBox(0, 10, 10, 5)

    def test_self_iou_is_one(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.iou(box) == pytest.approx(1.0)

    def test_disjoint_iou_zero(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(20, 20, 30, 30)
        assert a.iou(b) == 0.0

    def test_known_overlap(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 15, 10)
        # intersection 50, union 150.
        assert a.iou(b) == pytest.approx(1 / 3)

    @given(boxes(), boxes())
    @settings(max_examples=60)
    def test_iou_symmetric_and_bounded(self, a, b):
        assert a.iou(b) == pytest.approx(b.iou(a))
        assert 0.0 <= a.iou(b) <= 1.0 + 1e-9

    def test_shifted(self):
        box = BoundingBox(0, 0, 10, 10).shifted(5, -3)
        assert (box.x1, box.y1) == (5, -3)

    def test_scaled_area(self):
        box = BoundingBox(0, 0, 10, 10).scaled(2.0)
        assert box.area == pytest.approx(400)
        assert box.center == (5, 5)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            BoundingBox(0, 0, 1, 1).scaled(0)

    def test_clipped(self):
        box = BoundingBox(-5, -5, 15, 15).clipped(10, 10)
        assert (box.x1, box.y1, box.x2, box.y2) == (0, 0, 10, 10)

    def test_jittered_valid(self):
        rng = spawn_rng(0, "jit")
        box = BoundingBox(100, 100, 200, 200)
        for _ in range(50):
            jittered = box.jittered(rng, 0.1)
            assert jittered.x2 >= jittered.x1
            assert jittered.y2 >= jittered.y1

    def test_jittered_close_for_small_scale(self):
        rng = spawn_rng(1, "jit")
        box = BoundingBox(100, 100, 200, 200)
        jittered = box.jittered(rng, 0.01)
        assert box.iou(jittered) > 0.9


class TestInterpolate:
    def test_endpoints(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(100, 100, 120, 130)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midpoint(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(10, 10, 20, 20)
        mid = interpolate(a, b, 0.5)
        assert (mid.x1, mid.y1) == (5, 5)

    def test_clamps_t(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(10, 10, 20, 20)
        assert interpolate(a, b, -1.0) == a
        assert interpolate(a, b, 2.0) == b


class TestIouMatrix:
    @given(st.lists(boxes(), min_size=1, max_size=6),
           st.lists(boxes(), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_matches_scalar_iou(self, list_a, list_b):
        arr_a = np.stack([b.as_array() for b in list_a])
        arr_b = np.stack([b.as_array() for b in list_b])
        matrix = iou_matrix(arr_a, arr_b)
        for i, a in enumerate(list_a):
            for j, b in enumerate(list_b):
                assert matrix[i, j] == pytest.approx(a.iou(b), abs=1e-9)

    def test_shape(self):
        a = np.zeros((3, 4))
        b = np.zeros((5, 4))
        a[:, 2:] = 1
        b[:, 2:] = 1
        assert iou_matrix(a, b).shape == (3, 5)
