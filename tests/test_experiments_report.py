"""Tests for the run-everything report aggregator."""

import pytest

from repro.experiments import fig6, report, table1


@pytest.fixture(autouse=True)
def shrink_configs(monkeypatch):
    """Make the selected artifacts miniature so the test stays fast."""
    monkeypatch.setattr(
        fig6.Fig6Config, "quick",
        classmethod(lambda cls: cls(scale=0.02, trials=1)),
    )
    monkeypatch.setattr(
        table1.Table1Config, "quick",
        classmethod(
            lambda cls: cls(datasets=("dashcam",), scale=0.02, max_classes=2)
        ),
    )


class TestGenerateReport:
    def test_selected_artifacts(self):
        reports = report.generate_report(names=["fig6", "table1"], full=False)
        assert [r.name for r in reports] == ["fig6", "table1"]
        for artifact in reports:
            assert artifact.text
            assert artifact.seconds >= 0

    def test_render_concatenates_with_headers(self):
        reports = report.generate_report(names=["fig6"], full=False)
        text = report.render_report(reports)
        assert "fig6" in text
        assert "Figure 6" in text
        assert "=" * 72 in text

    def test_write_report(self, tmp_path):
        path = report.write_report(
            tmp_path / "report.txt", names=["table1"], full=False
        )
        content = path.read_text()
        assert "Table I" in content

    def test_all_artifacts_registered(self):
        assert sorted(report.ARTIFACTS) == [
            "fig2", "fig3", "fig4", "fig5", "fig6", "table1",
        ]
