"""Tests for repro.analysis: every rule gets a paired good/bad fixture,
plus suppression semantics, baseline round-trips, the CLI surface, and
the meta-test that the repo itself lints clean."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis import engine as engine_mod
from repro.analysis.baseline import Baseline
from repro.analysis.findings import FileContext
from repro.analysis.suppress import SuppressionTable
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, code: str, rel: str, rules=None):
    """Write ``code`` at ``src/<rel>`` under a scratch root and lint it."""
    path = tmp_path / "src" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    specs = analysis.all_rules() if rules is None else [
        analysis.get_rule(c) for c in rules
    ]
    findings, err = engine_mod.check_file(path, tmp_path, specs)
    assert err is None, err
    return findings


def codes(findings, active_only=True):
    return sorted(
        f.rule for f in findings if (f.active or not active_only)
    )


# ---------------------------------------------------------------------------
# determinism rules
# ---------------------------------------------------------------------------


class TestDet101ModuleGlobalRng:
    def test_flags_module_random(self, tmp_path):
        bad = "import random\n\ndef f():\n    return random.uniform(0, 1)\n"
        assert codes(lint_source(tmp_path, bad, "repro/utils/x.py")) == ["DET101"]

    def test_flags_np_random(self, tmp_path):
        bad = "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n"
        assert codes(lint_source(tmp_path, bad, "repro/utils/x.py")) == ["DET101"]

    def test_allows_instance_constructors(self, tmp_path):
        good = (
            "import random\nimport numpy as np\n\n"
            "def f(seed):\n"
            "    r = random.Random(seed)\n"
            "    g = np.random.default_rng(seed)\n"
            "    return r.random() + g.random()\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/utils/x.py")) == []


class TestDet102WallClock:
    def test_flags_time_in_trace_affecting(self, tmp_path):
        bad = "import time\n\ndef f():\n    return time.time_ns()\n"
        assert codes(lint_source(tmp_path, bad, "repro/core/x.py")) == ["DET102"]

    def test_serving_is_exempt(self, tmp_path):
        ok = "import time\n\ndef f():\n    return time.time_ns()\n"
        assert codes(lint_source(tmp_path, ok, "repro/serving/x.py")) == []


class TestDet103UnorderedIteration:
    def test_flags_set_iteration(self, tmp_path):
        bad = "def f(ids):\n    for i in set(ids):\n        print(i)\n"
        assert codes(lint_source(tmp_path, bad, "repro/core/x.py")) == ["DET103"]

    def test_flags_set_literal_comprehension(self, tmp_path):
        bad = "def f():\n    return [i for i in {3, 1, 2}]\n"
        assert codes(lint_source(tmp_path, bad, "repro/core/x.py")) == ["DET103"]

    def test_sorted_wrapper_passes(self, tmp_path):
        good = "def f(ids):\n    for i in sorted(set(ids)):\n        print(i)\n"
        assert codes(lint_source(tmp_path, good, "repro/core/x.py")) == []


class TestDet104UnseededDefaultRng:
    def test_flags_argless(self, tmp_path):
        bad = (
            "from numpy.random import default_rng\n\n"
            "def f():\n    return default_rng()\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/core/x.py")) == ["DET104"]

    def test_seeded_passes(self, tmp_path):
        good = (
            "from numpy.random import default_rng\n\n"
            "def f(seed):\n    return default_rng(seed)\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/core/x.py")) == []


# ---------------------------------------------------------------------------
# asyncio rules
# ---------------------------------------------------------------------------


class TestAio201BareWaitFor:
    def test_flags_in_serving(self, tmp_path):
        bad = (
            "import asyncio\n\n"
            "async def f(fut):\n    return await asyncio.wait_for(fut, 1.0)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["AIO201"]

    def test_outside_serving_passes(self, tmp_path):
        ok = (
            "import asyncio\n\n"
            "async def f(fut):\n    return await asyncio.wait_for(fut, 1.0)\n"
        )
        assert codes(lint_source(tmp_path, ok, "repro/utils/x.py")) == []


class TestAio202DanglingTask:
    def test_flags_bare_statement(self, tmp_path):
        bad = (
            "import asyncio\n\n"
            "async def f(coro):\n    asyncio.create_task(coro())\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["AIO202"]

    def test_retained_handle_passes(self, tmp_path):
        good = (
            "import asyncio\n\n"
            "async def f(coro, tasks):\n"
            "    task = asyncio.create_task(coro())\n"
            "    tasks.add(task)\n"
            "    task.add_done_callback(tasks.discard)\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []


class TestAio203GetEventLoop:
    def test_flags_get_event_loop(self, tmp_path):
        bad = "import asyncio\n\ndef f():\n    return asyncio.get_event_loop()\n"
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["AIO203"]

    def test_get_running_loop_passes(self, tmp_path):
        good = "import asyncio\n\ndef f():\n    return asyncio.get_running_loop()\n"
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []


class TestAio204InlineDetect:
    def test_flags_detect_batch_in_coroutine(self, tmp_path):
        bad = (
            "async def flush(self, videos, frames):\n"
            "    return self.detector.detect_batch(videos, frames)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["AIO204"]

    def test_flags_single_detect_in_coroutine(self, tmp_path):
        bad = (
            "async def step(detector, video, frame):\n"
            "    return detector.detect(video, frame)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["AIO204"]

    def test_executor_submit_passes(self, tmp_path):
        good = (
            "import asyncio\n\n"
            "async def flush(self, videos, frames):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    fut = self.executor.submit(\n"
            "        self.detector, videos, frames, None, loop\n"
            "    )\n"
            "    return await fut\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []

    def test_batcher_detect_front_door_passes(self, tmp_path):
        good = (
            "async def handle(self, request, handle):\n"
            "    return await self._batcher.detect(\n"
            "        self.detector_name, request, handle\n"
            "    )\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []

    def test_sync_helper_passes(self, tmp_path):
        good = (
            "def run(detector, videos, frames):\n"
            "    return detector.detect_batch(videos, frames)\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []

    def test_outside_serving_passes(self, tmp_path):
        ok = (
            "async def probe(detector, video, frame):\n"
            "    return detector.detect(video, frame)\n"
        )
        assert codes(lint_source(tmp_path, ok, "repro/query/x.py")) == []


# ---------------------------------------------------------------------------
# lifecycle rules
# ---------------------------------------------------------------------------


class TestLif301ShmUnlink:
    BAD = (
        "from multiprocessing.shared_memory import SharedMemory\n\n"
        "def make():\n"
        "    return SharedMemory(name='x', create=True, size=64)\n"
    )
    GOOD = BAD + (
        "\ndef close(shm):\n"
        "    shm.close()\n"
        "    shm.unlink()\n"
    )

    def test_flags_create_without_unlink(self, tmp_path):
        assert codes(lint_source(tmp_path, self.BAD, "repro/parallel/x.py")) == [
            "LIF301"
        ]

    def test_module_with_unlink_passes(self, tmp_path):
        assert codes(lint_source(tmp_path, self.GOOD, "repro/parallel/x.py")) == []

    def test_attach_only_passes(self, tmp_path):
        ok = (
            "from multiprocessing.shared_memory import SharedMemory\n\n"
            "def attach(name):\n    return SharedMemory(name=name)\n"
        )
        assert codes(lint_source(tmp_path, ok, "repro/parallel/x.py")) == []


class TestLif302AtomicWrite:
    def test_flags_in_place_write(self, tmp_path):
        bad = (
            "def save(path, blob):\n"
            "    with open(path, 'wb') as f:\n"
            "        f.write(blob)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/index/x.py")) == ["LIF302"]

    def test_atomic_rename_passes(self, tmp_path):
        good = (
            "import os\n\n"
            "def save(path, blob):\n"
            "    tmp = path + '.tmp'\n"
            "    with open(tmp, 'wb') as f:\n"
            "        f.write(blob)\n"
            "    os.replace(tmp, path)\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/index/x.py")) == []

    def test_reads_pass(self, tmp_path):
        ok = (
            "def load(path):\n"
            "    with open(path, 'rb') as f:\n"
            "        return f.read()\n"
        )
        assert codes(lint_source(tmp_path, ok, "repro/index/x.py")) == []

    def test_outside_index_passes(self, tmp_path):
        ok = (
            "def save(path, blob):\n"
            "    with open(path, 'wb') as f:\n"
            "        f.write(blob)\n"
        )
        assert codes(lint_source(tmp_path, ok, "repro/utils/x.py")) == []


# ---------------------------------------------------------------------------
# serialization rules
# ---------------------------------------------------------------------------


class TestSer401FactoryClosure:
    def test_flags_lambda_in_factory(self, tmp_path):
        bad = (
            "from repro.core.registry import register_searcher\n\n"
            "@register_searcher('x')\n"
            "def build(ctx):\n"
            "    return Searcher(score=lambda c: 0.0)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/baselines/x.py")) == ["SER401"]

    def test_flags_nested_def(self, tmp_path):
        bad = (
            "from repro.core.registry import register_searcher\n\n"
            "@register_searcher('x')\n"
            "def build(ctx):\n"
            "    def score(c):\n"
            "        return 0.0\n"
            "    return Searcher(score=score)\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/baselines/x.py")) == ["SER401"]

    def test_plain_factory_passes(self, tmp_path):
        good = (
            "from repro.core.registry import register_searcher\n\n"
            "@register_searcher('x')\n"
            "def build(ctx):\n"
            "    return Searcher(score=ModuleLevelScore(ctx))\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/baselines/x.py")) == []

    def test_undecorated_lambda_passes(self, tmp_path):
        ok = "def helper():\n    return sorted([3, 1], key=lambda x: -x)\n"
        assert codes(lint_source(tmp_path, ok, "repro/baselines/x.py")) == []


class TestSer402OpIdempotency:
    def test_flags_missing_table(self, tmp_path):
        bad = (
            "class Server:\n"
            "    async def _op_ping(self, conn, rid, frame):\n"
            "        pass\n"
        )
        assert codes(lint_source(tmp_path, bad, "repro/serving/x.py")) == ["SER402"]

    def test_flags_missing_entry(self, tmp_path):
        bad = (
            "OP_IDEMPOTENCY = {'ping': True}\n\n"
            "class Server:\n"
            "    async def _op_ping(self, conn, rid, frame):\n"
            "        pass\n"
            "    async def _op_submit(self, conn, rid, frame):\n"
            "        pass\n"
        )
        findings = lint_source(tmp_path, bad, "repro/serving/x.py")
        assert codes(findings) == ["SER402"]
        assert "submit" in findings[0].message

    def test_full_table_passes(self, tmp_path):
        good = (
            "OP_IDEMPOTENCY = {'ping': True, 'submit': False}\n\n"
            "class Server:\n"
            "    async def _op_ping(self, conn, rid, frame):\n"
            "        pass\n"
            "    async def _op_submit(self, conn, rid, frame):\n"
            "        pass\n"
        )
        assert codes(lint_source(tmp_path, good, "repro/serving/x.py")) == []


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_line_allow(self, tmp_path):
        code = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: allow[DET102] test clock\n"
        )
        findings = lint_source(tmp_path, code, "repro/core/x.py")
        assert codes(findings) == []
        assert codes(findings, active_only=False) == ["DET102"]
        assert findings[0].suppressed

    def test_line_allow_wrong_code_does_not_discharge(self, tmp_path):
        code = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: allow[DET101]\n"
        )
        assert codes(lint_source(tmp_path, code, "repro/core/x.py")) == ["DET102"]

    def test_star_allow(self, tmp_path):
        code = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: allow[*]\n"
        )
        assert codes(lint_source(tmp_path, code, "repro/core/x.py")) == []

    def test_file_allow(self, tmp_path):
        code = (
            "# repro-lint: allow-file[DET102] timing module, never traced\n"
            "import time\n\n"
            "def f():\n    return time.time()\n\n"
            "def g():\n    return time.time_ns()\n"
        )
        assert codes(lint_source(tmp_path, code, "repro/core/x.py")) == []

    def test_file_allow_past_header_is_ignored(self, tmp_path):
        code = (
            "import time\n" + "\n" * 25 +
            "# repro-lint: allow-file[DET102]\n"
            "def f():\n    return time.time()\n"
        )
        assert codes(lint_source(tmp_path, code, "repro/core/x.py")) == ["DET102"]

    def test_parse_table_directly(self):
        table = SuppressionTable.parse(
            "x = 1  # repro-lint: allow[AIO201, AIO202] reason\n"
        )
        assert table.allows("AIO201", 1)
        assert table.allows("AIO202", 1)
        assert not table.allows("AIO203", 1)
        assert not table.allows("AIO201", 2)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


BAD_CLOCK = "import time\n\ndef f():\n    return time.time()\n"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(tmp_path, BAD_CLOCK, "repro/core/x.py")
        assert codes(findings) == ["DET102"]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert reloaded.entries == baseline.entries
        assert reloaded.debt == 1

        applied = reloaded.apply(findings)
        assert all(f.baselined for f in applied)
        assert codes(applied) == []

    def test_budget_is_per_occurrence(self, tmp_path):
        # Two identical offending lines, baseline recorded with both;
        # a third copy must stay active.
        two = BAD_CLOCK + "\ndef g():\n    return time.time()\n"
        findings2 = lint_source(tmp_path, two, "repro/core/x.py")
        baseline = Baseline.from_findings(findings2)
        assert baseline.debt == 2

        three = two + "\ndef h():\n    return time.time()\n"
        findings3 = lint_source(tmp_path, three, "repro/core/x.py")
        applied = baseline.apply(findings3)
        assert sum(1 for f in applied if f.baselined) == 2
        assert len([f for f in applied if f.active]) == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        findings = lint_source(tmp_path, BAD_CLOCK, "repro/core/x.py")
        baseline = Baseline.from_findings(findings)
        shifted = "# a new leading comment\n" + BAD_CLOCK
        applied = baseline.apply(
            lint_source(tmp_path, shifted, "repro/core/x.py")
        )
        assert codes(applied) == []

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == {}
        assert baseline.debt == 0

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# engine + registry
# ---------------------------------------------------------------------------


class TestEngine:
    def test_at_least_ten_rules_registered(self):
        rules = analysis.all_rules()
        assert len(rules) >= 10
        # Every rule docstring cites its motivation (a PR or bug).
        for spec in rules:
            assert "PR" in spec.doc or "bpo" in spec.doc, spec.code

    def test_rule_filter(self, tmp_path):
        code = (
            "import time\nimport random\n\n"
            "def f():\n    return time.time() + random.random()\n"
        )
        only_det101 = lint_source(
            tmp_path, code, "repro/core/x.py", rules=["DET101"]
        )
        assert codes(only_det101) == ["DET101"]

    def test_unknown_rule_code(self):
        with pytest.raises(KeyError):
            analysis.get_rule("XXX999")

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "broken.py"
        path.parent.mkdir(parents=True)
        path.write_text("def f(:\n")
        result = analysis.run_lint([path], tmp_path)
        assert not result.ok
        assert result.parse_errors

    def test_module_name_mapping(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        ctx = FileContext.load(path, tmp_path)
        assert ctx.module == "repro.core.x"
        assert ctx.package == "repro.core"
        assert ctx.in_package(("repro.core",))
        assert not ctx.in_package(("repro.corex",))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(["lint", *argv], out=out)
        return code, out.getvalue()

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        # Outside any repro package: DET102 does not apply, so this file
        # is clean and the run exits 0.
        code, output = self.run_cli(str(bad), "--format", "json")
        payload = json.loads(output)
        assert code == 0
        assert payload["ok"] is True
        assert payload["files_checked"] == 1

    def test_exit_one_on_findings(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        code, output = self.run_cli(
            str(bad), "--baseline", str(tmp_path / "none.json")
        )
        assert code == 1
        assert "DET102" in output

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        baseline = tmp_path / "baseline.json"
        code, _ = self.run_cli(
            str(bad), "--baseline", str(baseline), "--write-baseline"
        )
        assert code == 0 and baseline.exists()
        code, output = self.run_cli(str(bad), "--baseline", str(baseline))
        assert code == 0

    def test_stats_table(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        code, output = self.run_cli(str(clean), "--stats")
        assert code == 0
        assert "findings by rule" in output
        assert "baseline debt" in output


# ---------------------------------------------------------------------------
# the repo itself ships lint-clean
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_repo_lints_clean(self):
        baseline = Baseline.load(REPO_ROOT / analysis.DEFAULT_BASELINE)
        result = analysis.run_lint(
            [REPO_ROOT / "src" / "repro"], REPO_ROOT, baseline=baseline
        )
        active = [f"{f.path}:{f.line} {f.rule}" for f in result.active]
        assert result.ok, f"repo lint failures: {active}"
        assert result.files_checked > 50

    def test_cli_exit_zero_on_repo(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        out = io.StringIO()
        assert main(["lint"], out=out) == 0
