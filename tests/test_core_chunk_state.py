"""Tests for per-chunk statistics, incl. the batched-update equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk_state import ChunkStatistics
from repro.errors import ConfigError


class TestConstruction:
    def test_initial_state(self):
        stats = ChunkStatistics([10, 20, 30])
        assert stats.num_chunks == 3
        assert stats.total_samples == 0
        assert np.all(stats.active)
        assert not stats.exhausted

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            ChunkStatistics([])

    def test_rejects_negative_sizes(self):
        with pytest.raises(ConfigError):
            ChunkStatistics([5, -1])

    def test_zero_size_chunk_starts_inactive(self):
        stats = ChunkStatistics([0, 5])
        assert not stats.active[0]
        assert stats.active[1]


class TestRecord:
    def test_algorithm1_update(self):
        stats = ChunkStatistics([100])
        stats.record(0, d0=2, d1=1)
        assert stats.n1[0] == 1  # += d0 - d1
        assert stats.n[0] == 1

    def test_n1_can_go_negative(self):
        """Cross-chunk re-sightings legitimately drive raw N1 below zero."""
        stats = ChunkStatistics([100])
        stats.record(0, d0=0, d1=2)
        assert stats.n1[0] == -2

    def test_exhaustion_enforced(self):
        stats = ChunkStatistics([1])
        stats.record(0, 0, 0)
        assert stats.exhausted
        with pytest.raises(ConfigError):
            stats.record(0, 0, 0)

    def test_chunk_bounds_checked(self):
        stats = ChunkStatistics([5])
        with pytest.raises(ConfigError):
            stats.record(1, 0, 0)
        with pytest.raises(ConfigError):
            stats.record(-1, 0, 0)

    def test_negative_counts_rejected(self):
        stats = ChunkStatistics([5])
        with pytest.raises(ConfigError):
            stats.record(0, d0=-1, d1=0)


class TestBatchEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_batch_equals_sequential(self, updates):
        """§III-F: batched updates are commutative = identical final state."""
        sizes = [50, 50, 50, 50]
        sequential = ChunkStatistics(sizes)
        for chunk, d0, d1 in updates:
            sequential.record(chunk, d0, d1)
        batched = ChunkStatistics(sizes)
        chunks = np.array([u[0] for u in updates])
        d0s = np.array([u[1] for u in updates], dtype=float)
        d1s = np.array([u[2] for u in updates], dtype=float)
        batched.apply_batch(chunks, d0s, d1s)
        assert np.array_equal(sequential.n, batched.n)
        assert np.allclose(sequential.n1, batched.n1)

    def test_batch_order_irrelevant(self):
        sizes = [10, 10]
        a = ChunkStatistics(sizes)
        b = ChunkStatistics(sizes)
        chunks = np.array([0, 1, 0])
        d0s = np.array([1.0, 2.0, 0.0])
        d1s = np.array([0.0, 1.0, 1.0])
        a.apply_batch(chunks, d0s, d1s)
        b.apply_batch(chunks[::-1].copy(), d0s[::-1].copy(), d1s[::-1].copy())
        assert np.array_equal(a.n, b.n)
        assert np.allclose(a.n1, b.n1)

    def test_batch_overdraw_rejected(self):
        stats = ChunkStatistics([1])
        with pytest.raises(ConfigError):
            stats.apply_batch(
                np.array([0, 0]), np.zeros(2), np.zeros(2)
            )

    def test_batch_shape_mismatch(self):
        stats = ChunkStatistics([5])
        with pytest.raises(ConfigError):
            stats.apply_batch(np.array([0]), np.zeros(2), np.zeros(1))


class TestDerivedQuantities:
    def test_point_estimates(self):
        stats = ChunkStatistics([10, 10])
        stats.record(0, 2, 0)
        stats.record(0, 0, 0)
        estimates = stats.point_estimates()
        assert estimates[0] == pytest.approx(1.0)  # N1=2, n=2
        assert estimates[1] == 0.0  # unsampled

    def test_empirical_weights_uniform_before_sampling(self):
        stats = ChunkStatistics([10, 10])
        assert stats.empirical_weights() == pytest.approx([0.5, 0.5])

    def test_empirical_weights_track_allocation(self):
        stats = ChunkStatistics([10, 10])
        for _ in range(3):
            stats.record(0, 0, 0)
        stats.record(1, 0, 0)
        assert stats.empirical_weights() == pytest.approx([0.75, 0.25])

    def test_remaining(self):
        stats = ChunkStatistics([2, 3])
        stats.record(0, 0, 0)
        assert list(stats.remaining) == [1, 3]
