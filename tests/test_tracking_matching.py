"""Tests for IoU assignment (greedy and Hungarian)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.tracking.matching import greedy_match, hungarian_match

matrices = st.integers(min_value=0, max_value=6).flatmap(
    lambda rows: st.integers(min_value=0, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=0, max_value=1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        ).map(lambda m: np.array(m).reshape(rows, cols))
    )
)


class TestGreedyMatch:
    def test_identity_matrix(self):
        pairs = greedy_match(np.eye(3), threshold=0.5)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_threshold_filters(self):
        iou = np.array([[0.9, 0.0], [0.0, 0.2]])
        pairs = greedy_match(iou, threshold=0.3)
        assert pairs == [(0, 0)]

    def test_picks_best_first(self):
        # Row 0 prefers col 1 (0.8) even though col 0 would match (0.5).
        iou = np.array([[0.5, 0.8], [0.6, 0.1]])
        pairs = greedy_match(iou, threshold=0.3)
        assert (0, 1) in pairs
        assert (1, 0) in pairs

    def test_empty_matrix(self):
        assert greedy_match(np.zeros((0, 3))) == []
        assert greedy_match(np.zeros((3, 0))) == []

    @given(matrices)
    @settings(max_examples=50)
    def test_one_to_one(self, iou):
        pairs = greedy_match(iou, threshold=0.3)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))
        for r, c in pairs:
            assert iou[r, c] >= 0.3


class TestHungarianMatch:
    def test_identity_matrix(self):
        pairs = hungarian_match(np.eye(3), threshold=0.5)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_finds_global_optimum_where_greedy_fails(self):
        # Greedy takes (0,0)=0.9 forcing (1,1)=0.35; optimal total is
        # (0,1)=0.8 + (1,0)=0.8.
        iou = np.array([[0.9, 0.8], [0.8, 0.35]])
        hung = hungarian_match(iou, threshold=0.3)
        total_hung = sum(iou[r, c] for r, c in hung)
        greedy = greedy_match(iou, threshold=0.3)
        total_greedy = sum(iou[r, c] for r, c in greedy)
        assert total_hung >= total_greedy
        assert total_hung == pytest.approx(1.6)

    @given(matrices)
    @settings(max_examples=50)
    def test_one_to_one_and_thresholded(self, iou):
        pairs = hungarian_match(iou, threshold=0.3)
        rows = [r for r, _ in pairs]
        assert len(rows) == len(set(rows))
        for r, c in pairs:
            assert iou[r, c] >= 0.3

    @given(matrices)
    @settings(max_examples=50)
    def test_hungarian_total_at_least_greedy(self, iou):
        hung = hungarian_match(iou, threshold=0.3)
        greedy = greedy_match(iou, threshold=0.3)
        total_hung = sum(iou[r, c] for r, c in hung)
        total_greedy = sum(iou[r, c] for r, c in greedy)
        # Hungarian maximises total weight; allow tiny float slack.
        assert total_hung >= total_greedy - 1e-9 or len(hung) >= len(greedy)


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ConfigError):
            greedy_match(np.zeros(3))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            greedy_match(np.zeros((2, 2)), threshold=0)
        with pytest.raises(ConfigError):
            hungarian_match(np.zeros((2, 2)), threshold=1.5)
