"""Batched observation (§III-F): batch paths must equal per-frame paths.

Every component of the observation pipeline grew a batch entry point —
chunk-map address translation, simulated detection, discriminator matching,
cost lookup, and the environments that compose them. Batching is purely an
overhead optimisation: these tests pin the contract that it never changes a
single observation.
"""

import numpy as np
import pytest

from repro.detection.simulated import SimulatedDetector
from repro.errors import ChunkingError, DatasetError
from repro.query.cost import CostModel
from repro.query.engine import QueryEngine
from repro.theory.instances import InstancePopulation
from repro.theory.temporal_sim import TemporalEnvironment
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import spawn_rng
from repro.video.decoder import SimulatedDecoder

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_tiny_dataset(seed=3), seed=3)


def _picks(dataset, count, seed=0):
    sizes = dataset.chunk_map.sizes()
    rng = np.random.default_rng(seed)
    chunks = rng.integers(0, sizes.size, size=count)
    return [(int(c), int(rng.integers(0, sizes[c]))) for c in chunks]


def _assert_observations_equal(obs_a, obs_b):
    assert len(obs_a) == len(obs_b)
    for a, b in zip(obs_a, obs_b):
        assert a.d0 == b.d0
        assert a.d1 == b.d1
        assert a.cost == b.cost
        assert a.d1_origin_chunks == b.d1_origin_chunks
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert ra == rb or (
                getattr(ra, "instance_uid", None) == getattr(rb, "instance_uid", None)
                and getattr(ra, "track_id", None) == getattr(rb, "track_id", None)
            )


class TestVideoEnvironmentBatch:
    def test_observe_batch_equals_sequential_observe(self, engine):
        picks = _picks(engine.dataset, 300, seed=1)
        env_seq = engine.environment("car", run_seed=0)
        env_batch = engine.environment("car", run_seed=0)
        obs_seq = [env_seq.observe(c, f) for c, f in picks]
        obs_batch = env_batch.observe_batch(picks)
        _assert_observations_equal(obs_seq, obs_batch)

    def test_observe_batch_folds_state_sequentially(self, engine):
        """A track created early in a batch must dedup later batch frames:
        observing one chunk's frames twice in a single huge batch."""
        sizes = engine.dataset.chunk_map.sizes()
        picks = [(0, f) for f in range(int(sizes[0]))] * 2
        env_a = engine.environment("car", run_seed=1)
        env_b = engine.environment("car", run_seed=1)
        obs_a = [env_a.observe(c, f) for c, f in picks]
        obs_b = env_b.observe_batch(picks)
        _assert_observations_equal(obs_a, obs_b)

    def test_observe_batch_empty(self, engine):
        assert engine.environment("car").observe_batch([]) == []

    def test_split_batches_equal_one_batch(self, engine):
        picks = _picks(engine.dataset, 120, seed=2)
        env_one = engine.environment("bicycle", run_seed=2)
        env_two = engine.environment("bicycle", run_seed=2)
        obs_one = env_one.observe_batch(picks)
        obs_two = env_two.observe_batch(picks[:47]) + env_two.observe_batch(
            picks[47:]
        )
        _assert_observations_equal(obs_one, obs_two)


class TestTemporalEnvironmentBatch:
    def _env(self):
        population = InstancePopulation.place(
            150, 60_000, 250, spawn_rng(11, "pop"), skew_fraction=1 / 8
        )
        return TemporalEnvironment.with_even_chunks(population, 12)

    def test_observe_batch_equals_sequential_observe(self):
        env_a, env_b = self._env(), self._env()
        sizes = env_a.chunk_sizes()
        rng = np.random.default_rng(5)
        picks = [
            (int(c), int(rng.integers(0, sizes[c])))
            for c in rng.integers(0, sizes.size, 500)
        ]
        obs_a = [env_a.observe(c, f) for c, f in picks]
        obs_b = env_b.observe_batch(picks)
        _assert_observations_equal(obs_a, obs_b)

    def test_observe_batch_bounds_checked(self):
        env = self._env()
        with pytest.raises(DatasetError):
            env.observe_batch([(0, 10**9)])
        with pytest.raises(DatasetError):
            env.observe_batch([(999, 0)])

    def test_observe_batch_empty(self):
        assert self._env().observe_batch([]) == []


class TestDetectorBatch:
    def test_detect_batch_equals_per_frame(self, engine):
        detector_a = SimulatedDetector(engine.dataset.world, seed=9)
        detector_b = SimulatedDetector(engine.dataset.world, seed=9)
        frames = list(range(0, 1200, 7))
        videos = [0] * len(frames)
        singles = [detector_a.detect(0, f, class_filter="car") for f in frames]
        batched = detector_b.detect_batch(videos, frames, class_filter="car")
        assert singles == batched
        assert detector_a.frames_processed == detector_b.frames_processed

    def test_detect_batch_no_filter(self, engine):
        detector_a = SimulatedDetector(engine.dataset.world, seed=4)
        detector_b = SimulatedDetector(engine.dataset.world, seed=4)
        frames = list(range(0, 600, 11))
        assert detector_b.detect_batch([0] * len(frames), frames) == [
            detector_a.detect(0, f) for f in frames
        ]

    def test_detect_batch_validates_alignment(self, engine):
        detector = SimulatedDetector(engine.dataset.world, seed=0)
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            detector.detect_batch([0, 0], [1])


class TestDiscriminatorBatch:
    def test_observe_full_batch_equals_sequential(self, engine):
        world = engine.dataset.world
        detector = SimulatedDetector(world, seed=2)
        frames = list(range(0, 2000, 13))
        detection_lists = [
            detector.detect(0, f, class_filter="car") for f in frames
        ]
        disc_a = TrackDiscriminator(world, seed=5)
        disc_b = TrackDiscriminator(world, seed=5)
        seq = [
            disc_a.observe_full(0, f, dets)
            for f, dets in zip(frames, detection_lists)
        ]
        batched = disc_b.observe_full_batch(
            [0] * len(frames), frames, detection_lists
        )
        assert disc_a.num_tracks == disc_b.num_tracks
        for a, b in zip(seq, batched):
            assert len(a.d0) == len(b.d0)
            assert len(a.d1) == len(b.d1)
            assert [t.track_id for t in a.new_tracks] == [
                t.track_id for t in b.new_tracks
            ]
            assert [t.track_id for t in a.d1_tracks] == [
                t.track_id for t in b.d1_tracks
            ]

    def test_empty_frames_leave_store_untouched(self, engine):
        disc = TrackDiscriminator(engine.dataset.world, seed=1)
        results = disc.observe_full_batch([0, 0, 0], [1, 2, 3], [[], [], []])
        assert disc.num_tracks == 0
        assert all(not r.d0 and not r.d1 for r in results)


class TestChunkMapBatch:
    def test_to_video_frame_batch_equals_scalar(self, engine):
        chunk_map = engine.dataset.chunk_map
        picks = _picks(engine.dataset, 200, seed=8)
        chunks = np.array([c for c, _ in picks])
        withins = np.array([f for _, f in picks])
        videos, frames = chunk_map.to_video_frame_batch(chunks, withins)
        for (chunk, within), video, frame in zip(picks, videos, frames):
            assert chunk_map.to_video_frame(chunk, within) == (video, frame)

    def test_to_video_frame_batch_validates(self, engine):
        chunk_map = engine.dataset.chunk_map
        with pytest.raises(ChunkingError):
            chunk_map.to_video_frame_batch(np.array([0]), np.array([10**9]))
        with pytest.raises(ChunkingError):
            chunk_map.to_video_frame_batch(np.array([-1]), np.array([0]))
        with pytest.raises(ChunkingError):
            chunk_map.to_video_frame_batch(np.array([0, 1]), np.array([0]))


class TestCostModelBatch:
    def test_sample_costs_flat_mode(self):
        model = CostModel()
        costs = model.sample_costs([0, 0, 1], [5, 6, 7])
        assert costs.shape == (3,)
        assert np.allclose(costs, 1.0 / model.detector_fps)

    def test_sample_costs_detailed_mode(self):
        model = CostModel(detailed=True, decoder=SimulatedDecoder())
        frames = [0, 19, 20, 399]
        costs = model.sample_costs([0] * 4, frames)
        expected = [model.sample_cost(0, f) for f in frames]
        assert np.allclose(costs, expected)
