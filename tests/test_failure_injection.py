"""Failure injection: the pipeline must stay honest under degraded parts.

Each test breaks one component — a near-blind detector, a hallucinating
detector, a tracker that loses everything, pathological chunkings — and
asserts the system degrades *gracefully*: runs terminate, accounting stays
consistent, and the evaluation metrics never report recall that did not
happen.
"""

import numpy as np

from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.detection.simulated import DetectorProfile, SimulatedDetector
from repro.query.engine import QueryEngine
from repro.query.metrics import (
    duplicate_fraction,
    precision,
    recall_curve,
    unique_instance_curve,
)
from repro.query.query import DistinctObjectQuery
from repro.theory.instances import InstancePopulation
from repro.theory.temporal_sim import TemporalEnvironment
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import RngFactory, spawn_rng

from tests.conftest import make_tiny_dataset


class TestNearBlindDetector:
    def test_query_terminates_and_reports_honestly(self):
        dataset = make_tiny_dataset(seed=9)
        detector = SimulatedDetector(
            dataset.world,
            profile=DetectorProfile(
                miss_rate=0.9, small_box_penalty=0.0,
                false_positives_per_frame=0.0,
            ),
            seed=9,
        )
        engine = QueryEngine(dataset, detector=detector, seed=9)
        outcome = engine.run(
            DistinctObjectQuery("car", frame_budget=800), method="exsample"
        )
        # Budget respected, recall monotone and <= 1 even with 90% misses.
        assert outcome.trace.num_samples <= 800
        curve = recall_curve(outcome.trace, outcome.gt_count)
        if curve.size:
            assert np.all(np.diff(curve) >= 0)
            assert curve[-1] <= 1.0

    def test_finds_less_than_good_detector(self):
        dataset = make_tiny_dataset(seed=9)
        blind = SimulatedDetector(
            dataset.world,
            profile=DetectorProfile(miss_rate=0.9, small_box_penalty=0.0),
            seed=9,
        )
        sharp = SimulatedDetector(
            dataset.world,
            profile=DetectorProfile(miss_rate=0.0, small_box_penalty=0.0),
            seed=9,
        )
        query = DistinctObjectQuery("car", frame_budget=400)
        blind_found = QueryEngine(dataset, detector=blind, seed=9).run(
            query, method="random"
        ).num_results
        sharp_found = QueryEngine(dataset, detector=sharp, seed=9).run(
            query, method="random"
        ).num_results
        assert blind_found < sharp_found


class TestHallucinatingDetector:
    def test_precision_reflects_false_positives(self):
        dataset = make_tiny_dataset(seed=10)
        noisy = SimulatedDetector(
            dataset.world,
            profile=DetectorProfile(
                miss_rate=0.05, false_positives_per_frame=2.0
            ),
            seed=10,
        )
        engine = QueryEngine(dataset, detector=noisy, seed=10)
        outcome = engine.run(
            DistinctObjectQuery("car", frame_budget=300), method="random"
        )
        assert precision(outcome.trace) < 0.9  # hallucinations show up...
        # ...but never inflate instance recall.
        assert unique_instance_curve(outcome.trace)[-1] <= outcome.gt_count


class TestAmnesiacTracker:
    def test_total_track_loss_causes_duplicates_not_crashes(self):
        dataset = make_tiny_dataset(seed=11)
        engine = QueryEngine(dataset, seed=11)
        env = engine.environment("car")
        # Replace the discriminator with one that forgets almost instantly.
        env.discriminator = TrackDiscriminator(
            dataset.world, track_loss_per_frame=0.9, seed=11
        )
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=11), rng=RngFactory(11))
        trace = searcher.run(frame_budget=600)
        assert duplicate_fraction(trace) > 0.0
        # d0 counts exceed unique instances (duplicates), never the reverse.
        assert trace.num_results >= unique_instance_curve(trace)[-1]


class TestPathologicalChunkings:
    def _population(self):
        return InstancePopulation.place(
            50, 5000, 100, spawn_rng(12, "fi"), skew_fraction=1 / 4
        )

    def test_single_frame_chunks(self):
        population = self._population()
        env = TemporalEnvironment.with_even_chunks(population, 5000)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        trace = searcher.run(frame_budget=200)
        assert trace.num_samples == 200
        assert len(set(zip(trace.chunks.tolist(), trace.frames.tolist()))) == 200

    def test_single_chunk(self):
        population = self._population()
        env = TemporalEnvironment.with_even_chunks(population, 1)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        trace = searcher.run(frame_budget=200)
        assert trace.num_samples == 200

    def test_budget_larger_than_dataset(self):
        population = self._population()
        env = TemporalEnvironment.with_even_chunks(population, 8)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        trace = searcher.run(frame_budget=10_000)
        # Exhausts all 5000 frames, then stops cleanly.
        assert trace.num_samples == 5000
        assert trace.num_results == 50  # every instance eventually found


class TestEmptyWorlds:
    def test_class_with_no_detectable_frames(self):
        """A frame budget run over an empty-result environment ends quietly."""
        population = InstancePopulation(
            starts=np.array([0]), durations=np.array([1]), total_frames=1000
        )
        env = TemporalEnvironment.with_even_chunks(population, 4)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        trace = searcher.run(frame_budget=100)
        assert trace.num_results <= 1

    def test_result_limit_never_reached_falls_through_to_exhaustion(self):
        population = InstancePopulation(
            starts=np.array([10]), durations=np.array([5]), total_frames=500
        )
        env = TemporalEnvironment.with_even_chunks(population, 4)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0), rng=RngFactory(0))
        trace = searcher.run(result_limit=99)
        assert trace.num_samples == 500  # drained everything looking
        assert trace.num_results == 1
