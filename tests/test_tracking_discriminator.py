"""Tests for the distinct-object discriminator."""

import pytest

from repro.detection.detections import Detection
from repro.detection.simulated import PERFECT_PROFILE, SimulatedDetector
from repro.errors import ConfigError
from repro.tracking.discriminator import TrackDiscriminator
from repro.tracking.tracks import Track
from repro.video.geometry import BoundingBox

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset(seed=2)


@pytest.fixture(scope="module")
def detector(dataset):
    return SimulatedDetector(dataset.world, profile=PERFECT_PROFILE, seed=0)


def find_frames_of(dataset, uid, count=3):
    """A few frames where instance ``uid`` is visible."""
    inst = dataset.world.instances[uid]
    span = inst.end - inst.start
    return inst.video, [
        inst.start + (span * k) // count for k in range(count)
    ]


class TestDiscriminatorBasics:
    def test_first_sighting_is_new(self, dataset, detector):
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        inst = dataset.world.instances[0]
        video, frames = find_frames_of(dataset, 0)
        dets = detector.detect(video, frames[0], class_filter=inst.class_name)
        dets = [d for d in dets if d.instance_uid == 0]
        d0, d1, new = discrim.observe(video, frames[0], dets)
        assert len(d0) == 1
        assert len(d1) == 0
        assert len(new) == 1
        assert new[0].instance is dataset.world.instances[0]

    def test_resighting_matches(self, dataset, detector):
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        inst = dataset.world.instances[0]
        video, frames = find_frames_of(dataset, 0)
        for i, frame in enumerate(frames):
            dets = [
                d
                for d in detector.detect(video, frame, class_filter=inst.class_name)
                if d.instance_uid == 0
            ]
            d0, d1, _ = discrim.observe(video, frame, dets)
            if i == 0:
                assert len(d0) == 1
            else:
                assert len(d0) == 0
            if i == 1:
                assert len(d1) == 1  # second sighting: track had times_seen 1
            if i == 2:
                assert len(d1) == 0  # third sighting: track already seen twice
        assert discrim.num_tracks == 1

    def test_different_instances_both_new(self, dataset, detector):
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        found = set()
        for video in (0, 1):
            for frame in range(0, 1200, 11):
                dets = detector.detect(video, frame)
                d0, _, _ = discrim.observe(video, frame, dets)
                for det in d0:
                    assert det.instance_uid not in found, "duplicate result"
                    found.add(det.instance_uid)
        assert len(found) == discrim.num_tracks
        assert discrim.distinct_real_instances() == len(found)

    def test_false_positive_creates_point_track(self, dataset):
        discrim = TrackDiscriminator(dataset.world)
        fp = Detection(
            video=0, frame=500, box=BoundingBox(10, 10, 60, 60),
            class_name="car", score=0.3, instance_uid=None,
        )
        d0, d1, new = discrim.observe(0, 500, [fp])
        assert len(d0) == 1
        track = new[0]
        assert track.is_false_positive
        assert track.covers(0, 500)
        assert not track.covers(0, 501)


class TestTrackLoss:
    def test_zero_loss_covers_instance(self, dataset, detector):
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        inst = dataset.world.instances[3]
        video, frames = find_frames_of(dataset, 3)
        dets = [
            d
            for d in detector.detect(video, frames[1], class_filter=inst.class_name)
            if d.instance_uid == 3
        ]
        _, _, new = discrim.observe(video, frames[1], dets)
        track = new[0]
        assert track.start == inst.start
        assert track.end == inst.end

    def test_high_loss_truncates(self, dataset, detector):
        discrim = TrackDiscriminator(
            dataset.world, track_loss_per_frame=0.5, seed=1
        )
        inst = dataset.world.instances[3]
        video, frames = find_frames_of(dataset, 3)
        dets = [
            d
            for d in detector.detect(video, frames[1], class_filter=inst.class_name)
            if d.instance_uid == 3
        ]
        _, _, new = discrim.observe(video, frames[1], dets)
        track = new[0]
        assert track.end - track.start < inst.duration


class TestPaperCallingConvention:
    def test_get_matches_then_add(self, dataset, detector):
        """The Algorithm 1 two-call sequence must agree with observe()."""
        inst = dataset.world.instances[0]
        video, frames = find_frames_of(dataset, 0)
        dets = [
            d
            for d in detector.detect(video, frames[0], class_filter=inst.class_name)
            if d.instance_uid == 0
        ]
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        d0, d1 = discrim.get_matches(video, frames[0], dets)
        assert len(d0) == 1
        assert discrim.num_tracks == 0  # get_matches must not mutate
        new = discrim.add(video, frames[0], dets)
        assert len(new) == 1
        assert discrim.num_tracks == 1

    def test_add_without_get_matches_still_works(self, dataset, detector):
        inst = dataset.world.instances[0]
        video, frames = find_frames_of(dataset, 0)
        dets = [
            d
            for d in detector.detect(video, frames[0], class_filter=inst.class_name)
            if d.instance_uid == 0
        ]
        discrim = TrackDiscriminator(dataset.world, track_loss_per_frame=0.0)
        new = discrim.add(video, frames[0], dets)
        assert len(new) == 1


class TestTrackValidation:
    def test_track_interval_must_be_inside_instance(self, dataset):
        inst = dataset.world.instances[0]
        with pytest.raises(Exception):
            Track(
                track_id=0, class_name=inst.class_name, video=inst.video,
                start=inst.start - 10, end=inst.end,
                instance=inst, anchor_box=BoundingBox(0, 0, 1, 1),
            )

    def test_discriminator_validation(self, dataset):
        with pytest.raises(ConfigError):
            TrackDiscriminator(dataset.world, iou_threshold=0)
        with pytest.raises(ConfigError):
            TrackDiscriminator(dataset.world, track_loss_per_frame=1.0)

    def test_box_at_outside_interval(self, dataset):
        inst = dataset.world.instances[0]
        track = Track(
            track_id=0, class_name=inst.class_name, video=inst.video,
            start=inst.start, end=inst.end,
            instance=inst, anchor_box=inst.entry_box,
        )
        with pytest.raises(Exception):
            track.box_at(inst.end)
