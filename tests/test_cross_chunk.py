"""Tests for the footnote-1 cross-chunk accounting (cross_chunk="origin")."""

import numpy as np
import pytest

from repro.core.chunk_state import ChunkStatistics
from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.errors import ConfigError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.theory.instances import InstancePopulation
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory

from tests.conftest import make_tiny_dataset


@pytest.fixture
def spanning_population():
    """One long instance spanning chunks 1-2 plus fillers elsewhere."""
    return InstancePopulation(
        starts=np.array([40, 5, 80]),
        durations=np.array([30, 5, 5]),
        total_frames=100,
    )


class TestConfig:
    def test_default_is_local(self):
        assert ExSampleConfig().cross_chunk == "local"

    def test_origin_accepted(self):
        assert ExSampleConfig(cross_chunk="origin").cross_chunk == "origin"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            ExSampleConfig(cross_chunk="split")


class TestCreditBatch:
    def test_origin_receives_decrement(self):
        stats = ChunkStatistics([10, 10])
        # Frame from chunk 1 finds nothing new but re-sees an object first
        # discovered in chunk 0.
        stats.apply_credit_batch(
            np.array([1]), np.array([0.0]), [[0]]
        )
        assert stats.n1[0] == -1.0
        assert stats.n1[1] == 0.0
        assert stats.n[1] == 1
        assert stats.n[0] == 0

    def test_plus_before_minus_keeps_nonnegative(self):
        stats = ChunkStatistics([10, 10])
        stats.apply_credit_batch(np.array([0]), np.array([1.0]), [[]])
        stats.apply_credit_batch(np.array([1]), np.array([0.0]), [[0]])
        assert stats.n1[0] == 0.0
        assert np.all(stats.n1 >= 0)

    def test_shape_validation(self):
        stats = ChunkStatistics([10])
        with pytest.raises(ConfigError):
            stats.apply_credit_batch(np.array([0]), np.array([0.0, 1.0]), [[]])
        with pytest.raises(ConfigError):
            stats.apply_credit_batch(np.array([0]), np.array([0.0]), [])

    def test_origin_chunk_bounds_checked(self):
        stats = ChunkStatistics([10])
        with pytest.raises(ConfigError):
            stats.apply_credit_batch(np.array([0]), np.array([0.0]), [[5]])


class TestTemporalEnvironmentOrigins:
    def test_origin_is_first_seen_chunk(self, spanning_population):
        env = TemporalEnvironment.with_even_chunks(spanning_population, 4)
        first = env.observe(1, 20)   # global 45: instance 0 discovered
        assert first.d0 == 1
        second = env.observe(2, 10)  # global 60: instance 0 re-seen
        assert second.d1 == 1
        assert second.d1_origin_chunks == [1]

    def test_no_matches_empty_origins(self, spanning_population):
        env = TemporalEnvironment.with_even_chunks(spanning_population, 4)
        obs = env.observe(0, 20)  # nothing visible
        assert obs.d1_origin_chunks == []


class TestOriginModeInvariant:
    def test_raw_n1_never_negative_with_perfect_discriminator(self):
        """The invariant the adjustment exists to restore: with instance-id
        deduplication, every per-chunk N1 stays >= 0 at every step."""
        population = InstancePopulation.place(
            100, 50_000, 2500, RngFactory(0).stream("pop"),  # long instances
            skew_fraction=1 / 4,
        )
        env = TemporalEnvironment.with_even_chunks(population, 25)
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=0, cross_chunk="origin"), rng=RngFactory(0)
        )
        for _ in range(400):
            picks = searcher.pick_batch()
            if not picks:
                break
            observations = [env.observe(c, f) for c, f in picks]
            searcher.update(picks, observations)
            assert np.all(searcher.stats.n1 >= -1e-9), (
                "origin mode must keep every per-chunk N1 non-negative"
            )

    def test_local_mode_can_go_negative_on_same_workload(self):
        population = InstancePopulation.place(
            100, 50_000, 2500, RngFactory(0).stream("pop"),
            skew_fraction=1 / 4,
        )
        env = TemporalEnvironment.with_even_chunks(population, 25)
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=0, cross_chunk="local"), rng=RngFactory(0)
        )
        searcher.run(frame_budget=400)
        assert searcher.stats.n1.min() < 0  # the footnote-1 symptom

    @pytest.mark.parametrize("mode", ["local", "origin"])
    def test_global_n1_sum_counts_seen_exactly_once(self, mode):
        """Crediting moves decrements *between* chunks; in both modes the
        global sum of the N1 counters must equal the number of instances
        currently seen exactly once (the environment knows the truth)."""
        population = InstancePopulation.place(
            80, 20_000, 1500, RngFactory(1).stream("pop"), skew_fraction=1 / 4
        )
        env = TemporalEnvironment.with_even_chunks(population, 10)
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=7, cross_chunk=mode), rng=RngFactory(7)
        )
        searcher.run(frame_budget=300)
        truly_seen_once = sum(
            1
            for uid in range(population.count)
            if env.counter.times_seen(uid) == 1
        )
        assert searcher.stats.n1.sum() == pytest.approx(truly_seen_once)


class TestEngineOriginMode:
    def test_end_to_end(self):
        engine = QueryEngine(make_tiny_dataset(seed=12), seed=12)
        outcome = engine.run(
            DistinctObjectQuery("car", limit=8),
            method="exsample",
            config=ExSampleConfig(seed=0, cross_chunk="origin"),
        )
        assert outcome.num_results >= 8

    def test_comparable_quality_to_local(self):
        engine = QueryEngine(make_tiny_dataset(seed=12), seed=12)
        query = DistinctObjectQuery("car", recall_target=0.5)
        local = engine.run(
            query, method="exsample",
            config=ExSampleConfig(seed=0, cross_chunk="local"),
        )
        origin = engine.run(
            query, method="exsample",
            config=ExSampleConfig(seed=0, cross_chunk="origin"),
        )
        assert origin.trace.num_samples < local.trace.num_samples * 4
        assert local.trace.num_samples < origin.trace.num_samples * 4
