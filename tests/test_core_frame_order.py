"""Tests for frame orders — permutation and stratification properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame_order import (
    RandomPlusOrder,
    ScoreWeightedOrder,
    SequentialOrder,
    UniformOrder,
    make_order,
)
from repro.errors import ConfigError, ExhaustedError
from repro.utils.rng import spawn_rng


def drain(order):
    out = []
    while order.remaining > 0:
        out.append(order.next())
    return out


class TestSequentialOrder:
    def test_identity_order(self):
        assert drain(SequentialOrder(5)) == [0, 1, 2, 3, 4]

    def test_exhaustion(self):
        order = SequentialOrder(1)
        order.next()
        with pytest.raises(ExhaustedError):
            order.next()

    def test_empty(self):
        order = SequentialOrder(0)
        with pytest.raises(ExhaustedError):
            order.next()


class TestUniformOrder:
    @given(st.integers(min_value=0, max_value=300), st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_is_permutation(self, size, seed):
        order = UniformOrder(size, spawn_rng(seed, "u"))
        assert sorted(drain(order)) == list(range(size))

    def test_first_samples_look_uniform(self):
        counts = np.zeros(10)
        for seed in range(2000):
            order = UniformOrder(10, spawn_rng(seed, "u2"))
            counts[order.next()] += 1
        assert counts.min() > 120  # expected 200 each

    def test_tail_switch_preserves_permutation(self):
        """The rejection->materialised-tail switch must not lose frames."""
        order = UniformOrder(100, spawn_rng(1, "u3"))
        out = drain(order)
        assert sorted(out) == list(range(100))

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            UniformOrder(-1, spawn_rng(0, "u4"))


class TestRandomPlusOrder:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(0, 2**31),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40)
    def test_is_permutation(self, size, seed, strata):
        order = RandomPlusOrder(size, spawn_rng(seed, "rp"), initial_strata=strata)
        assert sorted(drain(order)) == list(range(size))

    @pytest.mark.parametrize("size", [64, 256, 1000])
    def test_stratification_of_prefix(self, size):
        """The first 2^k samples must be spread across >= 2^(k-1) distinct
        halves/quarters/... — the property random+ exists to provide
        (plain uniform sampling clumps; see §III-F's 1000-hour example)."""
        order = RandomPlusOrder(size, spawn_rng(3, "rp2"))
        picks = [order.next() for _ in range(min(16, size))]
        # After 4 samples, at least 3 distinct quarters must be hit.
        quarters = {min(4 * p // size, 3) for p in picks[:4]}
        assert len(quarters) >= 3
        # After 8 samples, at least 6 distinct eighths.
        eighths = {min(8 * p // size, 7) for p in picks[:8]}
        assert len(eighths) >= 6

    def test_first_sample_uniform_overall(self):
        counts = np.zeros(8)
        for seed in range(2000):
            order = RandomPlusOrder(8, spawn_rng(seed, "rp3"))
            counts[order.next()] += 1
        assert counts.min() > 150  # expected 250

    def test_initial_strata_spread(self):
        """With initial_strata=4, the first 4 picks land in 4 distinct strata."""
        order = RandomPlusOrder(100, spawn_rng(5, "rp4"), initial_strata=4)
        picks = [order.next() for _ in range(4)]
        strata = {p * 4 // 100 for p in picks}
        assert len(strata) == 4

    def test_rejects_bad_strata(self):
        with pytest.raises(ConfigError):
            RandomPlusOrder(10, spawn_rng(0, "rp5"), initial_strata=0)

    def test_large_domain_lazy(self):
        """Drawing a few frames from a huge domain must be cheap (lazy)."""
        order = RandomPlusOrder(10_000_000, spawn_rng(0, "rp6"))
        picks = [order.next() for _ in range(32)]
        assert len(set(picks)) == 32


class TestScoreWeightedOrder:
    def test_is_permutation(self):
        scores = spawn_rng(0, "sw").random(50)
        order = ScoreWeightedOrder(50, spawn_rng(1, "sw"), scores)
        assert sorted(drain(order)) == list(range(50))

    def test_biased_toward_high_scores(self):
        size = 200
        scores = np.zeros(size)
        scores[:20] = 8.0  # strongly favoured block
        first_picks = []
        for seed in range(300):
            order = ScoreWeightedOrder(size, spawn_rng(seed, "sw2"), scores)
            first_picks.append(order.next())
        hit_rate = np.mean([p < 20 for p in first_picks])
        assert hit_rate > 0.8

    def test_flat_scores_degrade_to_uniform(self):
        size = 10
        counts = np.zeros(size)
        for seed in range(3000):
            order = ScoreWeightedOrder(
                size, spawn_rng(seed, "sw3"), np.zeros(size)
            )
            counts[order.next()] += 1
        assert counts.min() > 180  # expected 300

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ScoreWeightedOrder(5, spawn_rng(0, "sw4"), np.zeros(4))

    def test_bad_temperature_rejected(self):
        with pytest.raises(ConfigError):
            ScoreWeightedOrder(5, spawn_rng(0, "sw5"), np.zeros(5), temperature=0)


class TestMakeOrder:
    @pytest.mark.parametrize("name", ["randomplus", "uniform", "sequential"])
    def test_dispatch(self, name):
        order = make_order(name, 10, spawn_rng(0, "mk"))
        assert sorted(drain(order)) == list(range(10))

    def test_score_requires_scores(self):
        with pytest.raises(ConfigError):
            make_order("score", 10, spawn_rng(0, "mk2"))

    def test_score_with_scores(self):
        order = make_order("score", 10, spawn_rng(0, "mk3"), scores=np.zeros(10))
        assert sorted(drain(order)) == list(range(10))

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_order("spiral", 10, spawn_rng(0, "mk4"))
