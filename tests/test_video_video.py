"""Tests for videos, repositories and frame addressing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.utils.rng import spawn_rng
from repro.video.video import (
    Video,
    VideoRepository,
    clip_collection_repository,
    single_camera_repository,
)


class TestVideo:
    def test_duration(self):
        video = Video("v", num_frames=300, fps=30.0)
        assert video.duration_seconds == pytest.approx(10.0)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Video("v", num_frames=0)

    def test_rejects_bad_fps(self):
        with pytest.raises(DatasetError):
            Video("v", num_frames=10, fps=0)


class TestRepositoryAddressing:
    @pytest.fixture
    def repo(self):
        return VideoRepository(
            [Video("a", 100), Video("b", 50), Video("c", 200)]
        )

    def test_totals(self, repo):
        assert repo.total_frames == 350
        assert repo.num_videos == 3

    def test_global_index(self, repo):
        assert repo.global_index(0, 0) == 0
        assert repo.global_index(1, 0) == 100
        assert repo.global_index(2, 199) == 349

    def test_locate_roundtrip(self, repo):
        for g in [0, 99, 100, 149, 150, 349]:
            video, frame = repo.locate(g)
            assert repo.global_index(video, frame) == g

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_bijection_property(self, frame_counts):
        repo = VideoRepository(
            [Video(f"v{i}", n) for i, n in enumerate(frame_counts)]
        )
        rng = spawn_rng(0, "addr")
        for g in rng.integers(0, repo.total_frames, size=20):
            video, frame = repo.locate(int(g))
            assert 0 <= frame < frame_counts[video]
            assert repo.global_index(video, frame) == g

    def test_locate_many_matches_scalar(self, repo):
        frames = np.array([0, 99, 100, 349])
        videos, local = repo.locate_many(frames)
        for i, g in enumerate(frames):
            v, f = repo.locate(int(g))
            assert (videos[i], local[i]) == (v, f)

    def test_out_of_range(self, repo):
        with pytest.raises(DatasetError):
            repo.locate(350)
        with pytest.raises(DatasetError):
            repo.locate(-1)
        with pytest.raises(DatasetError):
            repo.global_index(0, 100)
        with pytest.raises(DatasetError):
            repo.global_index(3, 0)

    def test_rejects_empty_repository(self):
        with pytest.raises(DatasetError):
            VideoRepository([])

    def test_hours(self, repo):
        assert repo.total_hours == pytest.approx(350 / 30.0 / 3600.0)


class TestBuilders:
    def test_single_camera_partition(self):
        repo = single_camera_repository("cam", hours=2.0, fps=30, segment_minutes=30)
        assert repo.total_frames == 2 * 3600 * 30
        assert repo.num_videos == 4
        assert all(v.num_frames == 30 * 60 * 30 for v in repo.videos)

    def test_single_camera_partial_tail(self):
        repo = single_camera_repository("cam", hours=0.75, fps=10, segment_minutes=30)
        assert repo.num_videos == 2
        assert repo.videos[1].num_frames == 15 * 60 * 10

    def test_single_camera_rejects_zero_hours(self):
        with pytest.raises(DatasetError):
            single_camera_repository("cam", hours=0)

    def test_clip_collection(self):
        repo = clip_collection_repository("clips", num_clips=10, clip_frames=200)
        assert repo.num_videos == 10
        assert repo.total_frames == 2000

    def test_clip_jitter(self):
        repo = clip_collection_repository(
            "clips", 50, 200, frame_jitter=50, rng=spawn_rng(0, "cc")
        )
        lengths = {v.num_frames for v in repo.videos}
        assert len(lengths) > 1
        assert all(1 <= v.num_frames <= 250 for v in repo.videos)

    def test_clip_rejects_bad_counts(self):
        with pytest.raises(DatasetError):
            clip_collection_repository("clips", 0, 200)


class TestCommonFps:
    def test_uniform_repository_returns_exact_rate(self):
        repo = VideoRepository(
            [Video("a", 100, fps=29.97), Video("b", 50, fps=29.97)]
        )
        assert repo.common_fps() == 29.97

    def test_heterogeneous_repository_weights_by_frames(self):
        repo = VideoRepository(
            [Video("a", 300, fps=10.0), Video("b", 100, fps=30.0)]
        )
        assert repo.common_fps() == pytest.approx((300 * 10 + 100 * 30) / 400)

    def test_single_video(self):
        repo = VideoRepository([Video("a", 10, fps=5.0)])
        assert repo.common_fps() == 5.0
