"""The wire protocol front-end (repro.serving.net).

The acceptance bar is the serving layer's, lifted over a socket: a query
submitted through the newline-delimited JSON protocol must return a
``QueryOutcome`` element-wise identical to the same ``(query, method,
run_seed)`` run solo, errors must arrive as *typed* frames that re-raise
as the matching :mod:`repro.errors` class, and pause → checkpoint →
restore over the wire must keep the trace byte-identical — the primitive
fleet migration is built on.

Every test drives a real ``NetServer`` on an ephemeral localhost port
inside a private ``asyncio.run`` loop (clean under
``PYTHONASYNCIODEBUG=1``, which a CI job enforces).
"""

import asyncio
import json

import pytest

from repro.errors import (
    ConfigError,
    ProtocolError,
    QueryError,
    ServerDrainingError,
    ServerOverloadedError,
    WireTimeoutError,
)
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.query.session import peek_checkpoint
from repro.serving import ServerConfig
from repro.serving.faults import FaultSpec
from repro.serving.net import (
    PROTOCOL_VERSION,
    FleetClient,
    NetServer,
    RetryPolicy,
)

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical


def fresh_engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


@pytest.fixture(scope="module")
def solo_engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


QUERY = DistinctObjectQuery("car", limit=5)


async def _with_server(fn, config=None):
    """Run ``fn(server, client)`` against a fresh served engine."""
    async with NetServer(fresh_engine(), config=config) as server:
        client = await FleetClient.connect("127.0.0.1", server.port)
        try:
            return await fn(server, client)
        finally:
            await client.close()


class TestProtocolBasics:
    def test_ping_reports_protocol_version(self):
        async def go(server, client):
            response = await client.ping()
            assert response["protocol"] == PROTOCOL_VERSION
            assert response["draining"] is False

        asyncio.run(_with_server(go))

    def test_unknown_op_is_a_typed_protocol_error(self):
        async def go(server, client):
            with pytest.raises(ProtocolError, match="unknown op"):
                await client._request({"op": "frobnicate"})

        asyncio.run(_with_server(go))

    def test_malformed_frames_get_error_frames_not_disconnects(self):
        """Raw garbage elicits an error frame; the connection survives."""

        async def go(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                frame = json.loads(await reader.readline())
                assert frame["error"] == "ProtocolError"
                assert frame["rid"] is None
                # Same connection still answers a well-formed frame.
                writer.write(
                    json.dumps({"op": "ping", "rid": "r1"}).encode() + b"\n"
                )
                await writer.drain()
                frame = json.loads(await reader.readline())
                assert frame["ok"] is True
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(go))

    def test_submit_validates_like_workload_files(self):
        async def go(server, client):
            with pytest.raises(ConfigError, match="unknown keys"):
                await client._request(
                    {
                        "op": "submit",
                        "sid": "q1",
                        "query": {"object": "car", "limitt": 3},
                    }
                )
            # Unknown class surfaces the engine's own QueryError, typed.
            with pytest.raises(QueryError, match="not in dataset"):
                await client.submit(object="unicorn", limit=1)

        asyncio.run(_with_server(go))

    def test_stats_roundtrip_is_jsonable(self):
        async def go(server, client):
            session = await client.submit(item=None, object="car", limit=2)
            await session.wait()
            stats = await client.stats()
            assert stats["submitted"] == 1
            assert stats["finished"] == 1
            assert stats["draining"] is False
            assert stats["cache"]["hits"] >= 0
            assert isinstance(stats["per_tenant"], dict)

        asyncio.run(_with_server(go))


class TestRemoteOutcomes:
    @pytest.mark.parametrize("method", ["exsample", "random"])
    def test_remote_outcome_identical_to_solo(self, method, solo_engine):
        async def go(server, client):
            session = await client.submit(
                object="car", limit=5, method=method, run_seed=3, tenant="t"
            )
            return await session.result()

        outcome = asyncio.run(_with_server(go))
        solo = solo_engine.run(QUERY, method=method, run_seed=3)
        assert outcome.query == solo.query
        assert outcome.gt_count == solo.gt_count
        assert_traces_identical(outcome.trace, solo.trace)

    def test_event_stream_matches_session_counters(self):
        async def go(server, client):
            session = await client.submit(
                object="car", limit=4, stream=True, tenant="s"
            )
            events = []
            async for frame in session.events():
                events.append(frame)
            assert events[-1]["event"] == "terminal"
            assert events[-1]["state"] == "finished"
            results = [e for e in events if e["event"] == "result"]
            # Result numbering is dense and agrees with the terminal frame.
            assert [e["num_results"] for e in results] == list(
                range(1, len(results) + 1)
            )
            assert len(results) == events[-1]["num_results"]
            samples = [e for e in events if e["event"] == "samples"]
            assert samples, "streaming must emit sample-batch frames"
            assert all(
                a["num_samples"] < b["num_samples"]
                for a, b in zip(samples, samples[1:])
            )
            for e in results:
                assert set(e["result"]) >= {"video", "frame", "score"}

        asyncio.run(_with_server(go))

    def test_overload_arrives_as_typed_error(self):
        config = ServerConfig(max_in_flight=1, queue_capacity=0)

        async def go(server, client):
            first = await client.submit(
                object="car", limit=5, pause_after=50
            )
            with pytest.raises(ServerOverloadedError, match="queue full"):
                await client.submit(object="car", limit=1, run_seed=1)
            first_state = await first.wait()
            assert first_state in ("finished", "paused")

        asyncio.run(_with_server(go, config=config))


class TestDrainOverWire:
    def test_draining_server_refuses_submits_with_typed_error(self):
        async def go(server, client):
            running = await client.submit(object="car", limit=3)
            await client.drain()
            assert (await client.ping())["draining"] is True
            # The accepted session settled during the drain...
            assert await running.wait() == "finished"
            # ...and new work is refused without dropping the connection.
            with pytest.raises(ServerDrainingError):
                await client.submit(object="car", limit=1, run_seed=1)
            assert (await client.ping())["ok"] is True

        asyncio.run(_with_server(go))

    def test_drain_with_checkpoint_pauses_in_flight_sessions(self):
        async def go(server, client):
            session = await client.submit(object="car", limit=50)
            await client.drain(checkpoint=True)
            assert await session.wait() == "paused"
            blob = await session.checkpoint()
            assert peek_checkpoint(blob).method == "exsample"

        asyncio.run(_with_server(go))


class TestCheckpointOverWire:
    def test_checkpoint_requires_terminal_session(self):
        async def go(server, client):
            session = await client.submit(object="car", limit=50)
            with pytest.raises(QueryError, match="pause"):
                await session.checkpoint()
            await session.pause()
            await session.wait()

        asyncio.run(_with_server(go))

    def test_pause_checkpoint_restore_trace_identical(self, solo_engine):
        """The live-migration primitive: split a run across two servers."""

        async def first_half():
            async with NetServer(fresh_engine()) as server:
                client = await FleetClient.connect("127.0.0.1", server.port)
                try:
                    session = await client.submit(
                        object="car", limit=5, run_seed=2, pause_after=2
                    )
                    assert await session.wait() == "paused"
                    blob = await session.checkpoint()
                    meta = peek_checkpoint(blob)
                    assert meta.version == 2
                    assert meta.num_samples > 0
                    return blob
                finally:
                    await client.close()

        async def second_half(blob):
            async with NetServer(fresh_engine()) as server:
                client = await FleetClient.connect("127.0.0.1", server.port)
                try:
                    session = await client.restore(blob, tenant="moved")
                    return await session.result()
                finally:
                    await client.close()

        blob = asyncio.run(first_half())
        outcome = asyncio.run(second_half(blob))
        solo = solo_engine.run(QUERY, method="exsample", run_seed=2)
        assert_traces_identical(outcome.trace, solo.trace)

    def test_corrupt_checkpoint_is_rejected_typed(self):
        async def go(server, client):
            session = await client.submit(
                object="car", limit=5, pause_after=1
            )
            await session.wait()
            blob = bytearray(await session.checkpoint())
            # Flip a byte mid-blob: inside the pickled payload bytes, so
            # the outer envelope still decodes and the digest must catch it.
            blob[len(blob) // 2] ^= 0xFF
            with pytest.raises(QueryError, match="digest mismatch"):
                await client.restore(bytes(blob))

        asyncio.run(_with_server(go))


class TestEvictOverWire:
    def test_evict_drops_a_terminal_session_from_stats(self):
        """The checkpoint-cycle ghost case: a superseded incarnation is
        evicted and its sid stops resolving, without touching neighbours."""

        async def go(server, client):
            keeper = await client.submit(object="car", limit=2, run_seed=1)
            ghost = await client.submit(
                object="car", limit=5, run_seed=2, pause_after=1
            )
            await keeper.result()
            assert await ghost.wait() == "paused"
            before = (await client.stats())["submitted"]
            await ghost.evict()
            after = await client.stats()
            assert after["submitted"] == before - 1
            assert after["finished"] == 1  # the keeper's history survives
            with pytest.raises(ProtocolError, match="unknown sid"):
                await ghost.checkpoint()

        asyncio.run(_with_server(go))

    def test_evict_refuses_a_running_session(self):
        async def go(server, client):
            session = await client.submit(object="car", limit=50)
            with pytest.raises(QueryError, match="still running"):
                await session.evict()
            await session.pause()
            await session.wait()
            await session.evict()  # paused is terminal: now allowed

        asyncio.run(_with_server(go))


class TestServerShutdownOp:
    def test_shutdown_op_stops_the_server(self):
        async def go():
            server = NetServer(fresh_engine())
            await server.start()
            client = await FleetClient.connect("127.0.0.1", server.port)
            session = await client.submit(object="car", limit=2)
            await client.shutdown_server()
            await asyncio.wait_for(server.wait_closed(), timeout=10)
            # Graceful: the accepted session finished before the stop.
            assert await session.wait() == "finished"
            await client.close()

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Wire resilience: hostile frames, timeouts, retry/backoff, reconnect.
# ---------------------------------------------------------------------------


class TestWireResilience:
    def test_oversized_line_typed_error_not_disconnect(self):
        """A line past the limit gets an error frame; the stream stays
        framed and the next (well-formed) op on the same socket works."""

        async def go():
            async with NetServer(fresh_engine(), line_limit=1024) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    writer.write(b"x" * 4096 + b"\n")
                    writer.write(
                        json.dumps({"op": "ping", "rid": "after"}).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    first = json.loads(await reader.readline())
                    second = json.loads(await reader.readline())
                finally:
                    writer.close()
                return first, second, server.wire_errors

        first, second, wire_errors = asyncio.run(go())
        assert first["error"] == "ProtocolError"
        assert "line limit" in first["message"]
        assert second == {
            "rid": "after", "ok": True, "op": "ping",
            "protocol": PROTOCOL_VERSION, "draining": False,
        }
        assert wire_errors == 1

    def test_op_timeout_is_typed_and_retries_are_counted(self):
        """A server that never answers trips the per-op timeout; the
        retrying path re-issues the op per the policy, then gives up."""

        async def go():
            async def mute(reader, writer):
                await reader.read()  # swallow everything, answer nothing

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = await FleetClient.connect(
                    "127.0.0.1", port, op_timeout=0.05,
                    retry=RetryPolicy(attempts=3, base_delay=0.01,
                                      max_delay=0.02, jitter=0.0),
                )
                with pytest.raises(WireTimeoutError, match="timed out"):
                    await client.ping(retrying=False)
                with pytest.raises(WireTimeoutError):
                    await client.ping()  # retried, then surfaced
                retries = client.retries
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
            return retries

        # One non-retrying probe plus a 3-attempt retrying one: the two
        # re-issues after the first retried attempt are the retries.
        assert asyncio.run(go()) == 2

    def test_retrying_op_survives_a_dropped_connection(self):
        """An aborted transport fails in-flight ops, but an idempotent op
        reconnects under the retry policy and succeeds."""

        async def go(server, client):
            client._writer.transport.abort()
            stats = await client.stats()
            return stats, client.retries

        stats, retries = asyncio.run(_with_server(go))
        assert stats["submitted"] == 0
        assert retries >= 1

    def test_attach_resumes_a_session_after_reconnect(self, solo_engine):
        """A session survives its connection: reconnect + attach by gid
        delivers the terminal frame, outcome identical to solo."""

        async def go(server, client):
            session = await client.submit(
                object="car", limit=5, run_seed=3, wait=True
            )
            gid = session.gid
            assert gid is not None
            await client.reconnect()
            attached = await client.attach(gid)
            return await attached.result()

        outcome = asyncio.run(_with_server(go))
        solo = solo_engine.run(QUERY, method="exsample", run_seed=3)
        assert_traces_identical(outcome.trace, solo.trace)

    def test_attach_unknown_gid_is_typed(self):
        async def go(server, client):
            with pytest.raises(ProtocolError, match="unknown session gid"):
                await client.attach("g999")

        asyncio.run(_with_server(go))

    def test_corrupt_frame_fault_is_retried_through(self):
        """A scripted corrupt reply is skipped (counted) by the client's
        read loop and the op succeeds on retry."""

        async def go():
            async with NetServer(
                fresh_engine(),
                faults=[FaultSpec(kind="corrupt_frame", op="ping")],
            ) as server:
                client = await FleetClient.connect(
                    "127.0.0.1", server.port, op_timeout=0.2,
                    retry=RetryPolicy(attempts=3, base_delay=0.01,
                                      max_delay=0.02, jitter=0.0),
                )
                try:
                    response = await client.ping()
                    return response, client.wire_errors, client.retries

                finally:
                    await client.close()

        response, wire_errors, retries = asyncio.run(go())
        assert response["ok"] is True
        assert wire_errors >= 1
        assert retries >= 1
