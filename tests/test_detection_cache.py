"""Tests for detection memoization (DetectionCache) and its engine wiring.

The load-bearing property: detection is a pure function of
``(seed, video, frame)``, so a cache may change wall-clock time but never
any output — traces with the cache on must be byte-identical to traces with
it off, including through a session checkpoint/restore cycle (checkpoints
must not carry cache contents).
"""

import pickle

import pytest

from repro.detection.cache import DetectionCache, make_detection_cache
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.query.session import QuerySession

from tests.conftest import make_tiny_dataset


def _det_key(detection):
    return (
        detection.video,
        detection.frame,
        tuple(detection.box.as_array()),
        detection.class_name,
        detection.score,
        detection.instance_uid,
    )


def _trace_tuple(trace):
    return (
        trace.chunks.tolist(),
        trace.frames.tolist(),
        trace.d0s.tolist(),
        trace.d1s.tolist(),
        trace.costs.tolist(),
        [(r.video, r.frame, r.score, r.instance_uid) for r in trace.results],
    )


class TestDetectionCacheUnit:
    def test_hit_miss_counters(self):
        cache = DetectionCache()
        assert cache.get((0, 1, None)) is None
        cache.put((0, 1, None), ["a"])
        assert cache.get((0, 1, None)) == ["a"]
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.hit_rate == 0.5

    def test_get_returns_a_copy(self):
        cache = DetectionCache()
        cache.put((0, 0, None), [1, 2])
        got = cache.get((0, 0, None))
        got.append(3)
        assert cache.get((0, 0, None)) == [1, 2]

    def test_lru_evicts_least_recently_used(self):
        cache = DetectionCache(policy="lru", capacity=2)
        cache.put((0, 0, None), ["a"])
        cache.put((0, 1, None), ["b"])
        assert cache.get((0, 0, None)) == ["a"]  # touch 0 -> 1 is LRU
        cache.put((0, 2, None), ["c"])
        assert cache.get((0, 1, None)) is None
        assert cache.get((0, 0, None)) == ["a"]
        assert len(cache) == 2

    def test_clear_resets(self):
        cache = DetectionCache()
        cache.put((0, 0, None), [])
        cache.get((0, 0, None))
        cache.clear()
        assert len(cache) == 0
        assert cache.info().requests == 0

    def test_make_detection_cache_specs(self):
        assert make_detection_cache(None) is None
        assert make_detection_cache("off") is None
        assert make_detection_cache("unbounded").policy == "unbounded"
        lru = make_detection_cache("lru", capacity=7)
        assert (lru.policy, lru.capacity) == ("lru", 7)
        existing = DetectionCache()
        assert make_detection_cache(existing) is existing
        with pytest.raises(ConfigError):
            make_detection_cache("bogus")
        with pytest.raises(ConfigError):
            make_detection_cache(3.14)
        with pytest.raises(ConfigError):
            DetectionCache(policy="lru", capacity=0)

    def test_pickle_drops_contents_keeps_config(self):
        cache = DetectionCache(policy="lru", capacity=11)
        cache.put((0, 0, None), ["x"])
        cache.get((0, 0, None))
        revived = pickle.loads(pickle.dumps(cache))
        assert (revived.policy, revived.capacity) == ("lru", 11)
        assert len(revived) == 0
        assert revived.info().requests == 0


class TestPerScopeBreakdown:
    def test_per_scope_hits_and_misses(self):
        cache = DetectionCache()
        cache.get(("scopeA", 0, 1, None))  # miss
        cache.put(("scopeA", 0, 1, None), ["a"])
        cache.get(("scopeA", 0, 1, None))  # hit
        cache.get(("scopeB", 0, 1, None))  # miss (other detector)
        info = cache.cache_info()
        assert set(info.per_scope) == {"scopeA", "scopeB"}
        assert (info.per_scope["scopeA"].hits,
                info.per_scope["scopeA"].misses) == (1, 1)
        assert info.per_scope["scopeA"].hit_rate == 0.5
        assert (info.per_scope["scopeB"].hits,
                info.per_scope["scopeB"].misses) == (0, 1)
        # Totals equal the sum of the breakdown.
        assert info.hits == sum(s.hits for s in info.per_scope.values())
        assert info.misses == sum(s.misses for s in info.per_scope.values())

    def test_unscoped_keys_fall_under_empty_scope(self):
        cache = DetectionCache()
        cache.get((0, 1, None))
        info = cache.info()
        assert info.per_scope[""].misses == 1

    def test_contains_probe_leaves_counters_alone(self):
        cache = DetectionCache()
        cache.put(("s", 0, 1, None), ["a"])
        assert ("s", 0, 1, None) in cache
        assert ("s", 9, 9, None) not in cache
        info = cache.info()
        assert (info.hits, info.misses) == (0, 0)
        assert info.per_scope == {}

    def test_clear_and_pickle_reset_scope_counters(self):
        cache = DetectionCache()
        cache.get(("s", 0, 0, None))
        cache.clear()
        assert cache.info().per_scope == {}
        cache.get(("s", 0, 0, None))
        revived = pickle.loads(pickle.dumps(cache))
        assert revived.info().per_scope == {}

    def test_counters_consistent_under_interleaved_threads(self):
        """The satellite's safety requirement: threaded lookups never lose
        or double-count (the lock makes read-modify-write atomic)."""
        import threading

        cache = DetectionCache(policy="lru", capacity=64)
        per_thread = 500

        def worker(scope):
            for i in range(per_thread):
                key = (scope, 0, i % 8, None)
                if cache.get(key) is None:
                    cache.put(key, [i])

        threads = [
            threading.Thread(target=worker, args=(f"scope{t % 2}",))
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = cache.info()
        assert info.requests == 4 * per_thread
        assert sum(s.requests for s in info.per_scope.values()) == info.requests


class TestScopedKeys:
    """Every cache is scoped: one instance may serve several detectors."""

    def test_one_cache_shared_by_two_engines_never_collides(self):
        cache = DetectionCache()
        dataset_a = make_tiny_dataset(seed=0)
        dataset_b = make_tiny_dataset(seed=9)
        engine_a = QueryEngine(dataset_a, seed=0, detection_cache=cache)
        engine_b = QueryEngine(dataset_b, seed=9, detection_cache=cache)
        assert engine_a.detector.cache_scope() != engine_b.detector.cache_scope()
        frames = list(range(0, 400, 7))
        for engine, dataset, seed in (
            (engine_a, dataset_a, 0),
            (engine_b, dataset_b, 9),
        ):
            got = engine.detector.detect_batch([0] * len(frames), frames)
            reference = SimulatedDetector(dataset.world, seed=seed)
            want = reference.detect_batch([0] * len(frames), frames)
            assert [[_det_key(d) for d in ds] for ds in got] == [
                [_det_key(d) for d in ds] for ds in want
            ]

    def test_scope_is_stable_across_pickling(self):
        dataset = make_tiny_dataset(seed=3)
        detector = SimulatedDetector(dataset.world, seed=3)
        clone = pickle.loads(pickle.dumps(detector))
        assert clone.cache_scope() == detector.cache_scope()


class TestDetectorWithCache:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_tiny_dataset(seed=5)

    def test_cached_detections_identical(self, dataset):
        plain = SimulatedDetector(dataset.world, seed=3)
        cached = SimulatedDetector(dataset.world, seed=3, cache=DetectionCache())
        frames = list(range(0, 1200, 7))
        for _ in range(2):  # second pass: all hits
            for frame in frames:
                a = plain.detect(0, frame)
                b = cached.detect(0, frame)
                assert [_det_key(d) for d in a] == [_det_key(d) for d in b]
        assert cached.cache.hits == len(frames)

    def test_batch_mixed_hits_and_misses(self, dataset):
        cached = SimulatedDetector(dataset.world, seed=3, cache=DetectionCache())
        plain = SimulatedDetector(dataset.world, seed=3)
        warm = list(range(0, 300, 10))
        cached.detect_batch([0] * len(warm), warm)
        mixed = list(range(0, 600, 10))  # half warm, half cold
        got = cached.detect_batch([0] * len(mixed), mixed)
        want = plain.detect_batch([0] * len(mixed), mixed)
        for a, b in zip(want, got):
            assert [_det_key(d) for d in a] == [_det_key(d) for d in b]
        assert cached.cache.hits == len(warm)

    def test_class_filter_keyed_separately(self, dataset):
        cached = SimulatedDetector(dataset.world, seed=3, cache=DetectionCache())
        all_dets = cached.detect(0, 50)
        cars = cached.detect(0, 50, class_filter="car")
        assert cached.cache.misses == 2  # distinct keys
        assert [d for d in all_dets if d.class_name == "car"] == cars

    def test_duplicate_picks_in_one_batch_generate_once(self, dataset):
        """Duplicates within a batch share one lookup and one generation."""
        cached = SimulatedDetector(dataset.world, seed=3, cache=DetectionCache())
        plain = SimulatedDetector(dataset.world, seed=3)
        frames = [40, 41, 40, 42, 41, 40]
        got = cached.detect_batch([0] * len(frames), frames)
        want = plain.detect_batch([0] * len(frames), frames)
        for a, b in zip(want, got):
            assert [_det_key(d) for d in a] == [_det_key(d) for d in b]
        # Three distinct frames -> exactly three misses, zero double-counts.
        info = cached.cache.info()
        assert (info.misses, info.size) == (3, 3)
        # Duplicate outputs are independent lists (mutating one copy must
        # not alias another).
        assert got[0] is not got[2]

    def test_frames_processed_counts_requests(self, dataset):
        cached = SimulatedDetector(dataset.world, seed=3, cache=DetectionCache())
        cached.detect(0, 0)
        cached.detect(0, 0)
        assert cached.frames_processed == 2


class TestEngineCacheEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_tiny_dataset(seed=9)

    def test_trace_identical_cache_on_off(self, dataset):
        query = DistinctObjectQuery("car", limit=12)
        on = QueryEngine(dataset, seed=4, detection_cache="unbounded")
        off = QueryEngine(dataset, seed=4, detection_cache="off")
        assert off.cache_info() is None
        for method in ("exsample", "random"):
            t_on = on.run(query, method=method).trace
            t_off = off.run(query, method=method).trace
            assert _trace_tuple(t_on) == _trace_tuple(t_off)
        info = on.cache_info()
        assert info is not None and info.requests > 0

    def test_repeated_runs_hit_the_cache(self, dataset):
        engine = QueryEngine(dataset, seed=4)
        query = DistinctObjectQuery("car", limit=8)
        first = engine.run(query, method="exsample")
        hits_before = engine.cache_info().hits
        second = engine.run(query, method="exsample")
        assert _trace_tuple(first.trace) == _trace_tuple(second.trace)
        # The second identical run re-detects nothing.
        assert engine.cache_info().hits >= hits_before + second.trace.num_samples

    def test_lru_engine_spec(self, dataset):
        engine = QueryEngine(dataset, seed=4, detection_cache="lru")
        engine.run(DistinctObjectQuery("car", limit=3))
        assert engine.cache_info().policy == "lru"


class TestCheckpointDoesNotLeakCache:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_tiny_dataset(seed=11)

    def test_restore_starts_cold_and_finishes_identically(self, dataset):
        query = DistinctObjectQuery("car", limit=15)

        def fresh_session():
            engine = QueryEngine(dataset, seed=2, detection_cache="unbounded")
            return engine.session(query, method="exsample")

        # Uninterrupted reference run.
        reference = fresh_session().run_to_completion().trace

        # Warm the cache, checkpoint mid-run, restore in "another process".
        session = fresh_session()
        for _ in range(3):
            session.step()
        detector = session._run.searcher.env.detector
        assert detector.cache is not None and len(detector.cache) > 0
        blob = session.checkpoint()

        restored = QuerySession.restore(blob)
        restored_cache = restored._run.searcher.env.detector.cache
        # Same configuration, no smuggled contents or counters.
        assert restored_cache is not None
        assert restored_cache.policy == "unbounded"
        assert len(restored_cache) == 0
        assert restored_cache.info().requests == 0

        restored.run_to_completion()
        assert _trace_tuple(restored.trace()) == _trace_tuple(reference)

    def test_checkpoint_size_independent_of_cache_fill(self, dataset):
        query = DistinctObjectQuery("car", limit=15)
        engine = QueryEngine(dataset, seed=2, detection_cache="unbounded")
        session = engine.session(query, method="exsample")
        session.step()
        lean = len(session.checkpoint())
        # Stuff the shared cache with detections for many unrelated frames.
        engine.detector.detect_batch([0] * 400, list(range(400)))
        stuffed = len(session.checkpoint())
        assert stuffed <= lean * 1.05 + 1024


class TestSnapshotPersistence:
    """save()/load() round-trips: explicit, digest-checked, scope-pinned."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_tiny_dataset(seed=11)

    def _warm_engine(self, dataset, seed=2):
        engine = QueryEngine(dataset, seed=seed, detection_cache="unbounded")
        engine.run(DistinctObjectQuery("car", limit=5), method="exsample")
        return engine

    def test_snapshot_filters_by_scope(self):
        cache = DetectionCache()
        cache.put(("s1", 0, 1, None), ["a"])
        cache.put(("s2", 0, 1, None), ["b"])
        assert set(cache.snapshot()) == {("s1", 0, 1, None), ("s2", 0, 1, None)}
        assert set(cache.snapshot("s1")) == {("s1", 0, 1, None)}
        # Reading snapshots never perturbs the statistics.
        assert cache.info().requests == 0

    def test_save_load_round_trip(self, dataset, tmp_path):
        engine = self._warm_engine(dataset)
        cache = engine.detection_cache
        path = str(tmp_path / "cache.bin")
        written = cache.save(path)
        assert written == len(cache) > 0
        loaded = DetectionCache.load(path, detector=engine.detector)
        assert len(loaded) == len(cache)
        for key, value in cache.snapshot().items():
            assert [_det_key(d) for d in loaded.snapshot()[key]] == [
                _det_key(d) for d in value
            ]
        assert loaded.policy == cache.policy
        # No temp files left behind by the atomic write.
        assert [p.name for p in tmp_path.iterdir()] == ["cache.bin"]

    def test_loaded_cache_serves_a_fresh_engine(self, dataset, tmp_path):
        engine = self._warm_engine(dataset)
        path = str(tmp_path / "cache.bin")
        engine.detection_cache.save(path)
        fresh = QueryEngine(
            dataset,
            seed=2,
            detection_cache=DetectionCache.load(path),
        )
        reference = self._warm_engine(dataset).run(
            DistinctObjectQuery("car", limit=5), method="exsample"
        )
        outcome = fresh.run(DistinctObjectQuery("car", limit=5),
                            method="exsample")
        assert _trace_tuple(outcome.trace) == _trace_tuple(reference.trace)
        info = fresh.cache_info()
        assert info.hits > 0 and info.misses == 0

    def test_load_refuses_foreign_detector_scope(self, dataset, tmp_path):
        engine = self._warm_engine(dataset)
        path = str(tmp_path / "cache.bin")
        engine.detection_cache.save(path)
        other = QueryEngine(dataset, seed=9)  # different detector seed
        with pytest.raises(ConfigError, match="refusing to load"):
            DetectionCache.load(path, detector=other.detector)
        # Without a detector pin the load is allowed (scoped keys still
        # make the stale rows unreachable for any other detector).
        DetectionCache.load(path)

    def test_load_rejects_corruption_and_junk(self, dataset, tmp_path):
        engine = self._warm_engine(dataset)
        path = tmp_path / "cache.bin"
        engine.detection_cache.save(str(path))
        envelope = pickle.loads(path.read_bytes())
        payload = bytearray(envelope["payload"])
        payload[-3] ^= 0xFF  # flip a payload byte; digest now disagrees
        envelope["payload"] = bytes(payload)
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(pickle.dumps(envelope))
        with pytest.raises(ConfigError, match="digest"):
            DetectionCache.load(str(corrupt))
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"not a snapshot")
        with pytest.raises(ConfigError):
            DetectionCache.load(str(junk))
        versioned = tmp_path / "versioned.bin"
        versioned.write_bytes(pickle.dumps({"version": 99}))
        with pytest.raises(ConfigError, match="version"):
            DetectionCache.load(str(versioned))

    def test_lru_capacity_survives_round_trip(self, tmp_path):
        cache = DetectionCache(policy="lru", capacity=7)
        cache.put(("s", 0, 1, None), ["x"])
        path = str(tmp_path / "lru.bin")
        cache.save(path)
        loaded = DetectionCache.load(path)
        assert (loaded.policy, loaded.capacity) == ("lru", 7)
        assert len(loaded) == 1
