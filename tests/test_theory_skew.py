"""Tests for the Figure 6 skew metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.theory.skew import SkewSummary, half_cover_mask, k_half, skew_metric

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=64
).filter(lambda c: sum(c) > 0).map(lambda c: np.array(c))


class TestKHalf:
    def test_uniform_counts(self):
        assert k_half(np.full(10, 7)) == 5

    def test_single_dominant_chunk(self):
        counts = np.array([100, 1, 1, 1, 1])
        assert k_half(counts) == 1

    def test_all_in_one(self):
        counts = np.array([0, 50, 0, 0])
        assert k_half(counts) == 1

    def test_odd_uniform(self):
        # 3 chunks of 10: half of 30 is 15, needs 2 chunks.
        assert k_half(np.full(3, 10)) == 2

    @given(counts_arrays)
    @settings(max_examples=60)
    def test_bounds(self, counts):
        k = k_half(counts)
        nonzero = int(np.sum(counts > 0))
        assert 1 <= k <= nonzero

    @given(counts_arrays)
    @settings(max_examples=60)
    def test_actually_covers(self, counts):
        k = k_half(counts)
        top = np.sort(counts)[::-1][:k]
        assert top.sum() >= counts.sum() / 2 - 1e-9

    @given(counts_arrays)
    @settings(max_examples=60)
    def test_minimality(self, counts):
        k = k_half(counts)
        if k > 1:
            top = np.sort(counts)[::-1][: k - 1]
            assert top.sum() < counts.sum() / 2

    def test_rejects_empty_and_negative(self):
        with pytest.raises(DatasetError):
            k_half(np.array([]))
        with pytest.raises(DatasetError):
            k_half(np.array([-1, 5]))
        with pytest.raises(DatasetError):
            k_half(np.array([0, 0]))


class TestSkewMetric:
    def test_uniform_is_one(self):
        assert skew_metric(np.full(10, 3)) == pytest.approx(1.0)

    def test_maximum_concentration(self):
        counts = np.zeros(30)
        counts[0] = 100
        assert skew_metric(counts) == pytest.approx(15.0)

    def test_paper_exemplar_shape(self):
        """A dashcam-bicycle-like layout: ~30 chunks, half in one chunk."""
        counts = np.ones(29)
        counts[7] = 35  # > half of total
        s = skew_metric(counts)
        assert 13 <= s <= 15  # the paper labels S=14

    @given(counts_arrays)
    @settings(max_examples=60)
    def test_positive(self, counts):
        assert skew_metric(counts) > 0


class TestHalfCoverMask:
    def test_size_matches_k_half(self):
        counts = np.array([5, 1, 9, 2, 9])
        mask = half_cover_mask(counts)
        assert mask.sum() == k_half(counts)

    def test_covers_half(self):
        counts = np.array([5, 1, 9, 2, 9])
        mask = half_cover_mask(counts)
        assert counts[mask].sum() >= counts.sum() / 2


class TestSkewSummary:
    def test_from_counts(self):
        summary = SkewSummary.from_counts(np.array([10, 0, 0, 0]))
        assert summary.total_instances == 10
        assert summary.k_half == 1
        assert summary.skew == pytest.approx(2.0)

    def test_bar_chart_renders(self):
        summary = SkewSummary.from_counts(np.array([10, 2, 30, 1]))
        chart = summary.bar_chart()
        assert "N=43" in chart
        assert "S=" in chart
        assert "#" in chart
