"""Tests for the numeric theorem verification module."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.theory.bounds import (
    MarginReport,
    bias_margin_report,
    dataset_coverage_check,
    poisson_fit_report,
    variance_margin_report,
)
from repro.theory.instances import lognormal_probabilities
from repro.utils.rng import spawn_rng

from tests.conftest import make_tiny_dataset


class TestMarginReport:
    def test_holds(self):
        assert MarginReport(measured=0.5, bound=1.0).holds
        assert not MarginReport(measured=1.5, bound=1.0).holds

    def test_margin(self):
        assert MarginReport(measured=0.5, bound=1.0).margin == pytest.approx(2.0)
        assert MarginReport(measured=0.0, bound=1.0).margin == np.inf


class TestBiasMargins:
    def test_both_bounds_hold_on_lognormal_population(self):
        p = lognormal_probabilities(500, spawn_rng(0, "b"))
        for n in (10, 100, 1000):
            report = bias_margin_report(p, n)
            assert report["maxp_bound"].holds
            assert report["moments_bound"].holds
            assert report["relative_bias"] >= 0

    def test_bias_small_relative_to_estimate(self):
        """The theorem's point: the overestimate is small in practice."""
        p = lognormal_probabilities(1000, spawn_rng(1, "b"))
        report = bias_margin_report(p, 100)
        assert report["relative_bias"] < 0.2

    def test_rejects_degenerate(self):
        # p so large that (1-p)^(n-1) underflows: nothing is ever "seen
        # exactly once" at this n, so the estimate is identically zero.
        with pytest.raises(DatasetError):
            bias_margin_report(np.array([0.999]), 100_000)


class TestVarianceMargin:
    def test_bound_holds(self):
        p = spawn_rng(2, "v").uniform(0.002, 0.04, size=80)
        report = variance_margin_report(p, n=80, runs=4000, rng=spawn_rng(3, "v"))
        assert report.measured <= report.bound * 1.1  # MC tolerance

    def test_bound_not_vacuous(self):
        """The bound should be within ~an order of magnitude, not infinite."""
        p = spawn_rng(4, "v").uniform(0.002, 0.04, size=80)
        report = variance_margin_report(p, n=80, runs=4000, rng=spawn_rng(5, "v"))
        assert report.margin < 20


class TestPoissonFit:
    def test_good_fit_small_p_large_n(self):
        """The §III-B regime: the per-instance seen-exactly-once chance
        q = n·π(n) must be small. q ≈ np·e^(-np), so either np << 1 (here)
        or np >> 1 works; np ≈ 1 is the worst case (tested below)."""
        p = np.full(400, 0.004)
        report = poisson_fit_report(p, n=10, runs=60_000, rng=spawn_rng(6, "pf"))
        assert report["tv_distance"] < 0.06
        assert report["empirical_mean"] == pytest.approx(report["lambda"], rel=0.1)

    def test_good_fit_large_np(self):
        """The other end of the regime: np >> 1 (objects seen many times)."""
        p = np.full(400, 0.004)
        report = poisson_fit_report(
            p, n=2000, runs=60_000, rng=spawn_rng(16, "pf")
        )
        assert report["tv_distance"] < 0.06

    def test_fit_degrades_outside_regime(self):
        """The approximation breaks when the per-instance seen-exactly-once
        probability n·π(n) is large: N1 is Binomial with variance well below
        the Poisson's. p = 1/n maximises that probability (~0.38)."""
        n = 12
        small_p = np.full(60, 0.005)
        peak_p = np.full(60, 1.0 / n)
        rng = spawn_rng(7, "pf")
        good = poisson_fit_report(small_p, n, 30_000, rng)["tv_distance"]
        bad = poisson_fit_report(peak_p, n, 30_000, rng)["tv_distance"]
        assert bad > good * 2

    def test_variance_close_to_mean(self):
        """Poisson signature: Var[N1] ~ E[N1] (in the small-q regime)."""
        p = np.full(300, 0.006)
        report = poisson_fit_report(p, n=8, runs=30_000, rng=spawn_rng(8, "pf"))
        assert report["empirical_var"] == pytest.approx(
            report["empirical_mean"], rel=0.15
        )


class TestDatasetCoverage:
    def test_coverage_in_plausible_band(self):
        """§III-D: with co-occurring instances, coverage lands below the
        nominal 95% but stays informative (the paper saw ~80%)."""
        dataset = make_tiny_dataset(seed=14)
        coverage = dataset_coverage_check(
            dataset,
            checkpoints=np.array([20, 60, 150, 400]),
            runs=60,
            rng=spawn_rng(9, "dc"),
        )
        assert 0.4 <= coverage <= 1.0

    def test_more_conservative_z_raises_coverage(self):
        dataset = make_tiny_dataset(seed=14)
        rng_a = spawn_rng(10, "dc")
        rng_b = spawn_rng(10, "dc")
        narrow = dataset_coverage_check(
            dataset, np.array([30, 100]), runs=40, rng=rng_a, z=1.0
        )
        wide = dataset_coverage_check(
            dataset, np.array([30, 100]), runs=40, rng=rng_b, z=3.0
        )
        assert wide >= narrow
