"""Detector executors (repro.serving.executors) and batch pipelining.

The acceptance bar extends serving's: executors change *where* a fused
``detect_batch`` runs — inline on the loop, on a worker thread, in a
worker process — never *what* it computes. Every registered search
method must produce traces element-wise identical to solo ``engine.run``
under every executor; the lifecycle contract (drain/shutdown settle
in-flight detect futures before an owned pool is released), the
``pipeline_depth`` bound with its deferred-batch back-pressure, and the
assembly-time cache-hit attribution snapshot are each pinned here.

CI runs this module under both the fork and spawn start methods
(``REPRO_MP_CONTEXT``) and once more under ``PYTHONASYNCIODEBUG=1``; as
everywhere in the serving suites, each test drives a private loop via
``asyncio.run``.
"""

import asyncio
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core.registry import SEARCH_METHODS
from repro.errors import ConfigError, QueryError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.serving import (
    DetectorBatcher,
    ServerConfig,
    load_executor,
    make_executor,
    register_executor,
)
from repro.serving.executors import (
    DETECTOR_EXECUTORS,
    InlineDetectorExecutor,
    ProcessDetectorExecutor,
    ThreadDetectorExecutor,
    validate_executor_spec,
)
from repro.serving.fleet import FleetConfig
from repro.serving.policies import RoundRobinPolicy

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical

METHODS = list(SEARCH_METHODS)

QUERY = DistinctObjectQuery("car", limit=4)


def fresh_engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


@pytest.fixture(scope="module")
def thread_exec():
    """One thread pool shared by every test in the module.

    Passed as an *instance*, so servers never close it (ownership stays
    here) — exactly the multi-server sharing the ownership rule exists
    to allow.
    """
    executor = ThreadDetectorExecutor(max_workers=2)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def process_exec():
    executor = ProcessDetectorExecutor()
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def solo_outcomes():
    engine = fresh_engine()
    return {
        method: engine.run(QUERY, method=method, run_seed=i, batch_size=4)
        for i, method in enumerate(METHODS)
    }


class _GatedDetector:
    """Delegates to a real detector, but ``detect_batch`` blocks until
    released — the off-loop batch is provably *in flight* while the test
    pokes at drain/shutdown/back-pressure from the loop side."""

    def __init__(self, inner):
        self._inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def detect_batch(self, videos, frames, class_filter=None):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the gate"
        return self._inner.detect_batch(
            videos, frames, class_filter=class_filter
        )


class _Handle:
    def __init__(self, seq, tenant="t", num_samples=0, deadline=None):
        self.seq = seq
        self.tenant = tenant
        self.num_samples = num_samples
        self.deadline = deadline


async def _wait_event(event, timeout=10.0):
    ok = await asyncio.get_running_loop().run_in_executor(
        None, event.wait, timeout
    )
    assert ok, "gated detector never entered detect_batch"


async def _wait_until(predicate, timeout=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# The registry and spec strings.
# ---------------------------------------------------------------------------


class TestRegistryAndSpecs:
    def test_make_executor_resolves_specs(self):
        assert isinstance(make_executor(None), InlineDetectorExecutor)
        assert isinstance(make_executor("inline"), InlineDetectorExecutor)
        thread = make_executor("thread:3")
        assert isinstance(thread, ThreadDetectorExecutor)
        assert thread.max_workers == 3
        sized = make_executor("process:2")
        assert isinstance(sized, ProcessDetectorExecutor)
        assert sized.max_workers == 2
        spawned = make_executor("process:spawn")
        assert spawned.context == "spawn"

    def test_instances_pass_through_unwrapped(self, thread_exec):
        assert make_executor(thread_exec) is thread_exec

    def test_bad_specs_fail_eagerly(self):
        with pytest.raises(ConfigError, match="unknown detector executor"):
            validate_executor_spec("gpu")
        with pytest.raises(ConfigError, match="no argument"):
            make_executor("inline:2")
        with pytest.raises(ConfigError, match="worker count"):
            make_executor("thread:lots")
        with pytest.raises(ConfigError, match="start"):
            make_executor("process:sideways")
        with pytest.raises(ConfigError, match="executor must be"):
            validate_executor_spec(42)
        with pytest.raises(ConfigError, match="max_workers"):
            ThreadDetectorExecutor(max_workers=0)

    def test_server_config_validates_at_construction(self):
        with pytest.raises(ConfigError, match="unknown detector executor"):
            ServerConfig(executor="gpu")
        with pytest.raises(QueryError, match="pipeline_depth"):
            ServerConfig(pipeline_depth=0)

    def test_register_executor_plugin_point(self):
        """The documented GPU/ONNX seam: register a factory, resolve it
        everywhere a spec string is accepted."""

        class AcceleratorExecutor(ThreadDetectorExecutor):
            name = "accelerated"

        register_executor(
            "accelerated", lambda arg=None: AcceleratorExecutor()
        )
        try:
            assert isinstance(
                make_executor("accelerated"), AcceleratorExecutor
            )
            ServerConfig(executor="accelerated")  # validates
            with pytest.raises(ConfigError, match="already registered"):
                register_executor(
                    "accelerated", lambda arg=None: AcceleratorExecutor()
                )
        finally:
            del DETECTOR_EXECUTORS["accelerated"]

    def test_fleet_configs_require_spec_strings(self):
        with pytest.raises(ConfigError, match="spec string"):
            FleetConfig(
                server=ServerConfig(executor=ThreadDetectorExecutor())
            )

    def test_workload_file_executor_key(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(
            '{"executor": "thread:2", '
            '"queries": [{"object": "car", "limit": 2}]}'
        )
        assert load_executor(path) == "thread:2"
        bare = tmp_path / "bare.json"
        bare.write_text('[{"object": "car", "limit": 2}]')
        assert load_executor(bare) is None
        bad = tmp_path / "bad.json"
        bad.write_text('{"executor": "warp", "queries": []}')
        with pytest.raises(ConfigError, match="unknown detector executor"):
            load_executor(bad)


# ---------------------------------------------------------------------------
# Headline: outcomes identical to solo across every executor.
# ---------------------------------------------------------------------------


class TestExecutorIdentity:
    def _run_all_methods(self, executor):
        engine = fresh_engine()
        outcomes = engine.run_many(
            [QUERY] * len(METHODS),
            method=METHODS,
            run_seeds=list(range(len(METHODS))),
            batch_size=4,
            server_config=ServerConfig(executor=executor),
        )
        return engine, outcomes

    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_every_method_identical_to_solo(
        self, mode, thread_exec, process_exec, solo_outcomes
    ):
        executor = {
            "inline": "inline",
            "thread": thread_exec,
            "process": process_exec,
        }[mode]
        engine, outcomes = self._run_all_methods(executor)
        for method, outcome in zip(METHODS, outcomes, strict=True):
            assert_traces_identical(
                outcome.trace, solo_outcomes[method].trace
            )
        if mode != "inline":
            # The work genuinely went through the off-loop path.
            assert engine.detector.detect_calls > 0

    def test_spawned_process_executor_identical(self, solo_outcomes):
        """``process:spawn`` exercises pickling of the full task envelope
        (fork can lean on inherited memory; spawn cannot)."""
        engine = fresh_engine()
        outcomes = engine.run_many(
            [QUERY] * 2,
            method=["exsample", "random"],
            run_seeds=[METHODS.index("exsample"), METHODS.index("random")],
            batch_size=4,
            server_config=ServerConfig(executor="process:spawn"),
        )
        assert_traces_identical(
            outcomes[0].trace, solo_outcomes["exsample"].trace
        )
        assert_traces_identical(
            outcomes[1].trace, solo_outcomes["random"].trace
        )

    def test_pipelined_capacity_splits_identical(self, thread_exec):
        """Small batch cap + depth-1 pipeline: flushes split, batches
        defer, and none of it shows in the traces."""
        engine = fresh_engine()
        outcomes = engine.run_many(
            [QUERY] * 4,
            batch_size=4,
            server_config=ServerConfig(
                executor=thread_exec, max_batch_size=8, pipeline_depth=1
            ),
        )
        reference = fresh_engine()
        for i, outcome in enumerate(outcomes):
            solo = reference.run(QUERY, run_seed=i, batch_size=4)
            assert_traces_identical(outcome.trace, solo.trace)

    def test_stats_report_the_offloop_pipeline(self, thread_exec):
        engine = fresh_engine()

        async def go():
            server = engine.serve(executor=thread_exec)
            handles = [
                await server.submit(QUERY, run_seed=i, batch_size=4)
                for i in range(3)
            ]
            for handle in handles:
                await handle.result()
            await server.drain()
            return server.stats()

        stats = asyncio.run(go())
        assert stats.executor == "thread(workers=2)"
        assert "executor: thread(workers=2)" in stats.describe()
        assert stats.batcher.dispatched_batches >= 1
        assert stats.batcher.offloop_busy_s > 0.0
        from repro.serving.net import stats_to_jsonable

        payload = stats_to_jsonable(stats)
        assert payload["executor"] == "thread(workers=2)"
        assert (
            payload["batcher"]["dispatched_batches"]
            == stats.batcher.dispatched_batches
        )


# ---------------------------------------------------------------------------
# Lifecycle: drain and shutdown settle in-flight detect futures.
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_drain_waits_for_in_flight_batch(self):
        engine = fresh_engine()
        gated = _GatedDetector(engine.detector)
        engine.detector = gated

        async def go():
            server = engine.serve(executor="thread", flush_latency=0.001)
            handle = await server.submit(QUERY, run_seed=0, batch_size=4)
            await _wait_event(gated.entered)
            drainer = asyncio.create_task(server.drain_gracefully())
            await asyncio.sleep(0.05)
            assert not drainer.done()  # parked behind the gated batch
            gated.release.set()
            await drainer
            assert handle.state == "finished"
            assert server.stats().batcher.dispatched_batches >= 1
            # drain_gracefully closed the owned executor's pool.
            assert server.executor._pool is None

        asyncio.run(go())

    def test_shutdown_settles_in_flight_future_before_closing(self):
        engine = fresh_engine()
        gated = _GatedDetector(engine.detector)
        engine.detector = gated

        async def go():
            server = engine.serve(executor="thread", flush_latency=0.001)
            handle = await server.submit(QUERY, run_seed=0, batch_size=4)
            await _wait_event(gated.entered)
            stopper = asyncio.create_task(server.shutdown())
            await asyncio.sleep(0.05)
            # Sessions are cancelled immediately, but the executor future
            # is still running on its worker; shutdown must wait it out
            # rather than yanking the pool from under it.
            assert not stopper.done()
            gated.release.set()
            await stopper
            # Shutdown's house style: cancelled sessions report "failed"
            # with a shutdown error (or won the race and finished).
            assert handle.state in ("failed", "finished")
            if handle.state == "failed":
                assert "shutdown" in str(handle.error)
            assert server.executor._pool is None

        asyncio.run(go())

    def test_orphaned_pool_workers_exit(self):
        """Regression: a pool owner killed with SIGKILL (the chaos
        harness's shard kill) cannot shut its pool down, and under fork
        the orphaned workers used to block on the call queue forever —
        holding every inherited descriptor open. The worker-side orphan
        watch must make them exit on their own within its poll period."""
        script = (
            "import os, sys, time\n"
            "from repro.serving.executors import ProcessDetectorExecutor\n"
            "executor = ProcessDetectorExecutor()\n"
            "pool = executor._ensure_pool()\n"
            "print(pool.submit(os.getpid).result(), flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        owner = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True,
            env=env,
        )
        try:
            worker_pid = int(owner.stdout.readline())
            owner.kill()  # SIGKILL: no chance to shut the pool down
            owner.wait(timeout=10)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(worker_pid, 0)
                except ProcessLookupError:
                    return  # the orphan noticed and exited
                time.sleep(0.1)
            os.kill(worker_pid, 9)  # clean up before failing
            raise AssertionError(
                f"orphaned pool worker {worker_pid} outlived its owner"
            )
        finally:
            owner.stdout.close()
            if owner.poll() is None:
                owner.kill()

    def test_passed_in_instances_survive_server_close(self, thread_exec):
        engine = fresh_engine()

        async def go():
            for run_seed in (0, 1):  # two servers, one shared pool
                server = engine.serve(executor=thread_exec)
                handle = await server.submit(
                    QUERY, run_seed=run_seed, batch_size=4
                )
                await handle.result()
                await server.drain_gracefully()
            assert thread_exec._pool is not None  # still ours, still warm

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Back-pressure and the assembly-time attribution snapshot.
# ---------------------------------------------------------------------------


class TestPipelining:
    def test_pipeline_depth_bounds_in_flight_and_defers(self):
        engine = fresh_engine()
        gated = _GatedDetector(engine.detector)
        executor = ThreadDetectorExecutor(max_workers=4)

        async def go():
            batcher = DetectorBatcher(
                RoundRobinPolicy(),
                max_batch_size=2,
                flush_latency=0.001,
                executor=executor,
                pipeline_depth=1,
            )
            env = engine.environment("car", run_seed=0)
            requests = [
                env.propose_batch([(0, 2 * i), (0, 2 * i + 1)])
                for i in range(4)
            ]
            # Each request alone reaches the 2-frame cap: four
            # single-request batches. Depth 1 admits one; three defer.
            tasks = [
                asyncio.create_task(
                    batcher.detect(gated, request, _Handle(seq=i))
                )
                for i, request in enumerate(requests)
            ]
            await _wait_event(gated.entered)
            await asyncio.sleep(0.02)
            assert batcher.stats.peak_in_flight == 1
            assert batcher.stats.deferred_batches == 3
            gated.release.set()
            results = await asyncio.gather(*tasks)
            await batcher.settle()
            assert batcher.stats.dispatched_batches == 4
            assert batcher.stats.peak_in_flight == 1
            assert batcher.stats.detector_calls == 4
            # Deferral reordered nothing: each future got its own frames.
            reference = fresh_engine().environment("car", run_seed=0)
            for request, result in zip(requests, results, strict=True):
                expected = reference.detect_request(
                    reference.propose_batch(request.picks)
                )
                assert result == expected
            await executor.aclose()

        asyncio.run(go())

    def test_cache_hit_attribution_snapshots_at_assembly(self):
        """Regression: with two batches of the *same* frames in flight
        concurrently, the tenant whose batch was assembled before the
        other's results landed must not be credited those hits. The
        snapshot is taken when composition freezes, so executor timing
        cannot leak one batch's landing into another's attribution."""
        engine = fresh_engine()
        gated = _GatedDetector(engine.detector)
        executor = ThreadDetectorExecutor(max_workers=2)

        async def go():
            batcher = DetectorBatcher(
                RoundRobinPolicy(),
                max_batch_size=2,
                flush_latency=0.001,
                executor=executor,
                pipeline_depth=2,
            )
            env = engine.environment("car", run_seed=0)
            picks = [(0, 0), (0, 1)]
            first = asyncio.create_task(
                batcher.detect(
                    gated, env.propose_batch(picks), _Handle(0, tenant="a")
                )
            )
            await _wait_event(gated.entered)
            second = asyncio.create_task(
                batcher.detect(
                    gated, env.propose_batch(picks), _Handle(1, tenant="b")
                )
            )
            await _wait_until(
                lambda: batcher.stats.dispatched_batches == 2
            )
            gated.release.set()
            await asyncio.gather(first, second)
            await batcher.settle()
            # Both batches were assembled before either landed: neither
            # tenant saw a warm cache, whatever order they completed in.
            assert batcher.stats.tenant_cache_hits.get("a", 0) == 0
            assert batcher.stats.tenant_cache_hits.get("b", 0) == 0
            # A request assembled *after* the landings is a genuine hit.
            await batcher.detect(
                gated, env.propose_batch(picks), _Handle(2, tenant="c")
            )
            await batcher.settle()
            assert batcher.stats.tenant_cache_hits.get("c") == len(picks)
            await executor.aclose()

        asyncio.run(go())

    def test_executor_failure_lands_on_the_awaiters(self):
        class ExplodingDetector:
            cache = None

            def detect_batch(self, videos, frames, class_filter=None):
                raise RuntimeError("GPU on fire")

        engine = fresh_engine()
        executor = ThreadDetectorExecutor()

        async def go():
            batcher = DetectorBatcher(
                RoundRobinPolicy(), flush_latency=0.001, executor=executor
            )
            env = engine.environment("car", run_seed=0)
            request = env.propose_batch([(0, 0)])
            with pytest.raises(RuntimeError, match="GPU on fire"):
                await batcher.detect(ExplodingDetector(), request, _Handle(0))
            await batcher.settle()
            await executor.aclose()

        asyncio.run(go())
