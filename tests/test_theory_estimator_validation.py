"""Tests for the Figure 2 validation machinery."""

import numpy as np
import pytest

from repro.theory.coin_sim import RunTuples, simulate_many_runs
from repro.theory.estimator_validation import (
    PAPER_FIGURE2_CELLS,
    bias_profile,
    cell_report,
    populated_cells,
    variance_bound_coverage,
)
from repro.theory.instances import lognormal_probabilities
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def harvest():
    p = lognormal_probabilities(300, spawn_rng(20, "ev"))
    checkpoints = np.unique(
        np.geomspace(10, 20_000, num=16).astype(np.int64)
    )
    return simulate_many_runs(p, checkpoints, 300, spawn_rng(21, "ev"))


class TestPaperCells:
    def test_six_cells_declared(self):
        assert len(PAPER_FIGURE2_CELLS) == 6
        # The paper's extreme cells are present.
        assert (179601, 0) in PAPER_FIGURE2_CELLS
        assert (82, 127) in PAPER_FIGURE2_CELLS


class TestCellReport:
    def test_returns_none_for_empty_cell(self, harvest):
        assert cell_report(harvest, n=10, n1=9999) is None

    def test_populated_cell_fields(self, harvest):
        cells = populated_cells(harvest, num_cells=4)
        assert cells
        n, n1 = cells[0]
        report = cell_report(harvest, n, n1)
        assert report is not None
        assert report.observations > 0
        assert report.belief_mean > 0
        assert 0.0 <= report.belief_coverage_95 <= 1.0
        assert report.point_estimate == pytest.approx(n1 / n)

    def test_belief_overestimates_on_average(self, harvest):
        """Thm III.2: the belief/point estimate sits at or above the truth
        (in expectation; allow slack per-cell)."""
        ratios = []
        for n, n1 in populated_cells(harvest, num_cells=6):
            report = cell_report(harvest, n, n1)
            if report is not None and report.true_mean > 0:
                ratios.append(report.mean_ratio)
        assert ratios
        assert np.median(ratios) > 0.7  # never wildly under

    def test_custom_priors_shift_belief(self, harvest):
        cells = populated_cells(harvest, num_cells=3)
        n, n1 = cells[-1]
        small = cell_report(harvest, n, n1, alpha0=0.01)
        large = cell_report(harvest, n, n1, alpha0=5.0)
        assert large.belief_mean > small.belief_mean


class TestPopulatedCells:
    def test_spans_orders_of_magnitude(self, harvest):
        cells = populated_cells(harvest, num_cells=6)
        ns = [n for n, _ in cells]
        assert max(ns) / max(min(ns), 1) > 50

    def test_unique(self, harvest):
        cells = populated_cells(harvest, num_cells=6)
        assert len(cells) == len(set(cells))

    def test_empty_harvest(self):
        empty = RunTuples(
            n=np.array([], dtype=np.int64),
            n1=np.array([], dtype=np.int64),
            r_next=np.array([]),
        )
        assert populated_cells(empty) == []


class TestCoverageAndBias:
    def test_coverage_bounded(self, harvest):
        coverage = variance_bound_coverage(harvest)
        assert 0.0 <= coverage <= 1.0
        assert coverage > 0.5  # the bound is informative, not vacuous

    def test_wider_z_more_coverage(self, harvest):
        assert variance_bound_coverage(harvest, z=3.0) >= variance_bound_coverage(
            harvest, z=1.0
        )

    def test_bias_profile_entries(self, harvest):
        # Probe at n values that actually exist in the harvest grid.
        probes = np.unique(harvest.n)[::4]
        rows = bias_profile(harvest, probes.tolist())
        assert len(rows) >= 2
        for n, bias, estimate in rows:
            assert estimate >= 0
            # Bias is tiny relative to the estimate at mid-range n.
            if n >= 100 and estimate > 0:
                assert abs(bias) < max(0.5 * estimate, 0.05)
