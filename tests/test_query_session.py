"""The resumable streaming QuerySession API (repro.query.session).

The acceptance bar for the redesign: for every registered method,
checkpoint-at-arbitrary-step → restore → finish must produce a SearchTrace
identical — chunks, frames, d0s/d1s, costs, results — to an uninterrupted
run, and ``QueryEngine.run`` must behave exactly like a session driven to
completion.
"""

import numpy as np
import pytest

from repro.core.environment import CallbackEnvironment, Observation
from repro.core.registry import SEARCH_METHODS
from repro.core.sampler import ExSampleSearcher, SearchRun
from repro.errors import QueryError
from repro.query.engine import QueryEngine
from repro.query.query import DistinctObjectQuery
from repro.query.session import (
    BudgetExhausted,
    QuerySession,
    ResultFound,
    SampleBatch,
)

from tests.conftest import make_tiny_dataset


def assert_traces_identical(a, b):
    assert np.array_equal(a.chunks, b.chunks)
    assert np.array_equal(a.frames, b.frames)
    assert np.array_equal(a.d0s, b.d0s)
    assert np.array_equal(a.d1s, b.d1s)
    assert np.array_equal(a.costs, b.costs)
    assert a.results == b.results
    assert a.upfront_cost == b.upfront_cost
    assert a.searcher == b.searcher


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_tiny_dataset(seed=11), seed=11)


QUERY = DistinctObjectQuery("car", limit=6)


class TestStreamEvents:
    def test_event_sequence_shape(self, engine):
        session = engine.session(QUERY, method="exsample", batch_size=4)
        events = list(session.stream())
        assert isinstance(events[-1], BudgetExhausted)
        assert events[-1].reason == "result_limit"
        assert sum(isinstance(e, BudgetExhausted) for e in events) == 1
        results = [e for e in events if isinstance(e, ResultFound)]
        assert len(results) == events[-1].num_results >= 6
        # Cumulative counters are monotonic and result numbering is dense.
        assert [e.num_results for e in results] == list(
            range(1, len(results) + 1)
        )
        batches = [e for e in events if isinstance(e, SampleBatch)]
        assert all(
            a.num_samples < b.num_samples for a, b in zip(batches, batches[1:])
        )
        assert batches[-1].num_samples == events[-1].num_samples

    def test_results_found_mid_batch_precede_their_batch_event(self, engine):
        session = engine.session(QUERY, method="exsample", batch_size=4)
        seen_samples = 0
        for event in session.stream():
            if isinstance(event, ResultFound):
                # Discovered at or before the batch frontier that follows.
                assert event.sample_index > seen_samples
            elif isinstance(event, SampleBatch):
                seen_samples = event.num_samples

    def test_stream_matches_blocking_run(self, engine):
        session = engine.session(QUERY, method="exsample", batch_size=4)
        for _ in session.stream():
            pass
        blocking = engine.run(QUERY, method="exsample", batch_size=4)
        assert_traces_identical(session.trace(), blocking.trace)
        assert session.outcome().num_results == blocking.num_results

    def test_pause_suspends_and_stream_resumes_losslessly(self, engine):
        reference = list(
            engine.session(QUERY, method="exsample", batch_size=4).stream()
        )
        session = engine.session(QUERY, method="exsample", batch_size=4)
        collected = []
        while not (session.finished and not session._pending):
            for event in session.stream():
                collected.append(event)
                session.pause()  # stop after every single event
            if collected and isinstance(collected[-1], BudgetExhausted):
                break
        assert collected == reference

    def test_step_returns_events_and_drains(self, engine):
        session = engine.session(QUERY, method="random", batch_size=8)
        all_events = []
        while not session.finished:
            all_events.extend(session.step())
        assert isinstance(all_events[-1], BudgetExhausted)
        assert session.step() == []


class TestCheckpointRestore:
    @pytest.mark.parametrize("method", tuple(SEARCH_METHODS))
    @pytest.mark.parametrize("cut_after", [1, 4, 11])
    def test_restore_finishes_byte_identical(self, engine, method, cut_after):
        """The acceptance criterion, for every registered method."""
        reference = engine.run(
            QUERY, method=method, run_seed=2, batch_size=3
        ).trace
        session = engine.session(QUERY, method=method, run_seed=2, batch_size=3)
        consumed = 0
        for _ in session.stream():
            consumed += 1
            if consumed >= cut_after:
                session.pause()
        blob = session.checkpoint()
        restored = QuerySession.restore(blob)
        assert restored.method == method
        assert restored.query == QUERY
        for _ in restored.stream():
            pass
        assert restored.finished
        assert_traces_identical(reference, restored.trace())

    @pytest.mark.parametrize("method", tuple(SEARCH_METHODS))
    def test_restored_session_continues_event_stream(self, engine, method):
        """Events after restore continue the uninterrupted event sequence."""
        reference = list(
            engine.session(QUERY, method=method, run_seed=3, batch_size=5).stream()
        )
        session = engine.session(QUERY, method=method, run_seed=3, batch_size=5)
        collected = []
        for event in session.stream():
            collected.append(event)
            if len(collected) == 2:
                session.pause()
        restored = QuerySession.restore(session.checkpoint())
        collected.extend(restored.stream())
        assert collected == reference

    def test_checkpoint_to_disk_roundtrip(self, engine, tmp_path):
        path = tmp_path / "session.ckpt"
        reference = engine.run(QUERY, method="exsample", batch_size=4).trace
        session = engine.session(QUERY, method="exsample", batch_size=4)
        for _ in session.stream():
            session.pause()
        blob = session.checkpoint(str(path))
        assert path.read_bytes() == blob
        restored = QuerySession.restore(str(path))
        for _ in restored.stream():
            pass
        assert_traces_identical(reference, restored.trace())

    def test_checkpoint_of_finished_session_restores_finished(self, engine):
        session = engine.session(QUERY, method="random")
        for _ in session.stream():
            pass
        restored = QuerySession.restore(session.checkpoint())
        assert restored.finished
        assert list(restored.stream()) == []
        assert_traces_identical(session.trace(), restored.trace())

    def test_restore_rejects_garbage(self, tmp_path):
        with pytest.raises(QueryError):
            QuerySession.restore(b"not a checkpoint")
        with pytest.raises(QueryError):
            QuerySession.restore(
                __import__("pickle").dumps({"something": "else"})
            )

    def test_restore_rejects_future_version(self):
        import pickle

        blob = pickle.dumps({"version": 999})
        with pytest.raises(QueryError, match="version"):
            QuerySession.restore(blob)


class TestCheckpointEnvelope:
    """The v2 envelope: digest-verified payload plus peekable metadata."""

    def _paused_session(self, engine):
        session = engine.session(QUERY, method="exsample", run_seed=5)
        for _ in session.stream():
            session.pause()
        return session

    def test_v2_envelope_structure(self, engine):
        import hashlib
        import pickle

        blob = self._paused_session(engine).checkpoint()
        envelope = pickle.loads(blob)
        assert envelope["version"] == 2
        assert set(envelope) == {"version", "meta", "digest", "payload"}
        assert set(envelope["meta"]) == {
            "method", "num_samples", "num_results", "total_cost",
        }
        assert isinstance(envelope["payload"], bytes)
        assert envelope["digest"] == hashlib.blake2b(
            envelope["payload"], digest_size=16
        ).hexdigest()

    def test_peek_matches_session_counters(self, engine):
        from repro.query.session import peek_checkpoint

        session = self._paused_session(engine)
        blob = session.checkpoint()
        info = peek_checkpoint(blob)
        assert info.version == 2
        assert info.method == "exsample"
        assert info.num_samples == session.num_samples
        assert info.num_results == session.num_results
        assert info.total_cost == session.total_cost
        assert info.payload_bytes > 0
        assert info.payload_bytes < len(blob)

    def test_corrupted_payload_is_caught_by_digest(self, engine):
        from repro.query.session import peek_checkpoint

        blob = bytearray(self._paused_session(engine).checkpoint())
        # Flip one bit mid-blob: inside the payload bytes, so the outer
        # envelope still decodes and only the digest can catch it.
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(QueryError, match="digest mismatch"):
            QuerySession.restore(bytes(blob))
        # peek verifies before any restore attempt, too.
        with pytest.raises(QueryError, match="digest mismatch"):
            peek_checkpoint(bytes(blob))

    def test_v1_flat_checkpoints_restore_but_do_not_peek(self, engine):
        """Blobs written before the envelope existed keep loading."""
        import pickle

        from repro.query.session import peek_checkpoint

        reference = engine.run(
            QUERY, method="exsample", run_seed=5
        ).trace
        session = self._paused_session(engine)
        v1_blob = pickle.dumps(
            {
                "version": 1,
                "query": session.query,
                "method": session.method,
                "gt_count": session.gt_count,
                "run": session._run,
                "pending": list(session._pending),
                "end_emitted": session._end_emitted,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        restored = QuerySession.restore(v1_blob)
        for _ in restored.stream():
            pass
        assert_traces_identical(reference, restored.trace())
        with pytest.raises(QueryError, match="v1"):
            peek_checkpoint(v1_blob)


class TestSearchRunStandalone:
    """SearchRun works over any environment, without an engine."""

    @staticmethod
    def _hit_env(sizes, modulus=5):
        def observe(chunk, frame):
            found = int((chunk * 991 + frame) % modulus == 0)
            return Observation(
                d0=found, d1=0, results=[chunk * 10_000 + frame] * found, cost=1.0
            )

        return CallbackEnvironment(sizes, observe)

    def test_begin_step_matches_run(self):
        searcher_a = ExSampleSearcher(self._hit_env([60, 60]), rng=1)
        trace_a = searcher_a.run(result_limit=5)
        searcher_b = ExSampleSearcher(self._hit_env([60, 60]), rng=1)
        run = searcher_b.begin(result_limit=5)
        steps = 0
        while not run.finished:
            run.step()
            steps += 1
        assert steps >= 1
        assert run.reason == "result_limit"
        assert_traces_identical(trace_a, run.trace())

    def test_exhaustion_reason(self):
        searcher = ExSampleSearcher(self._hit_env([10, 10]), rng=0)
        run = searcher.begin(result_limit=10_000)
        while not run.finished:
            run.step()
        assert run.reason == "exhausted"
        assert run.num_samples == 20

    def test_frame_budget_and_cost_budget_reasons(self):
        searcher = ExSampleSearcher(self._hit_env([50, 50]), rng=0)
        run = searcher.begin(frame_budget=7)
        while not run.finished:
            run.step()
        assert run.reason == "frame_budget"
        assert run.num_samples == 7

        searcher = ExSampleSearcher(self._hit_env([50, 50]), rng=0)
        run = searcher.begin(cost_budget=4.5)
        while not run.finished:
            run.step()
        assert run.reason == "cost_budget"
        assert run.total_cost >= 4.5

    def test_step_after_finish_is_a_noop(self):
        searcher = ExSampleSearcher(self._hit_env([10, 10]), rng=0)
        run = searcher.begin(frame_budget=3)
        while not run.finished:
            run.step()
        before = run.num_samples
        step = run.step()
        assert step.finished and step.picks == []
        assert run.num_samples == before

    def test_session_without_query_has_no_outcome(self):
        searcher = ExSampleSearcher(self._hit_env([10, 10]), rng=0)
        session = QuerySession(SearchRun(searcher, frame_budget=5))
        for _ in session.stream():
            pass
        assert session.trace().num_samples == 5
        with pytest.raises(QueryError, match="no query"):
            session.outcome()


class TestRunMany:
    def test_round_robin_matches_solo_runs(self, engine):
        queries = [
            DistinctObjectQuery("car", limit=4),
            DistinctObjectQuery("bicycle", limit=3),
            DistinctObjectQuery("dog", limit=2),
        ]
        outcomes = engine.run_many(queries, method="exsample", batch_size=4)
        for seed, (query, outcome) in enumerate(zip(queries, outcomes)):
            solo = engine.run(
                query, method="exsample", run_seed=seed, batch_size=4
            )
            assert_traces_identical(outcome.trace, solo.trace)

    def test_mixed_methods_per_query(self, engine):
        queries = [
            DistinctObjectQuery("car", limit=3),
            DistinctObjectQuery("car", limit=3),
        ]
        outcomes = engine.run_many(queries, method=["exsample", "random"])
        assert [o.method for o in outcomes] == ["exsample", "random"]
        for outcome in outcomes:
            assert outcome.num_results >= 3

    def test_misaligned_arguments_rejected(self, engine):
        queries = [DistinctObjectQuery("car", limit=2)]
        with pytest.raises(QueryError, match="methods"):
            engine.run_many(queries, method=["exsample", "random"])
        with pytest.raises(QueryError, match="run_seeds"):
            engine.run_many(queries, run_seeds=[0, 1])


class TestEngineRunParity:
    """engine.run is now a session wrapper; its semantics must not move."""

    def test_recall_target_uses_distinct_real_limit(self, engine):
        outcome = engine.run(
            DistinctObjectQuery("car", recall_target=0.2, frame_budget=2400),
            method="exsample",
        )
        gt = engine.dataset.gt_count("car")
        assert outcome.trace.num_samples <= 2400
        # the unique-real stop must have been reachable
        assert outcome.gt_count == gt

    def test_unknown_class_still_raises(self, engine):
        with pytest.raises(QueryError, match="not in dataset"):
            engine.run(DistinctObjectQuery("submarine", limit=1))
