"""Fault tolerance of the serving fleet (supervision + chaos harness).

The acceptance bar: a fleet that loses a shard process mid-search — by
SIGKILL, by a wedged event loop, even mid-migration — must finish the
workload with outcomes *byte-identical* to solo ``engine.run`` calls,
redoing at most ``checkpoint_every`` steps per recovered session. Faults
are injected declaratively (:mod:`repro.serving.faults`) so every
scenario here is reproducible, and every test asserts the fleet's
children are gone afterwards: shutdown must always return with no
zombies, however ugly the failure.

CI runs this module under both the fork and spawn start methods (the
``chaos`` job sets ``REPRO_MP_CONTEXT``); locally it uses the platform
default.
"""

import asyncio
import multiprocessing
import time

import pytest

from repro.core.registry import SEARCH_METHODS
from repro.errors import FleetDegradedError, ShardLostError
from repro.query.engine import QueryEngine
from repro.serving import ServerConfig
from repro.serving.faults import FaultPlan, FaultSpec, load_faults
from repro.serving.fleet import FleetConfig, FleetRouter, replay_fleet
from repro.serving.workload import WorkloadItem

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical

METHODS = list(SEARCH_METHODS)

ALL_METHOD_ITEMS = [
    WorkloadItem(
        object="car",
        limit=4,
        method=method,
        run_seed=index,
        tenant=f"tenant-{index % 3}",
    )
    for index, method in enumerate(METHODS)
]

#: Supervision tuned for tests: fast heartbeats, fast verdicts.
FAST_BEAT = dict(
    heartbeat_interval=0.05,
    heartbeat_timeout=0.25,
    missed_heartbeats=2,
    op_timeout=5.0,
)


@pytest.fixture(autouse=True)
def no_leaked_shards():
    """Every test must leave zero live shard children behind."""
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard")
        ]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked shard processes: {leaked}")


@pytest.fixture(scope="module")
def solo_outcomes():
    engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
    return {
        (item.method, item.run_seed): engine.run(
            item.query(), method=item.method, run_seed=item.run_seed
        )
        for item in ALL_METHOD_ITEMS
    }


async def _launch(dataset, **overrides):
    engine_seed = overrides.pop("engine_seed", 11)
    config = FleetConfig(**overrides)
    return await FleetRouter.launch(
        dataset, config=config, engine_seed=engine_seed
    )


# ---------------------------------------------------------------------------
# The fault plan itself (pure declarative layer, no processes).
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(ConfigError, match="after_steps"):
            FaultSpec(kind="kill", after_steps=0)
        with pytest.raises(ConfigError, match="unknown fault fields"):
            FaultSpec.from_json({"kind": "kill", "when": "now"})

    def test_plan_shard_scoping_and_relaunch_pruning(self):
        plan = FaultPlan((
            FaultSpec(kind="kill", shard=0, after_steps=3),
            FaultSpec(kind="drop_frame", op="samples", repeat=True),
        ))
        assert len(plan.for_shard(0)) == 2
        assert len(plan.for_shard(1)) == 1  # shard=None arms everywhere
        # A relaunched shard 0 only re-arms repeat=True specs — a
        # scripted crash must not become a crash loop.
        assert [s.kind for s in plan.surviving_relaunch(0)] == ["drop_frame"]

    def test_load_faults_from_workload_file(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(
            '{"queries": [{"object": "car", "limit": 2}], '
            '"faults": [{"kind": "kill", "shard": 1, "after_steps": 4}]}'
        )
        plan = load_faults(path)
        assert plan is not None and len(plan) == 1
        assert plan.specs[0].shard == 1
        bare = tmp_path / "bare.json"
        bare.write_text('[{"object": "car", "limit": 2}]')
        assert load_faults(bare) is None


# ---------------------------------------------------------------------------
# Headline: mid-search SIGKILL, byte-identical recovery, every method.
# ---------------------------------------------------------------------------


class TestKillRecoveryIdentity:
    def test_all_methods_survive_a_mid_search_kill(self, solo_outcomes):
        """Shard 0 is SIGKILLed while sessions of all 7 methods are in
        flight; supervision relaunches it and resumes its sessions from
        their checkpoints (or scratch). Every outcome must still be
        element-wise identical to its solo reference."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(
                dataset,
                n_shards=2,
                checkpoint_every=2,
                faults=FaultPlan((
                    FaultSpec(kind="kill", shard=0, after_steps=4),
                )),
                **FAST_BEAT,
            )
            try:
                handles = await replay_fleet(
                    router, ALL_METHOD_ITEMS, time_scale=0.0
                )
                outcomes = [await h.result() for h in handles]
                # The sessions can all finish (recovered onto the
                # survivor) before the monitor's relaunch of the corpse
                # completes; wait for the restart rather than racing it.
                # Relaunching a shard under the spawn start method on a
                # loaded machine can take many seconds; the deadline is
                # generous because only its expiry fails the test.
                for _ in range(300):
                    stats = await router.stats()
                    if stats.restarts >= 1:
                        break
                    await asyncio.sleep(0.1)
                return outcomes, stats
            finally:
                await router.shutdown()

        outcomes, stats = asyncio.run(go())
        for item, outcome in zip(ALL_METHOD_ITEMS, outcomes):
            solo = solo_outcomes[(item.method, item.run_seed)]
            assert outcome.query == solo.query
            assert outcome.gt_count == solo.gt_count
            assert_traces_identical(outcome.trace, solo.trace)
        assert stats.restarts >= 1
        assert stats.recovered_sessions + stats.rerun_sessions >= 1
        assert not stats.down_shards

    def test_kill_before_any_admission(self):
        """The shard dies before a single session reaches it: the
        monitor notices the corpse, relaunches, and queued submissions
        run on the fresh incarnation."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(
                dataset, n_shards=1, checkpoint_every=2, **FAST_BEAT
            )
            try:
                router.shards[0].process.kill()
                handles = [
                    await router.submit(
                        WorkloadItem(object="car", limit=3, run_seed=i)
                    )
                    for i in range(2)
                ]
                outcomes = [await h.result() for h in handles]
                stats = await router.stats()
                return outcomes, stats
            finally:
                await router.shutdown()

        outcomes, stats = asyncio.run(go())
        assert stats.restarts == 1
        engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        for run_seed, outcome in enumerate(outcomes):
            solo = engine.run(
                WorkloadItem(object="car", limit=3, run_seed=run_seed)
                .query(),
                run_seed=run_seed,
            )
            assert_traces_identical(outcome.trace, solo.trace)

    def test_mid_batch_kill_redoes_at_most_checkpoint_every_steps(self):
        """The checkpoint cycle bounds the redo: a session killed between
        checkpoints re-executes at most ``checkpoint_every`` steps."""
        dataset = make_tiny_dataset(seed=11)
        item = WorkloadItem(
            object="car", frame_budget=200, batch_size=8, run_seed=5
        )

        async def go():
            router = await _launch(
                dataset,
                n_shards=1,
                checkpoint_every=2,
                server=ServerConfig(max_in_flight=4),
                faults=FaultPlan((
                    FaultSpec(kind="kill", shard=0, after_steps=7),
                )),
                **FAST_BEAT,
            )
            try:
                handle = await router.submit(item)
                outcome = await handle.result()
                stats = await router.stats()
                return outcome, stats, handle.recoveries
            finally:
                await router.shutdown()

        outcome, stats, recoveries = asyncio.run(go())
        assert stats.restarts >= 1
        assert recoveries >= 1
        assert stats.recovered_sessions >= 1
        # The redo ledger: work lost per recovery is capped by the cycle.
        assert stats.redone_steps <= 2 * (
            stats.recovered_sessions + stats.rerun_sessions
        )
        # Superseded incarnations are evicted as the cycle turns: the
        # shard keeps one record for the live session, not one paused
        # ghost per checkpoint (~12 cycles in this run).
        assert stats.submitted <= 2
        engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        solo = engine.run(item.query(), run_seed=item.run_seed,
                          batch_size=item.batch_size)
        assert_traces_identical(outcome.trace, solo.trace)

    def test_kill_with_process_executor_batch_in_flight(self):
        """A shard serving on the *process* detector executor is
        SIGKILLed mid-search — while fused batches are bouncing through
        its worker pool. The shard's pool workers die with it (they
        self-exit on the broken pipe), supervision relaunches the shard,
        a fresh pool republishes the world, and the recovered sessions'
        outcomes stay element-wise identical to solo runs."""
        dataset = make_tiny_dataset(seed=11)
        items = [
            WorkloadItem(object="car", limit=4, run_seed=i, tenant=f"t{i}")
            for i in range(3)
        ]

        async def go():
            router = await _launch(
                dataset,
                n_shards=1,
                checkpoint_every=2,
                server=ServerConfig(executor="process"),
                faults=FaultPlan((
                    FaultSpec(kind="kill", shard=0, after_steps=4),
                )),
                **FAST_BEAT,
            )
            try:
                handles = await replay_fleet(router, items, time_scale=0.0)
                outcomes = [await h.result() for h in handles]
                stats = await router.stats()
                return outcomes, stats
            finally:
                await router.shutdown()

        outcomes, stats = asyncio.run(go())
        assert stats.restarts >= 1
        assert not stats.down_shards
        engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        for item, outcome in zip(items, outcomes):
            solo = engine.run(
                item.query(), method=item.method, run_seed=item.run_seed
            )
            assert_traces_identical(outcome.trace, solo.trace)


# ---------------------------------------------------------------------------
# Kill during a live migration.
# ---------------------------------------------------------------------------


class TestKillDuringMigration:
    def test_source_shard_dies_mid_move(self):
        """The source shard is killed between the staging pause and the
        checkpoint: migrate() fails (the move did fail), but the session
        recovers — re-run from scratch it re-stages the same pause, and
        a second migrate to the survivor completes identically."""
        dataset = make_tiny_dataset(seed=11)
        item = WorkloadItem(
            object="car", limit=4, run_seed=7, shard=0, pause_after=1
        )

        async def go():
            router = await _launch(
                dataset, n_shards=2, checkpoint_every=2, **FAST_BEAT
            )
            try:
                handle = await router.submit(item)
                assert await handle.wait() == "paused"
                router.shards[0].process.kill()
                with pytest.raises(Exception):
                    await router.migrate(handle, 1)
                # Recovery re-runs the session from scratch; determinism
                # re-arms the same staged pause.
                assert await handle.wait() == "paused"
                await router.migrate(handle, 1)
                outcome = await handle.result()
                # The survivor can finish the session before the monitor
                # even convicts the corpse; wait for the relaunch rather
                # than racing it.
                # Relaunching a shard under the spawn start method on a
                # loaded machine can take many seconds; the deadline is
                # generous because only its expiry fails the test.
                for _ in range(300):
                    stats = await router.stats()
                    if stats.restarts >= 1:
                        break
                    await asyncio.sleep(0.1)
                return outcome, handle.shard, stats
            finally:
                await router.shutdown()

        outcome, final_shard, stats = asyncio.run(go())
        assert final_shard == 1
        assert stats.restarts >= 1
        engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        solo = engine.run(item.query(), run_seed=item.run_seed)
        assert_traces_identical(outcome.trace, solo.trace)


# ---------------------------------------------------------------------------
# Hung (not dead) shard: heartbeat conviction.
# ---------------------------------------------------------------------------


class TestHungShard:
    def test_stalled_event_loop_is_treated_like_a_crash(self):
        """A stall fault wedges the shard's loop: the process stays
        alive but stops answering pings. Missed heartbeats convict it;
        it is SIGKILLed, relaunched, and its sessions recovered."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(
                dataset,
                n_shards=1,
                checkpoint_every=2,
                faults=FaultPlan((
                    FaultSpec(kind="stall", shard=0, after_steps=3),
                )),
                heartbeat_interval=0.05,
                heartbeat_timeout=0.2,
                missed_heartbeats=2,
                op_timeout=2.0,
            )
            try:
                handle = await router.submit(
                    WorkloadItem(object="car", limit=4, run_seed=2)
                )
                outcome = await handle.result()
                stats = await router.stats()
                return outcome, stats
            finally:
                await router.shutdown()

        outcome, stats = asyncio.run(go())
        assert stats.restarts >= 1
        engine = QueryEngine(make_tiny_dataset(seed=11), seed=11)
        solo = engine.run(
            WorkloadItem(object="car", limit=4, run_seed=2).query(),
            run_seed=2,
        )
        assert_traces_identical(outcome.trace, solo.trace)


# ---------------------------------------------------------------------------
# Circuit breaker: recovery exhausted.
# ---------------------------------------------------------------------------


class TestRecoveryExhausted:
    def test_max_restarts_zero_fails_typed_and_degrades(self):
        """With no restart budget the lone shard's death is final: its
        sessions fail with ShardLostError, later submissions are refused
        with FleetDegradedError, and shutdown still returns cleanly."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(
                dataset,
                n_shards=1,
                checkpoint_every=2,
                max_restarts=0,
                faults=FaultPlan((
                    FaultSpec(kind="kill", shard=0, after_steps=2),
                )),
                **FAST_BEAT,
            )
            try:
                handle = await router.submit(
                    WorkloadItem(object="car", limit=4, run_seed=1)
                )
                with pytest.raises(ShardLostError, match="no live shard"):
                    await handle.result()
                with pytest.raises(FleetDegradedError, match="down") as exc:
                    await router.submit(
                        WorkloadItem(object="car", limit=2)
                    )
                stats = await router.stats()
                return stats, exc.value.down
            finally:
                await router.shutdown()

        stats, down = asyncio.run(go())
        assert stats.down_shards == [0]
        assert down == (0,)
        assert "DEGRADED" in stats.describe()


# ---------------------------------------------------------------------------
# Shutdown under the worst case: a wedged shard, supervision off.
# ---------------------------------------------------------------------------


class TestShutdownEscalation:
    def test_shutdown_reaps_a_hung_shard(self):
        """Even with supervision disabled, shutdown must return: the
        wedged shard ignores the drain, gets terminate -> kill, and the
        autouse fixture proves nothing survives."""
        dataset = make_tiny_dataset(seed=11)

        async def go():
            router = await _launch(
                dataset,
                n_shards=1,
                supervise=False,
                op_timeout=1.0,
                faults=FaultPlan((
                    FaultSpec(kind="stall", shard=0, after_steps=2),
                )),
            )
            handle = await router.submit(
                WorkloadItem(object="car", limit=4)
            )
            # Give the stall time to trigger, then shut down anyway.
            await asyncio.sleep(0.3)
            await router.shutdown()
            with pytest.raises(Exception):
                await handle.result()

        asyncio.run(go())
