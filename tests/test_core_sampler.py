"""Tests for SearchTrace and the ExSample search loop."""

import numpy as np
import pytest

from repro.core.config import ExSampleConfig
from repro.core.environment import CallbackEnvironment, Observation
from repro.core.sampler import ExSampleSearcher, SearchTrace, Searcher
from repro.errors import ConfigError


def make_trace(d0s, costs=None, upfront=0.0, results=None):
    n = len(d0s)
    return SearchTrace(
        chunks=np.zeros(n, dtype=np.int64),
        frames=np.arange(n, dtype=np.int64),
        d0s=np.asarray(d0s, dtype=np.int64),
        d1s=np.zeros(n, dtype=np.int64),
        costs=np.asarray(costs if costs is not None else np.ones(n), dtype=float),
        results=results if results is not None else [],
        upfront_cost=upfront,
    )


class TestSearchTrace:
    def test_counts(self):
        trace = make_trace([1, 0, 2])
        assert trace.num_samples == 3
        assert trace.num_results == 3

    def test_discovery_curve(self):
        trace = make_trace([1, 0, 2])
        assert list(trace.discovery_curve()) == [1, 1, 3]

    def test_samples_to_results(self):
        trace = make_trace([0, 1, 0, 1, 1])
        assert trace.samples_to_results(0) == 0
        assert trace.samples_to_results(1) == 2
        assert trace.samples_to_results(2) == 4
        assert trace.samples_to_results(3) == 5
        assert trace.samples_to_results(4) is None

    def test_cost_to_results_includes_upfront(self):
        trace = make_trace([0, 1], costs=[2.0, 3.0], upfront=10.0)
        assert trace.cost_to_results(1) == pytest.approx(15.0)
        assert trace.cost_to_results(0) == pytest.approx(10.0)
        assert trace.total_cost == pytest.approx(15.0)

    def test_results_at_samples_saturates(self):
        trace = make_trace([1, 1])
        values = trace.results_at_samples([1, 2, 100])
        assert list(values) == [1, 2, 2]

    def test_cost_curve_offset(self):
        trace = make_trace([0, 0], costs=[1.0, 1.0], upfront=5.0)
        assert list(trace.cost_curve()) == [6.0, 7.0]


class _ScriptedSearcher(Searcher):
    """Visits chunk 0 frames in order; used to test the base run loop."""

    name = "scripted"

    def __init__(self, env, rng=0):
        super().__init__(env, rng)
        self._cursor = 0

    def pick_batch(self):
        if self._cursor >= self.sizes[0]:
            return []
        self._cursor += 1
        return [(0, self._cursor - 1)]


class TestBaseRunLoop:
    def _env(self, hits=(2, 5), size=10, cost=1.0):
        def observe(chunk, frame):
            found = int(frame in hits)
            return Observation(d0=found, d1=0, results=[frame] * found, cost=cost)

        return CallbackEnvironment([size], observe)

    def test_result_limit_stops(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run(result_limit=1)
        assert trace.num_results == 1
        assert trace.num_samples == 3  # frames 0,1,2

    def test_frame_budget_stops(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run(frame_budget=4)
        assert trace.num_samples == 4

    def test_cost_budget_stops(self):
        searcher = _ScriptedSearcher(self._env(cost=2.0))
        trace = searcher.run(cost_budget=5.0)
        assert trace.num_samples == 3  # stops once cumulative cost >= 5

    def test_runs_to_exhaustion_without_limits(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run()
        assert trace.num_samples == 10

    def test_distinct_real_limit(self):
        # Every even frame re-reports instance 1; odd frames report new ids.
        def observe(chunk, frame):
            uid = 1 if frame % 2 == 0 else 100 + frame
            return Observation(d0=1, d1=0, results=[uid], cost=1.0)

        env = CallbackEnvironment([10], observe)
        searcher = _ScriptedSearcher(env)
        trace = searcher.run(distinct_real_limit=3)
        # frames 0(uid1),1(uid101),2(uid1 dup),3(uid103) -> 3 distinct
        assert trace.num_samples == 4


class TestExSampleSearcher:
    def _skewed_env(self, good_chunk=1, n_chunks=4, size=200, hit_rate=0.25):
        def observe(chunk, frame):
            found = int(chunk == good_chunk and frame % int(1 / hit_rate) == 0)
            return Observation(
                d0=found, d1=0,
                results=[chunk * size + frame] * found, cost=1.0,
            )

        return CallbackEnvironment([size] * n_chunks, observe)

    def test_concentrates_on_productive_chunk(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        trace = searcher.run(result_limit=25)
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts[1] > counts.sum() * 0.5

    def test_batched_mode_runs(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0, batch_size=8))
        trace = searcher.run(result_limit=20)
        assert trace.num_results >= 20
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts[1] > counts.sum() * 0.4

    def test_exhausts_cleanly(self):
        env = self._skewed_env(size=20)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=1))
        trace = searcher.run()  # no limits: drains everything
        assert trace.num_samples == 80
        # Every frame visited exactly once per chunk.
        for chunk in range(4):
            frames = trace.frames[trace.chunks == chunk]
            assert sorted(frames) == list(range(20))

    def test_belief_clamps_negative_n1(self):
        env = CallbackEnvironment(
            [10, 10], lambda c, f: Observation(d0=0, d1=1, results=[], cost=1.0)
        )
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        searcher.run(frame_budget=10)
        alphas, betas = searcher.belief_parameters()
        assert np.all(alphas > 0)
        assert np.all(betas > 0)
        # The raw counters do go negative (cross-chunk d1 effect).
        assert searcher.stats.n1.min() < 0

    def test_point_estimates_exposed(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        searcher.run(frame_budget=100)
        estimates = searcher.point_estimates()
        assert estimates.shape == (4,)
        assert estimates[1] == max(estimates)

    @pytest.mark.parametrize("policy", ["thompson", "bayes_ucb", "greedy", "uniform"])
    def test_all_policies_complete(self, policy):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0, policy=policy))
        trace = searcher.run(result_limit=10)
        assert trace.num_results >= 10

    @pytest.mark.parametrize("order", ["randomplus", "uniform", "sequential"])
    def test_all_orders_complete(self, order):
        env = self._skewed_env()
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=0, within_chunk_order=order)
        )
        trace = searcher.run(result_limit=10)
        assert trace.num_results >= 10

    def test_requires_nonempty_chunks(self):
        env = CallbackEnvironment([], lambda c, f: Observation(0, 0))
        with pytest.raises(ConfigError):
            ExSampleSearcher(env, ExSampleConfig(seed=0))

    def test_deterministic_given_seed(self):
        env_a = self._skewed_env()
        env_b = self._skewed_env()
        trace_a = ExSampleSearcher(env_a, ExSampleConfig(seed=5)).run(result_limit=10)
        trace_b = ExSampleSearcher(env_b, ExSampleConfig(seed=5)).run(result_limit=10)
        assert np.array_equal(trace_a.chunks, trace_b.chunks)
        assert np.array_equal(trace_a.frames, trace_b.frames)
