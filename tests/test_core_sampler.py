"""Tests for SearchTrace and the ExSample search loop."""

import numpy as np
import pytest

from repro.core.chunk_state import ChunkStatistics
from repro.core.config import ExSampleConfig
from repro.core.environment import (
    CallbackEnvironment,
    Observation,
    batched_observe,
)
from repro.core.sampler import ExSampleSearcher, SearchTrace, Searcher
from repro.errors import ConfigError


def make_trace(d0s, costs=None, upfront=0.0, results=None):
    n = len(d0s)
    return SearchTrace(
        chunks=np.zeros(n, dtype=np.int64),
        frames=np.arange(n, dtype=np.int64),
        d0s=np.asarray(d0s, dtype=np.int64),
        d1s=np.zeros(n, dtype=np.int64),
        costs=np.asarray(costs if costs is not None else np.ones(n), dtype=float),
        results=results if results is not None else [],
        upfront_cost=upfront,
    )


class TestSearchTrace:
    def test_counts(self):
        trace = make_trace([1, 0, 2])
        assert trace.num_samples == 3
        assert trace.num_results == 3

    def test_discovery_curve(self):
        trace = make_trace([1, 0, 2])
        assert list(trace.discovery_curve()) == [1, 1, 3]

    def test_samples_to_results(self):
        trace = make_trace([0, 1, 0, 1, 1])
        assert trace.samples_to_results(0) == 0
        assert trace.samples_to_results(1) == 2
        assert trace.samples_to_results(2) == 4
        assert trace.samples_to_results(3) == 5
        assert trace.samples_to_results(4) is None

    def test_cost_to_results_includes_upfront(self):
        trace = make_trace([0, 1], costs=[2.0, 3.0], upfront=10.0)
        assert trace.cost_to_results(1) == pytest.approx(15.0)
        assert trace.cost_to_results(0) == pytest.approx(10.0)
        assert trace.total_cost == pytest.approx(15.0)

    def test_results_at_samples_saturates(self):
        trace = make_trace([1, 1])
        values = trace.results_at_samples([1, 2, 100])
        assert list(values) == [1, 2, 2]

    def test_cost_curve_offset(self):
        trace = make_trace([0, 0], costs=[1.0, 1.0], upfront=5.0)
        assert list(trace.cost_curve()) == [6.0, 7.0]


class _ScriptedSearcher(Searcher):
    """Visits chunk 0 frames in order; used to test the base run loop."""

    name = "scripted"

    def __init__(self, env, rng=0):
        super().__init__(env, rng)
        self._cursor = 0

    def pick_batch(self):
        if self._cursor >= self.sizes[0]:
            return []
        self._cursor += 1
        return [(0, self._cursor - 1)]


class TestBaseRunLoop:
    def _env(self, hits=(2, 5), size=10, cost=1.0):
        def observe(chunk, frame):
            found = int(frame in hits)
            return Observation(d0=found, d1=0, results=[frame] * found, cost=cost)

        return CallbackEnvironment([size], observe)

    def test_result_limit_stops(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run(result_limit=1)
        assert trace.num_results == 1
        assert trace.num_samples == 3  # frames 0,1,2

    def test_frame_budget_stops(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run(frame_budget=4)
        assert trace.num_samples == 4

    def test_cost_budget_stops(self):
        searcher = _ScriptedSearcher(self._env(cost=2.0))
        trace = searcher.run(cost_budget=5.0)
        assert trace.num_samples == 3  # stops once cumulative cost >= 5

    def test_runs_to_exhaustion_without_limits(self):
        searcher = _ScriptedSearcher(self._env())
        trace = searcher.run()
        assert trace.num_samples == 10

    def test_distinct_real_limit(self):
        # Every even frame re-reports instance 1; odd frames report new ids.
        def observe(chunk, frame):
            uid = 1 if frame % 2 == 0 else 100 + frame
            return Observation(d0=1, d1=0, results=[uid], cost=1.0)

        env = CallbackEnvironment([10], observe)
        searcher = _ScriptedSearcher(env)
        trace = searcher.run(distinct_real_limit=3)
        # frames 0(uid1),1(uid101),2(uid1 dup),3(uid103) -> 3 distinct
        assert trace.num_samples == 4


class _BatchScriptedSearcher(Searcher):
    """Visits chunk 0 frames in order, ``batch_size`` picks at a time.

    The pick sequence is independent of observations, so runs with
    different batch sizes visit identical frames — exactly the setting in
    which §III-F batching must not change where a search stops.
    """

    name = "batch-scripted"

    def __init__(self, env, rng=0, batch_size=1):
        super().__init__(env, rng)
        self.batch_size = batch_size
        self._cursor = 0

    def pick_batch(self):
        end = min(self._cursor + self.batch_size, int(self.sizes[0]))
        picks = [(0, f) for f in range(self._cursor, end)]
        self._cursor = end
        return picks


class _ExtraCostSearcher(_BatchScriptedSearcher):
    """Charges a deferred cost once, on its second batch."""

    def __init__(self, env, rng=0, batch_size=4, extra=7.0):
        super().__init__(env, rng, batch_size)
        self.extra = extra
        self._batches = 0

    def consume_extra_cost(self):
        self._batches += 1
        return self.extra if self._batches == 2 else 0.0


BATCH_SIZES = [1, 2, 8, 33]


class TestBatchedStopping:
    """Mid-batch stopping: limits bind identically for every batch size."""

    def _env(self, size=40, cost=1.0, hit_every=4):
        def observe(chunk, frame):
            found = int(frame % hit_every == 0)
            return Observation(
                d0=found, d1=0, results=[frame] * found, cost=cost
            )

        return CallbackEnvironment([size], observe)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_result_limit_never_overshoots(self, batch_size):
        searcher = _BatchScriptedSearcher(self._env(), batch_size=batch_size)
        trace = searcher.run(result_limit=5)
        assert trace.num_results == 5
        # Stops at the frame that produced the 5th result: frame 16.
        assert trace.num_samples == 17

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_frame_budget_never_overshoots(self, batch_size):
        searcher = _BatchScriptedSearcher(self._env(), batch_size=batch_size)
        trace = searcher.run(frame_budget=10)
        assert trace.num_samples == 10

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_cost_budget_never_overshoots(self, batch_size):
        searcher = _BatchScriptedSearcher(
            self._env(cost=2.0), batch_size=batch_size
        )
        trace = searcher.run(cost_budget=13.0)
        # Stops the moment cumulative cost crosses 13: 7 frames x 2s = 14s.
        assert trace.num_samples == 7
        assert trace.total_cost == pytest.approx(14.0)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_distinct_real_limit_never_overshoots(self, batch_size):
        def observe(chunk, frame):
            uid = 1 if frame % 2 == 0 else 100 + frame
            return Observation(d0=1, d1=0, results=[uid], cost=1.0)

        env = CallbackEnvironment([40], observe)
        searcher = _BatchScriptedSearcher(env, batch_size=batch_size)
        trace = searcher.run(distinct_real_limit=3)
        assert trace.num_samples == 4

    def test_batched_trace_identical_to_unbatched(self):
        """The §III-F regression: batch_size=8 stops exactly where
        batch_size=1 does, at the same sample count and total cost."""
        for limits in (
            {"result_limit": 5},
            {"cost_budget": 13.0},
            {"frame_budget": 11},
            {"result_limit": 5, "cost_budget": 9.5},
        ):
            traces = [
                _BatchScriptedSearcher(
                    self._env(cost=1.5), batch_size=b
                ).run(**limits)
                for b in (1, 8)
            ]
            assert traces[0].num_samples == traces[1].num_samples
            assert traces[0].total_cost == pytest.approx(traces[1].total_cost)
            assert traces[0].num_results == traces[1].num_results
            assert np.array_equal(traces[0].frames, traces[1].frames)
            assert np.array_equal(traces[0].costs, traces[1].costs)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_exsample_never_exceeds_limits(self, batch_size):
        def observe(chunk, frame):
            found = int(chunk == 1 and frame % 3 == 0)
            return Observation(
                d0=found, d1=0, results=[chunk * 1000 + frame] * found, cost=1.0
            )

        env = CallbackEnvironment([60] * 4, observe)
        config = ExSampleConfig(seed=0, batch_size=batch_size)
        trace = ExSampleSearcher(env, config).run(result_limit=7)
        assert trace.num_results == 7
        trace = ExSampleSearcher(env, config).run(frame_budget=25)
        assert trace.num_samples == 25
        trace = ExSampleSearcher(env, config).run(cost_budget=30.0)
        assert trace.num_samples == 30

    def test_update_sees_only_consumed_observations(self):
        seen_updates = []

        class _Recording(_BatchScriptedSearcher):
            def update(self, picks, observations):
                seen_updates.append(len(picks))

        searcher = _Recording(self._env(), batch_size=8)
        searcher.run(frame_budget=11)
        assert sum(seen_updates) == 11
        assert seen_updates[-1] == 3  # final batch truncated mid-way

    def test_observations_never_mutated(self):
        """Deferred extra cost lands in the trace, not the Observation."""
        cached = [Observation(d0=0, d1=0, results=[], cost=1.0) for _ in range(12)]

        env = CallbackEnvironment([12], lambda c, f: cached[f])
        searcher = _ExtraCostSearcher(env, batch_size=4, extra=7.0)
        trace = searcher.run(frame_budget=12)
        assert all(obs.cost == 1.0 for obs in cached)
        # The 7s surcharge lands on the second batch's first frame.
        assert trace.costs[4] == pytest.approx(8.0)
        assert trace.total_cost == pytest.approx(12 + 7.0)

    def test_extra_cost_counts_toward_cost_budget_mid_batch(self):
        cached = [Observation(d0=0, d1=0, results=[], cost=1.0) for _ in range(12)]
        env = CallbackEnvironment([12], lambda c, f: cached[f])
        searcher = _ExtraCostSearcher(env, batch_size=4, extra=7.0)
        trace = searcher.run(cost_budget=10.0)
        # Batch 1: frames 0-3 (cost 4). Batch 2 charges +7 on its first
        # frame: 4 + 8 = 12 >= 10 stops immediately, mid-batch.
        assert trace.num_samples == 5
        assert trace.total_cost == pytest.approx(12.0)
        assert all(obs.cost == 1.0 for obs in cached)

    def test_batched_observe_fallback_for_plain_env(self):
        class _PlainEnv:
            def chunk_sizes(self):
                return np.array([6], dtype=np.int64)

            def observe(self, chunk, frame):
                return Observation(d0=1, d1=0, results=[frame], cost=1.0)

        env = _PlainEnv()
        observations = batched_observe(env, [(0, 0), (0, 1)])
        assert [obs.results[0] for obs in observations] == [0, 1]
        trace = _BatchScriptedSearcher(env, batch_size=4).run(result_limit=3)
        assert trace.num_results == 3
        assert trace.num_samples == 3

    def test_chunk_statistics_batch_commutes_with_incremental(self):
        """§III-F foundation: batched updates equal per-frame updates, so
        the run loop may truncate a batch at any point."""
        rng = np.random.default_rng(3)
        sizes = [50, 50, 50]
        chunks = rng.integers(0, 3, size=40)
        d0s = rng.integers(0, 3, size=40).astype(float)
        d1s = rng.integers(0, 2, size=40).astype(float)

        batched = ChunkStatistics(sizes)
        batched.apply_batch(chunks, d0s, d1s)
        incremental = ChunkStatistics(sizes)
        for chunk, d0, d1 in zip(chunks, d0s, d1s):
            incremental.record(int(chunk), int(d0), int(d1))
        assert np.allclose(batched.n1, incremental.n1)
        assert np.array_equal(batched.n, incremental.n)

        # Any prefix split of a batch applies identically: the property the
        # mid-batch stop relies on.
        split = ChunkStatistics(sizes)
        split.apply_batch(chunks[:17], d0s[:17], d1s[:17])
        split.apply_batch(chunks[17:], d0s[17:], d1s[17:])
        assert np.allclose(split.n1, batched.n1)
        assert np.array_equal(split.n, batched.n)


class TestExSampleSearcher:
    def _skewed_env(self, good_chunk=1, n_chunks=4, size=200, hit_rate=0.25):
        def observe(chunk, frame):
            found = int(chunk == good_chunk and frame % int(1 / hit_rate) == 0)
            return Observation(
                d0=found, d1=0,
                results=[chunk * size + frame] * found, cost=1.0,
            )

        return CallbackEnvironment([size] * n_chunks, observe)

    def test_concentrates_on_productive_chunk(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        trace = searcher.run(result_limit=25)
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts[1] > counts.sum() * 0.5

    def test_batched_mode_runs(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0, batch_size=8))
        trace = searcher.run(result_limit=20)
        assert trace.num_results >= 20
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts[1] > counts.sum() * 0.4

    def test_exhausts_cleanly(self):
        env = self._skewed_env(size=20)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=1))
        trace = searcher.run()  # no limits: drains everything
        assert trace.num_samples == 80
        # Every frame visited exactly once per chunk.
        for chunk in range(4):
            frames = trace.frames[trace.chunks == chunk]
            assert sorted(frames) == list(range(20))

    def test_belief_clamps_negative_n1(self):
        env = CallbackEnvironment(
            [10, 10], lambda c, f: Observation(d0=0, d1=1, results=[], cost=1.0)
        )
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        searcher.run(frame_budget=10)
        alphas, betas = searcher.belief_parameters()
        assert np.all(alphas > 0)
        assert np.all(betas > 0)
        # The raw counters do go negative (cross-chunk d1 effect).
        assert searcher.stats.n1.min() < 0

    def test_point_estimates_exposed(self):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0))
        searcher.run(frame_budget=100)
        estimates = searcher.point_estimates()
        assert estimates.shape == (4,)
        assert estimates[1] == max(estimates)

    @pytest.mark.parametrize("policy", ["thompson", "bayes_ucb", "greedy", "uniform"])
    def test_all_policies_complete(self, policy):
        env = self._skewed_env()
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=0, policy=policy))
        trace = searcher.run(result_limit=10)
        assert trace.num_results >= 10

    @pytest.mark.parametrize("order", ["randomplus", "uniform", "sequential"])
    def test_all_orders_complete(self, order):
        env = self._skewed_env()
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=0, within_chunk_order=order)
        )
        trace = searcher.run(result_limit=10)
        assert trace.num_results >= 10

    def test_requires_nonempty_chunks(self):
        env = CallbackEnvironment([], lambda c, f: Observation(0, 0))
        with pytest.raises(ConfigError):
            ExSampleSearcher(env, ExSampleConfig(seed=0))

    def test_deterministic_given_seed(self):
        env_a = self._skewed_env()
        env_b = self._skewed_env()
        trace_a = ExSampleSearcher(env_a, ExSampleConfig(seed=5)).run(result_limit=10)
        trace_b = ExSampleSearcher(env_b, ExSampleConfig(seed=5)).run(result_limit=10)
        assert np.array_equal(trace_a.chunks, trace_b.chunks)
        assert np.array_equal(trace_a.frames, trace_b.frames)


class TestVectorPriorSearcher:
    """Per-chunk priors (warm starts from the repository index)."""

    def _env(self, n_chunks=4, size=50):
        return CallbackEnvironment(
            [size] * n_chunks,
            lambda c, f: Observation(d0=int(c == 1), d1=0,
                                     results=[f] * int(c == 1), cost=1.0),
        )

    def test_right_length_vector_prior_runs(self):
        env = self._env(n_chunks=4)
        config = ExSampleConfig(
            seed=0, alpha0=np.full(4, 0.1), beta0=np.full(4, 1.0)
        )
        searcher = ExSampleSearcher(env, config)
        trace = searcher.run(result_limit=5)
        assert trace.num_results >= 5

    def test_informative_prior_steers_first_draws(self):
        env = self._env(n_chunks=4)
        config = ExSampleConfig(
            seed=0,
            alpha0=np.array([0.01, 50.0, 0.01, 0.01]),
            beta0=np.full(4, 1.0),
        )
        searcher = ExSampleSearcher(env, config)
        trace = searcher.run(frame_budget=20)
        counts = np.bincount(trace.chunks, minlength=4)
        assert counts[1] > counts.sum() * 0.5

    @pytest.mark.parametrize("name", ["alpha0", "beta0"])
    def test_rejects_wrong_length_vector_prior(self, name):
        env = self._env(n_chunks=4)
        config = ExSampleConfig(seed=0, **{name: np.full(3, 0.5)})
        with pytest.raises(ConfigError, match="3 entries but the environment"):
            ExSampleSearcher(env, config)
