"""Shared fixtures: small, fast instances of every substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.simulated import PERFECT_PROFILE, SimulatedDetector
from repro.theory.instances import InstancePopulation
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory, spawn_rng
from repro.video.chunks import FixedDurationChunker
from repro.video.datasets import Dataset
from repro.video.synthetic import ClassSpec, build_world
from repro.video.video import Video, VideoRepository


@pytest.fixture
def rng() -> np.random.Generator:
    return spawn_rng(1234, "tests")


@pytest.fixture
def rngs() -> RngFactory:
    return RngFactory(1234)


@pytest.fixture
def small_population() -> InstancePopulation:
    """200 instances, 100k frames, moderate skew — fast but non-trivial."""
    return InstancePopulation.place(
        200, 100_000, 300, spawn_rng(7, "pop"), skew_fraction=1 / 8
    )


@pytest.fixture
def flat_population() -> InstancePopulation:
    """200 instances spread uniformly (the no-skew control)."""
    return InstancePopulation.place(
        200, 100_000, 300, spawn_rng(8, "pop-flat"), skew_fraction=None
    )


@pytest.fixture
def temporal_env(small_population: InstancePopulation) -> TemporalEnvironment:
    return TemporalEnvironment.with_even_chunks(small_population, 16)


def make_tiny_dataset(seed: int = 0, minutes: float = 4.0) -> Dataset:
    """A hand-rolled dataset small enough for exhaustive test scans.

    Two videos of ``minutes/2`` each at 10 fps, three object classes with
    contrasting skew, chunked into ~8 chunks.
    """
    fps = 10.0
    frames_per_video = int(minutes / 2 * 60 * fps)
    repository = VideoRepository(
        [
            Video("tiny-0", frames_per_video, fps=fps, width=640, height=480),
            Video("tiny-1", frames_per_video, fps=fps, width=640, height=480),
        ]
    )
    world = build_world(
        repository,
        [
            ClassSpec("car", count=30, mean_duration_s=6.0, skew=("uniform",),
                      size_range=(60, 200)),
            ClassSpec("bicycle", count=12, mean_duration_s=4.0,
                      skew=("hotspots", 1, 0.10), size_range=(50, 150)),
            ClassSpec("dog", count=6, mean_duration_s=3.0,
                      skew=("normal", 0.5), size_range=(40, 120)),
        ],
        seed=seed,
    )
    chunk_map = FixedDurationChunker(minutes=0.5).chunk(repository)
    return Dataset(
        name="tiny",
        repository=repository,
        world=world,
        chunk_map=chunk_map,
        camera="static",
    )


@pytest.fixture
def tiny_dataset() -> Dataset:
    return make_tiny_dataset(seed=0)


@pytest.fixture
def perfect_detector(tiny_dataset: Dataset) -> SimulatedDetector:
    return SimulatedDetector(tiny_dataset.world, profile=PERFECT_PROFILE, seed=0)
