"""Tests for the process-parallel experiment backbone.

The contract under test: parallel execution is a pure wall-clock
optimisation — for any job count, results are element-wise identical to the
serial loop, in the same order.
"""

from functools import partial

import numpy as np
import pytest

from repro.core.config import ExSampleConfig
from repro.core.sampler import ExSampleSearcher
from repro.errors import ConfigError
from repro.experiments import fig2, fig3
from repro.experiments.parallel import (
    clear_dataset_engines,
    dataset_engine,
    parallel_map,
    parallel_sweep_methods,
    parallel_traces,
    resolve_jobs,
)
from repro.experiments.runner import repeated_traces, sweep_methods
from repro.query.query import DistinctObjectQuery
from repro.theory.instances import InstancePopulation, even_chunk_bounds
from repro.theory.temporal_sim import TemporalEnvironment
from repro.utils.rng import RngFactory


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x} failed")


def _traces_equal(a, b):
    return (
        np.array_equal(a.chunks, b.chunks)
        and np.array_equal(a.frames, b.frames)
        and np.array_equal(a.d0s, b.d0s)
        and np.array_equal(a.d1s, b.d1s)
        and np.array_equal(a.costs, b.costs)
    )


def _make_searcher(population, bounds, rngs, run_idx):
    env = TemporalEnvironment(population, bounds)
    return ExSampleSearcher(
        env, ExSampleConfig(seed=run_idx), rng=rngs.child("ex", run_idx)
    )


@pytest.fixture(scope="module")
def workload():
    rngs = RngFactory(3).child("partest")
    population = InstancePopulation.place(
        200, 100_000, 500, rngs.stream("pop"), skew_fraction=1 / 16
    )
    bounds = even_chunk_bounds(100_000, 16)
    return partial(_make_searcher, population, bounds, rngs)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_IN_WORKER", raising=False)
        assert resolve_jobs() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_worker_guard_prevents_nesting(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_IN_WORKER", "1")
        assert resolve_jobs() == 1
        assert resolve_jobs(8) == 1

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            resolve_jobs()
        monkeypatch.delenv("REPRO_JOBS")
        with pytest.raises(ConfigError):
            resolve_jobs(0)


class TestParallelMap:
    def test_order_stable(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_serial_fallback_for_closures_warns(self):
        captured = []

        def unpicklable(x):
            captured.append(x)
            return -x

        with pytest.warns(RuntimeWarning, match="does not pickle"):
            assert parallel_map(unpicklable, [1, 2, 3], jobs=4) == [-1, -2, -3]
        assert captured == [1, 2, 3]  # ran in this process

    def test_probe_serializes_one_item_not_the_whole_list(self):
        """The pre-flight pickle probe covers fn plus one representative
        item; the full task list is serialized once, at submit time."""
        from repro.experiments import parallel as parallel_mod

        seen = []
        original = parallel_mod._probe_task

        def recording_probe(fn, item):
            seen.append(item)
            return original(fn, item)

        parallel_mod._probe_task = recording_probe
        try:
            items = list(range(6))
            assert parallel_map(_square, items, jobs=2) == [x * x for x in items]
        finally:
            parallel_mod._probe_task = original
        assert seen == [0]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 0 failed"):
            parallel_map(_boom, [0, 1, 2], jobs=2)
        with pytest.raises(ValueError, match="task 0 failed"):
            parallel_map(_boom, [0, 1], jobs=1)


class TestParallelTraces:
    def test_identical_to_serial(self, workload):
        serial = parallel_traces(workload, 4, jobs=1, frame_budget=600)
        parallel = parallel_traces(workload, 4, jobs=2, frame_budget=600)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert _traces_equal(a, b)

    def test_repeated_traces_jobs_passthrough(self, workload, monkeypatch):
        serial = repeated_traces(workload, 3, frame_budget=400)
        monkeypatch.setenv("REPRO_JOBS", "2")
        env_driven = repeated_traces(workload, 3, frame_budget=400)
        for a, b in zip(serial, env_driven):
            assert _traces_equal(a, b)


class TestParallelSweep:
    def test_identical_to_serial(self):
        dataset, engine = dataset_engine("dashcam", 0.02, 13)
        query = DistinctObjectQuery("person", limit=6)
        serial = sweep_methods(engine, query, jobs=1)
        parallel = parallel_sweep_methods(engine, query, jobs=2)
        assert list(serial) == list(parallel)  # method order preserved
        for method in serial:
            assert _traces_equal(serial[method].trace, parallel[method].trace)


class TestDatasetEngineMemo:
    """The process-local engine memo honors cache policy and stays bounded."""

    def test_cache_policy_reaches_worker_built_engines(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        clear_dataset_engines()
        _, engine_off = dataset_engine("dashcam", 0.02, 21, cache="off")
        assert engine_off.detection_cache is None
        _, engine_lru = dataset_engine("dashcam", 0.02, 21, cache="lru")
        assert engine_lru.detection_cache.policy == "lru"
        assert engine_lru is not engine_off  # policy is part of the memo key
        _, engine_default = dataset_engine("dashcam", 0.02, 21)
        assert engine_default.detection_cache.policy == "unbounded"
        # The env knob (what CLI --cache sets, and workers inherit) wins
        # over the default when no explicit policy is passed.
        monkeypatch.setenv("REPRO_CACHE", "lru")
        _, engine_env = dataset_engine("dashcam", 0.02, 21)
        assert engine_env.detection_cache.policy == "lru"
        assert engine_env is engine_lru
        clear_dataset_engines()

    def test_memo_is_bounded_with_a_clear_path(self):
        from repro.experiments.parallel import _ENGINE_MEMO_SLOTS, _dataset_engine

        clear_dataset_engines()
        assert _dataset_engine.cache_info().maxsize == _ENGINE_MEMO_SLOTS
        dataset_engine("dashcam", 0.02, 31)
        assert _dataset_engine.cache_info().currsize == 1
        assert dataset_engine("dashcam", 0.02, 31)[1] is dataset_engine(
            "dashcam", 0.02, 31
        )[1]
        clear_dataset_engines()
        assert _dataset_engine.cache_info().currsize == 0


class TestExperimentHarnesses:
    """Whole harnesses under REPRO_JOBS: results identical to serial."""

    def test_fig3_cell_grid(self, monkeypatch):
        config = fig3.Fig3Config(
            num_instances=150,
            total_frames=60_000,
            num_chunks=8,
            runs=2,
            frame_budget=300,
            skews=(None, 1 / 8),
            durations=(100,),
            targets=(10,),
        )
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = fig3.run(config)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = fig3.run(config)
        assert len(serial.cells) == len(parallel.cells)
        for a, b in zip(serial.cells, parallel.cells):
            assert (a.skew, a.duration) == (b.skew, b.duration)
            assert a.samples_to == b.samples_to
            assert a.median_found == b.median_found

    def test_fig2_block_split(self, monkeypatch):
        config = fig2.Fig2Config(
            num_instances=120, runs=24, max_n=20_000, checkpoints=12
        )
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = fig2.run(config)
        monkeypatch.setenv("REPRO_JOBS", "3")
        parallel = fig2.run(config)
        assert np.array_equal(serial.tuples.n, parallel.tuples.n)
        assert np.array_equal(serial.tuples.n1, parallel.tuples.n1)
        assert np.array_equal(serial.tuples.r_next, parallel.tuples.r_next)
