"""Tests for the persistent repository index (:mod:`repro.index`).

The acceptance bar, layer by layer:

* the store itself — digest-checked segments, count aggregation across
  records, corrupted-file resilience, vacuum compaction under an advisory
  lock, path-only pickling;
* engine integration — completed sessions record their knowledge, exact
  repeats short-circuit to the recorded outcome with **zero** detector
  calls, non-repeats warm-start from aggregated per-chunk counts;
* invalidation — an index built against one world/detector identity is
  *ignored* (logged warning, never a crash, never adopted rows) when the
  world mutates or the detector seed changes;
* sharing — the serving path records through the same hook, and one index
  directory serves a whole fleet of shard processes.
"""

import logging
import os
import pickle

import numpy as np
import pytest

from repro.core.config import ExSampleConfig
from repro.core.sampler import SearchTrace
from repro.errors import ConfigError
from repro.index import (
    INDEX_VERSION,
    RepositoryIndex,
    canonical_query_digest,
    chunk_signature,
    counts_from_trace,
    make_repository_index,
)
from repro.query.engine import QueryEngine, ReplaySession
from repro.query.query import DistinctObjectQuery

from tests.conftest import make_tiny_dataset
from tests.test_query_session import assert_traces_identical


def _trace(chunks, d0s=None, d1s=None):
    """A minimal hand-built trace for store-level tests."""
    chunks = np.asarray(chunks, dtype=np.int64)
    n = chunks.size
    return SearchTrace(
        chunks=chunks,
        frames=np.zeros(n, dtype=np.int64),
        d0s=np.asarray(d0s if d0s is not None else np.ones(n), dtype=np.int64),
        d1s=np.asarray(d1s if d1s is not None else np.zeros(n), dtype=np.int64),
        costs=np.full(n, 0.05),
        results=[],
        searcher="exsample",
    )


# ---------------------------------------------------------------------------
# Store unit tests: digests, merging, resilience, vacuum, pickling.
# ---------------------------------------------------------------------------


class TestHelpers:
    def test_chunk_signature_deterministic_and_sensitive(self):
        assert chunk_signature([30, 30, 12]) == chunk_signature([30, 30, 12])
        assert chunk_signature([30, 30, 12]) != chunk_signature([30, 30, 13])
        assert chunk_signature([30, 30, 12]) != chunk_signature([30, 30])

    def test_counts_from_trace_local_accounting(self):
        trace = _trace([0, 2, 2, 0], d0s=[1, 2, 0, 0], d1s=[0, 1, 0, 1])
        n, n1 = counts_from_trace(trace, num_chunks=4)
        assert n.tolist() == [2, 0, 2, 0]
        # chunk 0: (1-0) + (0-1) = 0; chunk 2: (2-1) + (0-0) = 1
        assert n1.tolist() == [0.0, 0.0, 1.0, 0.0]

    def test_counts_from_empty_trace(self):
        n, n1 = counts_from_trace(_trace([]), num_chunks=3)
        assert n.tolist() == [0, 0, 0]
        assert n1.tolist() == [0.0, 0.0, 0.0]

    def test_query_digest_sensitivity(self):
        base = dict(
            scope="s1",
            chunk_sig="c1",
            engine_seed=0,
            cost_model=None,
            method="exsample",
            run_seed=0,
            query=DistinctObjectQuery("car", limit=4),
            config=None,
        )
        digest = canonical_query_digest(**base)
        assert digest == canonical_query_digest(**base)
        for key, value in [
            ("scope", "s2"),
            ("chunk_sig", "c2"),
            ("engine_seed", 1),
            ("method", "random"),
            ("run_seed", 1),
            ("query", DistinctObjectQuery("car", limit=5)),
            ("config", ExSampleConfig()),
        ]:
            assert canonical_query_digest(**{**base, key: value}) != digest
        assert (
            canonical_query_digest(**base, searcher_kwargs={"batch_size": 4})
            != digest
        )

    def test_make_repository_index_specs(self, tmp_path):
        assert make_repository_index(None) is None
        index = make_repository_index(str(tmp_path / "idx"))
        assert isinstance(index, RepositoryIndex)
        assert make_repository_index(index) is index
        with pytest.raises(ConfigError):
            make_repository_index(42)


class TestStore:
    def test_counts_sum_across_records(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        key = ("scope", "car", "sig")
        index.record_session(
            scope="scope", class_name="car", chunk_sig="sig", num_chunks=3,
            trace=_trace([0, 1], d0s=[1, 0], d1s=[0, 0]),
        )
        index.record_session(
            scope="scope", class_name="car", chunk_sig="sig", num_chunks=3,
            trace=_trace([1, 1], d0s=[2, 0], d1s=[0, 0]),
        )
        n, n1 = index.counts_for(*key)
        assert n.tolist() == [1, 3, 0]
        assert n1.tolist() == [1.0, 2.0, 0.0]

    def test_counts_for_misses(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        assert index.counts_for("scope", "car", "sig") is None
        index.record_session(
            scope="scope", class_name="car", chunk_sig="sig", num_chunks=2,
            trace=_trace([0]),
        )
        assert index.counts_for("scope", "dog", "sig") is None
        assert index.counts_for("other", "car", "sig") is None
        assert index.counts_for("scope", "car", "other") is None

    def test_outcome_first_write_wins(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        for blob in (b"first", b"second"):
            index.record_session(
                scope="s", class_name="car", chunk_sig="c", num_chunks=1,
                trace=_trace([0]), query_digest="q1", outcome_blob=blob,
                reason="result_limit",
            )
        record = index.outcome_for("q1")
        assert record["blob"] == b"first"
        assert record["reason"] == "result_limit"
        assert index.outcome_for("missing") is None

    def test_corrupted_segment_is_skipped_with_warning(self, tmp_path, caplog):
        index = RepositoryIndex(str(tmp_path))
        index.record_session(
            scope="s", class_name="car", chunk_sig="c", num_chunks=1,
            trace=_trace([0]),
        )
        seg_dir = tmp_path / "segments"
        (seg_dir / "seg-0-garbage.bin").write_bytes(b"not a pickle at all")
        with caplog.at_level(logging.WARNING, logger="repro.index"):
            stats = index.stats()
        assert stats.skipped_files == 1
        assert stats.count_keys == 1  # the good segment still reads
        assert any("skipping" in r.message for r in caplog.records)

    def test_digest_mismatch_is_skipped(self, tmp_path, caplog):
        index = RepositoryIndex(str(tmp_path))
        payload = pickle.dumps({"counts": {}, "detections": {}, "outcomes": {}})
        envelope = {
            "version": INDEX_VERSION,
            "meta": {},
            "digest": "0" * 32,
            "payload": payload,
        }
        with open(tmp_path / "segments" / "seg-0-bad.bin", "wb") as handle:
            pickle.dump(envelope, handle)
        with caplog.at_level(logging.WARNING, logger="repro.index"):
            stats = index.stats()
        assert stats.skipped_files == 1
        assert any("digest mismatch" in r.message for r in caplog.records)

    def test_vacuum_compacts_without_losing_knowledge(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        for seed in range(3):
            index.record_session(
                scope="s", class_name="car", chunk_sig="c", num_chunks=2,
                trace=_trace([seed % 2]), query_digest=f"q{seed}",
                outcome_blob=f"blob{seed}".encode(), reason="result_limit",
            )
        before = index.stats()
        after = index.vacuum()
        assert before.segment_files == 3 and after.segment_files == 0
        assert after.compacted
        assert (after.count_keys, after.outcomes) == (
            before.count_keys, before.outcomes,
        )
        n_before = index.counts_for("s", "car", "c")
        assert n_before[0].tolist() == [2, 1]
        for seed in range(3):
            assert index.outcome_for(f"q{seed}")["blob"] == f"blob{seed}".encode()
        # Segments recorded after a vacuum merge on top of the compacted
        # store, and a second vacuum folds them in.
        index.record_session(
            scope="s", class_name="car", chunk_sig="c", num_chunks=2,
            trace=_trace([1]),
        )
        n, _ = index.counts_for("s", "car", "c")
        assert n.tolist() == [2, 2]
        assert index.vacuum().segment_files == 0

    def test_vacuum_lock_is_advisory_and_exclusive(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        lock = tmp_path / "vacuum.lock"
        lock.write_text("12345")
        with pytest.raises(ConfigError, match="another vacuum"):
            index.vacuum()
        lock.unlink()
        index.vacuum()
        assert not lock.exists()  # released on completion

    def test_pickles_as_path_only_and_reopens(self, tmp_path):
        index = RepositoryIndex(str(tmp_path))
        index.record_session(
            scope="s", class_name="car", chunk_sig="c", num_chunks=1,
            trace=_trace([0]),
        )
        index._load()  # populate the in-memory merge cache
        clone = pickle.loads(pickle.dumps(index))
        assert clone.path == index.path
        assert clone._cache_state is None  # contents did not travel
        n, _ = clone.counts_for("s", "car", "c")
        assert n.tolist() == [1]

    def test_writers_never_share_files(self, tmp_path):
        index_a = RepositoryIndex(str(tmp_path))
        index_b = RepositoryIndex(str(tmp_path))
        index_a.record_session(
            scope="s", class_name="car", chunk_sig="c", num_chunks=1,
            trace=_trace([0]),
        )
        index_b.record_session(
            scope="s", class_name="car", chunk_sig="c", num_chunks=1,
            trace=_trace([0]),
        )
        # Both writes landed as distinct segments and both are readable
        # from either handle — the append-only format needs no lock.
        assert index_a.stats().segment_files == 2
        n, _ = index_b.counts_for("s", "car", "c")
        assert n.tolist() == [2]


# ---------------------------------------------------------------------------
# Engine integration: record, replay, warm-start.
# ---------------------------------------------------------------------------


@pytest.fixture()
def dataset():
    return make_tiny_dataset(seed=6)


QUERY = DistinctObjectQuery("bicycle", limit=4)


class TestEngineRecording:
    def test_completed_run_records_all_three_layers(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        outcome = engine.run(QUERY, run_seed=0)
        stats = engine.index.stats()
        assert stats.outcomes == 1
        assert stats.total_samples == outcome.trace.num_samples
        assert stats.detection_rows == outcome.trace.num_samples
        scope = engine.detector.cache_scope()
        assert stats.scopes == (scope,)

    def test_detection_rows_preload_into_fresh_engine(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        outcome = engine.run(QUERY, run_seed=0)
        fresh = QueryEngine(dataset, seed=6, index=str(tmp_path))
        assert len(fresh.detection_cache) == outcome.trace.num_samples

    def test_recording_failure_never_breaks_the_query(
        self, dataset, tmp_path, monkeypatch, caplog
    ):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))

        def boom(**kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(engine.index, "record_session", boom)
        with caplog.at_level(logging.WARNING):
            outcome = engine.run(QUERY, run_seed=0)
        assert outcome.num_results >= 4
        assert any("on_complete" in r.message for r in caplog.records)

    def test_index_off_by_default(self, dataset):
        engine = QueryEngine(dataset, seed=6)
        assert engine.index is None
        session = engine.session(QUERY, run_seed=0)
        assert session.on_complete is None


class TestReplay:
    def test_exact_repeat_replays_with_zero_detector_calls(
        self, dataset, tmp_path
    ):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        cold = engine.run(QUERY, run_seed=0)
        repeat = QueryEngine(dataset, seed=6, index=str(tmp_path))
        session = repeat.session(QUERY, run_seed=0)
        assert isinstance(session, ReplaySession)
        assert session.replayed
        replayed = session.run_to_completion()
        assert repeat.detector.detect_calls == 0
        assert_traces_identical(replayed.trace, cold.trace)
        # Byte-identity: the replay carries the exact bytes the original
        # live run serialised to.
        assert session.outcome_blob == pickle.dumps(
            cold, protocol=pickle.HIGHEST_PROTOCOL
        )

    def test_replay_streams_the_original_terminal_event(
        self, dataset, tmp_path
    ):
        from repro.query.session import BudgetExhausted

        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        cold = engine.run(QUERY, run_seed=0)
        session = engine.session(QUERY, run_seed=0)
        events = list(session.stream())
        assert len(events) == 1
        assert isinstance(events[0], BudgetExhausted)
        assert events[0].num_samples == cold.trace.num_samples

    def test_replay_does_not_re_record(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        engine.run(QUERY, run_seed=0)
        engine.run(QUERY, run_seed=0)  # replay
        assert engine.index.stats().outcomes == 1

    def test_digest_misses_run_live(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        engine.run(QUERY, run_seed=0)
        for kwargs in (
            {"run_seed": 1},
            {"run_seed": 0, "method": "random"},
        ):
            assert not engine.session(QUERY, **kwargs).replayed
        other_query = DistinctObjectQuery("bicycle", limit=3)
        assert not engine.session(other_query, run_seed=0).replayed

    def test_different_engine_seed_never_replays(self, dataset, tmp_path):
        QueryEngine(dataset, seed=6, index=str(tmp_path)).run(QUERY, run_seed=0)
        other = QueryEngine(dataset, seed=7, index=str(tmp_path))
        session = other.session(QUERY, run_seed=0)
        assert not session.replayed


class TestWarmStart:
    def test_warm_run_gets_vector_priors_from_counts(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        cold = engine.run(QUERY, run_seed=0)
        warm_session = engine.session(QUERY, run_seed=1)
        config = warm_session.search_run.searcher.config
        num_chunks = dataset.chunk_map.sizes().size
        assert isinstance(config.alpha0, np.ndarray)
        assert config.alpha0.shape == (num_chunks,)
        assert isinstance(config.beta0, np.ndarray)
        # The recorded samples are the prior's pseudo-observations.
        assert float(np.sum(config.beta0)) == pytest.approx(
            num_chunks * 1.0 + cold.trace.num_samples
        )
        warm = warm_session.run_to_completion()
        assert warm.num_results >= 4

    def test_warm_start_reaches_target_with_fewer_samples(
        self, dataset, tmp_path
    ):
        """On the hotspot-skewed class, earned knowledge must pay off.

        Any single seed pair can be lucky either way, so the claim is
        aggregated over several run seeds — deterministic given the seeds.
        Warm runs record as they go, so later seeds are progressively
        warmer; that compounding is the index working as designed.
        """
        cold_engine = QueryEngine(dataset, seed=6)
        cold = sum(
            cold_engine.run(QUERY, run_seed=s).trace.num_samples
            for s in range(1, 7)
        )
        warm_engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        warm_engine.run(QUERY, run_seed=0)  # seeds the index
        warm = sum(
            warm_engine.run(QUERY, run_seed=s).trace.num_samples
            for s in range(1, 7)
        )
        assert warm < cold

    def test_explicit_config_suppresses_warm_start(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        engine.run(QUERY, run_seed=0)
        config = ExSampleConfig(seed=1)
        session = engine.session(QUERY, run_seed=1, config=config)
        assert session.search_run.searcher.config is config

    def test_warm_start_folds_batch_size(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        engine.run(QUERY, run_seed=0)
        session = engine.session(QUERY, run_seed=1, batch_size=4)
        config = session.search_run.searcher.config
        assert config.batch_size == 4
        assert isinstance(config.alpha0, np.ndarray)

    def test_other_classes_start_uniform(self, dataset, tmp_path):
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        engine.run(QUERY, run_seed=0)
        session = engine.session(
            DistinctObjectQuery("car", limit=3), run_seed=0
        )
        config = session.search_run.searcher.config
        assert np.ndim(config.alpha0) == 0


# ---------------------------------------------------------------------------
# Invalidation: a stale index is ignored with a warning, never adopted.
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_mutated_world_ignores_index(self, dataset, tmp_path, caplog):
        QueryEngine(dataset, seed=6, index=str(tmp_path)).run(QUERY, run_seed=0)
        mutated = make_tiny_dataset(seed=7)  # different world content
        with caplog.at_level(logging.WARNING, logger="repro.index"):
            engine = QueryEngine(mutated, seed=6, index=str(tmp_path))
        assert any("ignoring the index" in r.message for r in caplog.records)
        assert len(engine.detection_cache) == 0  # nothing preloaded
        session = engine.session(QUERY, run_seed=0)
        assert not session.replayed  # different scope -> different digest
        assert np.ndim(session.search_run.searcher.config.alpha0) == 0

    def test_different_detector_seed_ignores_index(
        self, dataset, tmp_path, caplog
    ):
        QueryEngine(dataset, seed=6, index=str(tmp_path)).run(QUERY, run_seed=0)
        with caplog.at_level(logging.WARNING, logger="repro.index"):
            engine = QueryEngine(dataset, seed=13, index=str(tmp_path))
        assert any("ignoring the index" in r.message for r in caplog.records)
        outcome = engine.run(QUERY, run_seed=0)  # runs fine, no crash
        assert outcome.num_results >= 4
        # Both identities now coexist in one directory, cleanly keyed.
        assert len(engine.index.stats().scopes) == 2

    def test_foreign_knowledge_matches_fresh_run_exactly(
        self, dataset, tmp_path
    ):
        """An ignored index must leave traces byte-identical to no index."""
        QueryEngine(dataset, seed=6, index=str(tmp_path)).run(QUERY, run_seed=0)
        bare = QueryEngine(dataset, seed=13).run(QUERY, run_seed=0)
        indexed = QueryEngine(dataset, seed=13, index=str(tmp_path)).run(
            QUERY, run_seed=0
        )
        assert_traces_identical(bare.trace, indexed.trace)


# ---------------------------------------------------------------------------
# Serving: the event-loop driver records through the same hook.
# ---------------------------------------------------------------------------


class TestServingIntegration:
    def test_run_many_records_and_replays(self, dataset, tmp_path):
        queries = [
            DistinctObjectQuery("bicycle", limit=3),
            DistinctObjectQuery("car", limit=3),
        ]
        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        first = engine.run_many(queries)
        assert engine.index.stats().outcomes == 2
        repeat_engine = QueryEngine(dataset, seed=6, index=str(tmp_path))
        second = repeat_engine.run_many(queries)
        assert repeat_engine.detector.detect_calls == 0
        for a, b in zip(first, second):
            assert_traces_identical(a.trace, b.trace)

    def test_server_submit_records(self, dataset, tmp_path):
        import asyncio

        engine = QueryEngine(dataset, seed=6, index=str(tmp_path))

        async def _go():
            server = engine.serve()
            handle = await server.submit(QUERY, run_seed=0)
            await handle.result()
            await server.drain()

        asyncio.run(_go())
        assert engine.index.stats().outcomes == 1


class TestFleetSharedIndex:
    def test_one_index_serves_every_shard(self, tmp_path):
        from repro.serving.fleet import FleetConfig, outcome_of, run_fleet
        from repro.serving.workload import WorkloadItem

        dataset = make_tiny_dataset(seed=11)
        items = [
            WorkloadItem(object="car", limit=3, method="exsample",
                         run_seed=seed, tenant=f"t{seed}")
            for seed in range(3)
        ]
        config = FleetConfig(n_shards=2, index=str(tmp_path / "idx"))
        summaries, _ = run_fleet(dataset, items, config=config, engine_seed=11)
        assert all(s["state"] == "finished" for s in summaries)
        index = RepositoryIndex(str(tmp_path / "idx"))
        assert index.stats().outcomes == 3
        # Knowledge earned inside the fleet replays on a solo engine built
        # against the same dataset and engine seed.
        solo = QueryEngine(dataset, seed=11, index=str(tmp_path / "idx"))
        session = solo.session(items[0].query(), run_seed=0)
        assert session.replayed
        replayed = session.run_to_completion()
        assert solo.detector.detect_calls == 0
        assert_traces_identical(
            replayed.trace, outcome_of(summaries[0]).trace
        )


# ---------------------------------------------------------------------------
# CLI: index build | stats | vacuum, and --index on query.
# ---------------------------------------------------------------------------


class TestIndexCli:
    def test_build_stats_vacuum_round_trip(self, tmp_path, capsys):
        import io

        from repro.cli import main

        path = str(tmp_path / "idx")
        args = ["--path", path, "--dataset", "dashcam",
                "--object", "traffic light", "--limit", "4",
                "--runs", "2", "--scale", "0.02"]
        out = io.StringIO()
        assert main(["index", "build", *args], out=out) == 0
        assert "live" in out.getvalue()
        out = io.StringIO()
        assert main(["index", "stats", "--path", path], out=out) == 0
        assert "2 recorded outcome(s)" in out.getvalue()
        out = io.StringIO()
        assert main(["index", "vacuum", "--path", path], out=out) == 0
        assert "compacted store" in out.getvalue()
        # A rebuilt run over the vacuumed index replays both seeds.
        out = io.StringIO()
        assert main(["index", "build", *args], out=out) == 0
        assert out.getvalue().count("replayed") == 2

    def test_query_index_flag(self, tmp_path):
        import io

        from repro.cli import main

        path = str(tmp_path / "idx")
        args = ["query", "--dataset", "dashcam", "--object", "traffic light",
                "--limit", "4", "--scale", "0.02", "--index", path]
        first, second = io.StringIO(), io.StringIO()
        assert main(args, out=first) == 0
        assert main(args, out=second) == 0
        assert first.getvalue() == second.getvalue()
        assert RepositoryIndex(path).stats().outcomes == 1
