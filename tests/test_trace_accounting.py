"""Regression tests for trace counters and curve vectorisation.

Covers two satellite fixes:

* ``SearchTrace.results_at_samples`` was a Python loop over the grid; the
  vectorised version must agree with the loop semantics exactly.
* ``_TraceBuilder.num_results`` fell back to ``len(results)`` whenever any
  payload existed, undercounting in environments that attach payloads to
  only *some* frames; d0 totals are authoritative.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.environment import CallbackEnvironment, Observation
from repro.core.sampler import SearchTrace, Searcher, _TraceBuilder


def _make_trace(d0s):
    n = len(d0s)
    return SearchTrace(
        chunks=np.zeros(n, dtype=np.int64),
        frames=np.arange(n, dtype=np.int64),
        d0s=np.asarray(d0s, dtype=np.int64),
        d1s=np.zeros(n, dtype=np.int64),
        costs=np.ones(n, dtype=float),
    )


def _results_at_samples_loop(trace, grid):
    """The historical reference implementation (pre-vectorisation)."""
    curve = trace.discovery_curve()
    grid_arr = np.asarray(grid, dtype=np.int64)
    out = np.zeros(grid_arr.shape, dtype=float)
    for i, g in enumerate(grid_arr):
        if g <= 0 or curve.size == 0:
            out[i] = 0.0
        else:
            out[i] = curve[min(g, curve.size) - 1]
    return out


class TestResultsAtSamplesVectorised:
    @given(
        d0s=st.lists(st.integers(min_value=0, max_value=3), max_size=60),
        grid=st.lists(st.integers(min_value=-5, max_value=120), max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_loop_reference(self, d0s, grid):
        trace = _make_trace(d0s)
        got = trace.results_at_samples(grid)
        want = _results_at_samples_loop(trace, grid)
        assert np.array_equal(got, want)

    def test_saturates_past_the_end(self):
        trace = _make_trace([1, 0, 2, 0])
        out = trace.results_at_samples([1, 2, 3, 4, 100])
        assert out.tolist() == [1.0, 1.0, 3.0, 3.0, 3.0]

    def test_empty_trace_and_nonpositive_grid(self):
        assert _make_trace([]).results_at_samples([0, 1, 5]).tolist() == [0, 0, 0]
        assert _make_trace([2]).results_at_samples([-1, 0]).tolist() == [0, 0]


class TestNumResultsMixedPayloads:
    def test_builder_counts_d0_totals(self):
        builder = _TraceBuilder("test")
        builder.record(0, 0, Observation(d0=1, d1=0, results=["payload"], cost=1.0))
        builder.record(0, 1, Observation(d0=1, d1=0, results=[], cost=1.0))
        builder.record(0, 2, Observation(d0=2, d1=0, results=["only-one"], cost=1.0))
        # 4 discoveries; only 2 carried payloads. d0 is authoritative.
        assert builder.num_results == 4
        assert builder.build().num_results == 4

    def test_run_stops_on_result_limit_without_payloads(self):
        """A payload-less environment must still trip result_limit."""

        def observe(chunk, frame):
            # One new object per frame, never a payload.
            return Observation(d0=1, d1=0, results=[], cost=1.0)

        env = CallbackEnvironment([100], observe)

        class OneByOne(Searcher):
            name = "one-by-one"

            def __init__(self, env):
                super().__init__(env)
                self._next = 0

            def pick_batch(self):
                if self._next >= 100:
                    return []
                self._next += 1
                return [(0, self._next - 1)]

        trace = OneByOne(env).run(result_limit=7)
        assert trace.num_samples == 7
        assert trace.num_results == 7

    def test_run_stops_with_mixed_payload_frames(self):
        """Alternating payload/no-payload frames stop at the d0 count."""

        def observe(chunk, frame):
            payload = ["obj"] if frame % 2 == 0 else []
            return Observation(d0=1, d1=0, results=payload, cost=1.0)

        env = CallbackEnvironment([100], observe)

        class OneByOne(Searcher):
            name = "one-by-one"

            def __init__(self, env):
                super().__init__(env)
                self._next = 0

            def pick_batch(self):
                if self._next >= 100:
                    return []
                self._next += 1
                return [(0, self._next - 1)]

        trace = OneByOne(env).run(result_limit=6)
        # Historically this ran to 11 samples (len(results) counted only
        # the even frames); d0 accounting stops at exactly 6.
        assert trace.num_samples == 6
        assert trace.num_results == 6
