"""When does a proxy model pay off? The Table I comparison, interactively.

Proxy-based systems (BlazeIt) score every frame with a cheap model before
processing any frame with the detector. This example reproduces the paper's
§V-B point on one query: by the time the proxy scan finishes, ExSample —
which starts producing results immediately — has already found most
instances. It also sweeps the proxy's quality to show that even a *perfect*
ranker cannot recover the scan cost on limit queries.

Run:  python examples/proxy_vs_sampling.py
"""

from repro import DistinctObjectQuery, QueryEngine, make_dataset
from repro.query import time_to_recall
from repro.utils.tables import ascii_table, format_duration


def main() -> None:
    dataset = make_dataset("night_street", scale=0.05, seed=11)
    engine = QueryEngine(dataset, seed=11)
    class_name = "person"
    scan_seconds = engine.cost_model.scan_cost(dataset.total_frames)
    print(
        f"dataset: {dataset.total_frames} frames; a proxy scan alone costs "
        f"{format_duration(scan_seconds)} at 100 fps"
    )

    query = DistinctObjectQuery(
        class_name, recall_target=0.9, frame_budget=dataset.total_frames
    )
    rows = []
    ex = engine.run(query, method="exsample")
    for recall in (0.1, 0.5, 0.9):
        t = time_to_recall(ex.trace, ex.gt_count, recall)
        rows.append(
            ("exsample", f"{recall:.0%}", format_duration(t) if t else "-")
        )
    for quality in (0.7, 0.9, 0.99):
        px = engine.run(query, method="proxy", proxy_quality=quality)
        for recall in (0.1, 0.5, 0.9):
            t = time_to_recall(px.trace, px.gt_count, recall)
            rows.append(
                (
                    f"proxy (AUC {quality})",
                    f"{recall:.0%}",
                    format_duration(t) if t else "-",
                )
            )
    print(
        ascii_table(
            ["method", "recall", "time (incl. any scan)"],
            rows,
            title="time to recall — sampling starts instantly, proxies pay the scan first",
        )
    )
    print(
        "\nEvery proxy row is bounded below by the scan time "
        f"({format_duration(scan_seconds)}); ExSample reaches 90% recall "
        "before any proxy returns its first result."
    )


if __name__ == "__main__":
    main()
