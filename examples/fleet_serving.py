"""Sharded serving fleet: shard processes, a tenant router, live migration.

One server process means one GIL and one event loop; the fleet layer
scales the serving story sideways. A :class:`repro.serving.FleetRouter`
spawns N shard server processes — each owning a full engine over a
shared-memory world segment and one cross-process detection cache — and
routes every submission by a placement policy (tenant-affine hashing
here). Shards speak the newline-delimited JSON wire protocol
(:mod:`repro.serving.net`), so everything below also works against
``repro serve --listen`` across machines.

Three properties are demonstrated (and asserted):

* **tenant-affine placement** — one tenant's queries stay on one shard,
  keeping its detection locality in a single process;
* **live migration** — a session is paused on its shard, its checkpoint
  shipped over the wire, and resumed on another shard mid-search;
* **the fleet never changes results** — every outcome, including the
  migrated one, is element-wise identical to the same (query, method,
  run_seed) run alone.

Run:  python examples/fleet_serving.py
"""

import asyncio

import numpy as np

from repro import DistinctObjectQuery, QueryEngine, make_dataset
from repro.serving import FleetRouter, WorkloadItem

DATASET_KWARGS = dict(name="dashcam", scale=0.02, seed=7)
ENGINE_SEED = 7
WORKLOAD = [
    # (tenant, class, limit, run_seed)
    ("alice", "person", 3, 0),
    ("bob", "person", 3, 1),
    ("alice", "traffic light", 2, 2),
    ("bob", "bicycle", 2, 3),
]


async def serve(dataset):
    router = await FleetRouter.launch(
        dataset, n_shards=2, placement="hash_tenant", engine_seed=ENGINE_SEED
    )
    try:
        handles = [
            await router.submit(
                WorkloadItem(
                    object=class_name,
                    limit=limit,
                    run_seed=run_seed,
                    tenant=tenant,
                )
            )
            for tenant, class_name, limit, run_seed in WORKLOAD
        ]
        outcomes = [await handle.result() for handle in handles]

        # Live migration: stage a fifth query with pause_after, then move
        # it to the other shard mid-search. Its trace must come out as if
        # nothing happened.
        mover = await router.submit(
            WorkloadItem(
                object="person",
                limit=3,
                run_seed=9,
                tenant="carol",
                shard=0,
                pause_after=1,
            )
        )
        if await mover.wait() == "paused":
            await router.migrate(mover, to_shard=1)
        moved_outcome = await mover.result()

        stats = await router.stats()
        return handles, outcomes, mover, moved_outcome, stats
    finally:
        await router.shutdown()


def main() -> None:
    dataset = make_dataset(**DATASET_KWARGS)
    print(f"launching a 2-shard fleet over {DATASET_KWARGS['name']}...")
    handles, outcomes, mover, moved_outcome, stats = asyncio.run(
        serve(dataset)
    )

    by_tenant = {}
    for (tenant, class_name, _limit, _run_seed), handle, outcome in zip(
        WORKLOAD, handles, outcomes
    ):
        by_tenant.setdefault(tenant, set()).add(handle.shard)
        print(
            f"  {tenant:5s} {class_name:13s} -> shard {handle.shard}, "
            f"{outcome.num_results} results in "
            f"{outcome.trace.num_samples} frames"
        )
    print(
        f"  carol person        -> shard {mover.shard} "
        f"(migrated x{mover.migrations}), {moved_outcome.num_results} "
        f"results in {moved_outcome.trace.num_samples} frames"
    )
    # Tenant-affine placement: each tenant's queries share one shard.
    assert all(len(shards) == 1 for shards in by_tenant.values())

    print()
    print(stats.describe())

    # The fleet changed where sessions ran, never what they returned.
    solo = QueryEngine(make_dataset(**DATASET_KWARGS), seed=ENGINE_SEED)
    checked = list(zip(WORKLOAD, outcomes))
    checked.append((("carol", "person", 3, 9), moved_outcome))
    for (_tenant, class_name, limit, run_seed), outcome in checked:
        reference = solo.run(
            DistinctObjectQuery(class_name, limit=limit), run_seed=run_seed
        )
        assert np.array_equal(reference.trace.chunks, outcome.trace.chunks)
        assert np.array_equal(reference.trace.frames, outcome.trace.frames)
        assert np.array_equal(reference.trace.costs, outcome.trace.costs)
        assert reference.trace.results == outcome.trace.results
    print()
    print(
        f"{len(checked)} outcomes identical to solo runs "
        f"({stats.migrations} migrated); "
        f"shared cache: {stats.cache.hits} hits / {stats.cache.misses} misses"
    )


if __name__ == "__main__":
    main()
