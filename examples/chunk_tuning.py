"""How many chunks? Reproducing the §IV-C trade-off on a controlled workload.

One chunk makes ExSample equal to random sampling; one chunk per frame does
too (nothing to learn per chunk). This example sweeps the chunk count on a
skewed synthetic workload, prints the discovery trajectory for each setting,
and shows the AutoChunker heuristic picking a sensible middle ground from an
anticipated sampling budget.

It then sweeps the §III-F *batch size*: larger batches amortise per-frame
overhead (modelled by ``CostModel.batched_sample_cost``) but take ``B``
Thompson draws from the same beliefs, so the sampler reacts to feedback a
step later. The run loop consumes each batch incrementally and stops the
moment a limit is crossed, so batching never changes *where* a search stops
— only how fast it gets there.

Run:  python examples/chunk_tuning.py
"""

from repro.core import ExSampleConfig, ExSampleSearcher
from repro.query.cost import CostModel
from repro.theory import InstancePopulation, TemporalEnvironment
from repro.utils.rng import spawn_rng
from repro.utils.tables import ascii_table, sparkline
from repro.video import AutoChunker, make_dataset


def main() -> None:
    total_frames = 1_000_000
    budget = 4000
    population = InstancePopulation.place(
        1000, total_frames, 700, spawn_rng(5, "pop"), skew_fraction=1 / 32
    )
    rows = []
    for num_chunks in (1, 4, 32, 128, 1024):
        env = TemporalEnvironment.with_even_chunks(population, num_chunks)
        searcher = ExSampleSearcher(env, ExSampleConfig(seed=5))
        trace = searcher.run(frame_budget=budget)
        curve = trace.discovery_curve()
        rows.append(
            (
                num_chunks,
                trace.num_results,
                sparkline(curve, width=30),
            )
        )
    print(
        ascii_table(
            ["chunks", f"found in {budget} samples", "trajectory"],
            rows,
            title="chunk-count sweep on a skew-1/32 workload (1000 instances)",
        )
    )

    # -- batched execution (§III-F) --------------------------------------
    # One batch = one round of Thompson draws + one detector invocation
    # covering B frames. The GPU-batching cost model says what B buys in
    # per-frame seconds; the found-at-budget column shows the (mild) price
    # of acting on a B-frames-stale belief. Mid-batch stopping keeps every
    # run's endpoint exact regardless of B.
    cost_model = CostModel()
    batch_rows = []
    for batch_size in (1, 8, 64):
        env = TemporalEnvironment.with_even_chunks(population, 128)
        searcher = ExSampleSearcher(
            env, ExSampleConfig(seed=5, batch_size=batch_size)
        )
        trace = searcher.run(frame_budget=budget)
        per_frame_s = cost_model.batched_sample_cost(batch_size)
        batch_rows.append(
            (
                batch_size,
                trace.num_results,
                f"{per_frame_s * 1e3:.1f} ms",
                f"{trace.num_samples * per_frame_s:.0f} s",
            )
        )
    print()
    print(
        ascii_table(
            ["batch", f"found in {budget}", "s/frame (GPU model)", "total time"],
            batch_rows,
            title="batch-size sweep: overhead amortisation vs belief staleness",
        )
    )

    # The AutoChunker picks M from the anticipated budget (§VII).
    dataset = make_dataset("dashcam", scale=0.05, seed=5)
    chunker = AutoChunker(expected_budget=budget)
    chosen = chunker.target_chunks(dataset.repository)
    print(
        f"\nAutoChunker: for a budget of {budget} samples over "
        f"{dataset.total_frames} frames it picks M={chosen} chunks "
        f"(~{budget // chosen} samples per chunk to learn from)"
    )


if __name__ == "__main__":
    main()
