"""The §VII fusion extension: proxy scores without a full upfront scan.

Plain ExSample never looks at a proxy; BlazeIt scores every frame before
returning anything. The fusion searcher sits in between: ExSample chooses
chunks, and a chunk is only scored — paying that chunk's scan cost — after
Thompson sampling has returned to it enough times to prove it interesting.
Whether the trade wins depends on how expensive the detector is relative to
the scan; this example sweeps that ratio and prints the crossover.

Run:  python examples/fusion_search.py
"""

from repro import CostModel, DistinctObjectQuery, QueryEngine, make_dataset
from repro.query import time_to_recall
from repro.utils.tables import ascii_table, format_duration


def main() -> None:
    dataset = make_dataset("dashcam", scale=0.05, seed=0)
    class_name = "bicycle"  # rare and clustered: ExSample's favourite prey
    query = DistinctObjectQuery(
        class_name, recall_target=0.9, frame_budget=dataset.total_frames
    )
    print(
        f"query: 90% of the {dataset.gt_count(class_name)} distinct "
        f"{class_name}s in {dataset.total_frames} frames\n"
    )

    rows = []
    for detector_fps in (20.0, 5.0, 2.0):
        engine = QueryEngine(
            dataset, cost_model=CostModel(detector_fps=detector_fps), seed=0
        )
        row = [f"{detector_fps:g} fps"]
        for method in ("exsample", "exsample_fusion", "proxy"):
            outcome = engine.run(query, method=method)
            seconds = time_to_recall(outcome.trace, outcome.gt_count, 0.9)
            row.append(
                "-"
                if seconds is None
                else f"{format_duration(seconds)} ({outcome.trace.num_samples}f)"
            )
        rows.append(row)
    print(
        ascii_table(
            ["detector", "exsample", "exsample_fusion", "proxy (full scan)"],
            rows,
            title="time to 90% recall (and detector frames used)",
        )
    )
    print(
        "\nAt the paper's 20 fps detector, plain ExSample wins — scans are "
        "too dear.\nAs the detector gets heavier, fusion's smaller frame "
        "count takes over, while\nthe full-scan proxy stays hostage to its "
        "upfront cost. This is the §VII\ntrade-off, made concrete."
    )


if __name__ == "__main__":
    main()
