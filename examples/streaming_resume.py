"""Streaming + checkpoint/resume: stop a search halfway, finish it elsewhere.

ExSample is an anytime algorithm, and the session API exposes that: this
example streams a query's results as they are found, pauses at the halfway
mark, checkpoints the complete search state to disk, then *restores it in a
fresh Python process* and streams the remaining results. The final
discovery curve merges both halves seamlessly — it is byte-identical to the
curve of a never-interrupted run, which the example verifies.

Run:  python examples/streaming_resume.py
"""

import os
import subprocess
import sys
import tempfile

import numpy as np

import repro
from repro import DistinctObjectQuery, QueryEngine, QuerySession, make_dataset
from repro.query.session import BudgetExhausted, ResultFound

LIMIT = 12
DATASET_KWARGS = dict(name="dashcam", scale=0.02, seed=7)


def build_engine() -> QueryEngine:
    return QueryEngine(make_dataset(**DATASET_KWARGS), seed=7)


def stream_until(session: QuerySession, stop_after_results: int | None) -> None:
    """Print events as they arrive; pause once enough results are in."""
    for event in session.stream():
        if isinstance(event, ResultFound):
            found = event.result
            print(
                f"  result #{event.num_results:2d}: video {found.video} "
                f"frame {found.frame:6d} (after {event.sample_index} frames)"
            )
            if (
                stop_after_results is not None
                and event.num_results >= stop_after_results
            ):
                session.pause()
        elif isinstance(event, BudgetExhausted):
            print(
                f"  finished ({event.reason}): {event.num_results} results "
                f"in {event.num_samples} frames"
            )


def resume(path: str) -> None:
    """Phase 2, running in a fresh process: restore and finish the search."""
    session = QuerySession.restore(path)
    print(
        f"[child pid {os.getpid()}] restored at {session.num_results} results / "
        f"{session.num_samples} frames; continuing"
    )
    stream_until(session, stop_after_results=None)
    curve = session.trace().discovery_curve()
    print("merged discovery curve (results after each sampled frame):")
    print("  " + np.array2string(curve, max_line_width=72))

    # The acid test: identical to a run that was never interrupted.
    uninterrupted = build_engine().run(
        DistinctObjectQuery("person", limit=LIMIT), method="exsample"
    )
    assert np.array_equal(curve, uninterrupted.trace.discovery_curve())
    print("verified: merged curve == uninterrupted run's curve")


def main() -> None:
    if len(sys.argv) > 2 and sys.argv[1] == "--resume":
        resume(sys.argv[2])
        return

    engine = build_engine()
    session = engine.session(
        DistinctObjectQuery("person", limit=LIMIT), method="exsample"
    )
    print(f"[parent pid {os.getpid()}] streaming until {LIMIT // 2} results:")
    stream_until(session, stop_after_results=LIMIT // 2)

    handle, path = tempfile.mkstemp(suffix=".ckpt", prefix="exsample-session-")
    os.close(handle)
    try:
        blob = session.checkpoint(path)
        print(
            f"checkpointed {len(blob)} bytes at {session.num_results} results / "
            f"{session.num_samples} frames"
        )

        # Finish the search in a brand-new interpreter: nothing survives but
        # the checkpoint file.
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--resume", path],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        sys.stdout.write(child.stdout)
        if child.returncode != 0:
            sys.stderr.write(child.stderr)
            raise RuntimeError(f"resume process failed ({child.returncode})")
    finally:
        os.unlink(path)


if __name__ == "__main__":
    main()
