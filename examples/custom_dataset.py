"""Bring your own repository: building a custom dataset from scratch.

The six built-in datasets mirror the paper's evaluation, but the public API
lets you model any deployment: define the videos, describe where each object
class lives (counts, durations, placement skew), pick a chunking policy, and
query it. This example models a two-camera parking facility — one entrance
camera (bursty deliveries) and one rooftop camera (steady traffic) — and
shows ExSample discovering the entrance bursts on its own.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.query import DistinctObjectQuery, QueryEngine
from repro.theory import SkewSummary
from repro.video import (
    ClassSpec,
    Dataset,
    FixedDurationChunker,
    Video,
    VideoRepository,
    build_world,
)


def build_parking_dataset(seed: int = 0) -> Dataset:
    fps = 15.0
    hour = int(3600 * fps)
    repository = VideoRepository(
        [
            Video("entrance", num_frames=hour, fps=fps, width=1280, height=720),
            Video("rooftop", num_frames=hour, fps=fps, width=1280, height=720),
        ]
    )
    world = build_world(
        repository,
        [
            # Delivery vans cluster around two delivery windows.
            ClassSpec(
                "delivery van",
                count=40,
                mean_duration_s=45.0,
                skew=("hotspots", 2, 0.06),
                size_range=(120, 320),
            ),
            # Cars flow steadily all day.
            ClassSpec(
                "car",
                count=400,
                mean_duration_s=20.0,
                skew=("uniform",),
                size_range=(80, 240),
            ),
            # Pedestrians peak around shift change (one broad bump).
            ClassSpec(
                "person",
                count=150,
                mean_duration_s=12.0,
                skew=("normal", 0.4),
                size_range=(40, 120),
            ),
        ],
        seed=seed,
    )
    chunk_map = FixedDurationChunker(minutes=5.0).chunk(repository)
    return Dataset(
        name="parking",
        repository=repository,
        world=world,
        chunk_map=chunk_map,
        camera="static",
    )


def main() -> None:
    dataset = build_parking_dataset(seed=4)
    print(
        f"custom dataset: {dataset.total_frames} frames across "
        f"{dataset.repository.num_videos} cameras, "
        f"{dataset.chunk_map.num_chunks} five-minute chunks"
    )
    for class_name in dataset.classes:
        summary = SkewSummary.from_counts(dataset.skew_counts(class_name))
        print(f"  {class_name:13s} N={summary.total_instances:4d} S={summary.skew:5.1f}")

    engine = QueryEngine(dataset, seed=4)
    query = DistinctObjectQuery("delivery van", limit=20)
    exsample = engine.run(query, method="exsample")
    random = engine.run(query, method="random")
    print(
        f"\nfind 20 delivery vans: exsample {exsample.trace.num_samples} frames, "
        f"random {random.trace.num_samples} frames "
        f"({random.trace.num_samples / max(exsample.trace.num_samples, 1):.1f}x)"
    )

    allocation = np.bincount(
        exsample.trace.chunks, minlength=dataset.chunk_map.num_chunks
    )
    hot = np.argsort(allocation)[::-1][:3]
    print("ExSample's three hottest chunks (it found the delivery windows):")
    for chunk in hot:
        c = dataset.chunk_map.chunks[chunk]
        video = dataset.repository.videos[c.video].name
        minute = c.start / dataset.repository.videos[c.video].fps / 60
        print(
            f"  chunk {chunk:2d} ({video}, minute {minute:4.0f}): "
            f"{allocation[chunk]} samples"
        )


if __name__ == "__main__":
    main()
