"""Quickstart: find 20 distinct traffic lights in a dashcam repository.

This is the paper's motivating query ("find 100 traffic lights in dashcam
video") at example scale. It builds a synthetic dashcam dataset, runs
ExSample and the random-sampling baseline, and reports how many frames each
needed — the quantity the whole paper is about minimising.

Run:  python examples/quickstart.py
"""

from repro import DistinctObjectQuery, QueryEngine, make_dataset
from repro.utils.tables import format_duration


def main() -> None:
    # A 30-minute synthetic stand-in for the paper's 10-hour dashcam set.
    dataset = make_dataset("dashcam", scale=0.05, seed=7)
    print(
        f"dataset: {dataset.name} — {dataset.total_frames} frames, "
        f"{dataset.chunk_map.num_chunks} chunks, "
        f"{dataset.gt_count('traffic light')} distinct traffic lights"
    )

    engine = QueryEngine(dataset, seed=7)
    query = DistinctObjectQuery("traffic light", limit=20)

    for method in ("exsample", "random"):
        outcome = engine.run(query, method=method)
        trace = outcome.trace
        print(
            f"{method:9s}: {trace.num_results} results in "
            f"{trace.num_samples} detector frames "
            f"({format_duration(trace.total_cost)} of GPU time at 20 fps)"
        )

    # Show a few of the returned objects.
    outcome = engine.run(query, method="exsample")
    print("\nfirst five results (video, frame, confidence):")
    for found in outcome.found[:5]:
        print(
            f"  video {found.video:3d} frame {found.frame:6d} "
            f"score {found.score:.2f} box {tuple(round(c) for c in found.box_xyxy)}"
        )


if __name__ == "__main__":
    main()
