"""Hunting a rare, spatially clustered object: bicycles in dashcam video.

The intro's "autonomous vehicle data scientist looking for a few test
examples" scenario (§V-A). Bicycles in the dashcam dataset are rare (the
paper's N=249 over 10 hours) and heavily clustered (skew S≈14: a couple of
neighbourhoods account for most sightings). This is exactly the regime
ExSample is built for — watch the per-chunk sample allocation concentrate
as the run progresses.

Run:  python examples/rare_object_hunt.py
"""

import numpy as np

from repro import DistinctObjectQuery, ExSampleConfig, QueryEngine, make_dataset
from repro.core import ExSampleSearcher
from repro.theory import SkewSummary


def main() -> None:
    dataset = make_dataset("dashcam", scale=0.1, seed=3)
    class_name = "bicycle"
    print(
        f"{dataset.gt_count(class_name)} distinct bicycles hidden in "
        f"{dataset.total_frames} frames ({dataset.chunk_map.num_chunks} chunks)"
    )
    print("\nwhere they are (chunk histogram; # marks the half-cover set):")
    print(SkewSummary.from_counts(dataset.skew_counts(class_name)).bar_chart())

    engine = QueryEngine(dataset, seed=3)
    env = engine.environment(class_name)
    searcher = ExSampleSearcher(env, ExSampleConfig(seed=3))
    target = max(dataset.gt_count(class_name) // 2, 5)
    trace = searcher.run(result_limit=target)

    print(
        f"\nExSample found {trace.num_results} distinct bicycles in "
        f"{trace.num_samples} sampled frames"
    )
    allocation = np.bincount(trace.chunks, minlength=dataset.chunk_map.num_chunks)
    top = np.argsort(allocation)[::-1][:5]
    print("samples per chunk (top 5):")
    for chunk in top:
        bar = "#" * int(40 * allocation[chunk] / max(allocation.max(), 1))
        print(f"  chunk {chunk:3d}: {allocation[chunk]:5d} {bar}")

    # Compare with what random sampling needs for the same haul.
    rnd_outcome = engine.run(
        DistinctObjectQuery(class_name, limit=target), method="random"
    )
    ratio = rnd_outcome.trace.num_samples / max(trace.num_samples, 1)
    print(
        f"\nrandom sampling needed {rnd_outcome.trace.num_samples} frames "
        f"for the same target — ExSample saved {ratio:.1f}x"
    )


if __name__ == "__main__":
    main()
