"""Async multi-tenant serving: one detector, eight concurrent queries.

The paper's cost model says detector invocations dominate query cost, so a
serving layer should treat the detector as the scarce shared resource —
one "GPU", many tenants. This example runs eight queries from two tenants
concurrently on a :class:`repro.serving.QueryServer`: each session
proposes its next frame batch without blocking, a ``DetectorBatcher``
fuses the pending requests across sessions into large ``detect_batch``
calls, and every tenant shares the engine's detection cache.

Two properties are demonstrated (and asserted):

* **batching shrinks detector calls** — the fused schedule issues far
  fewer detector invocations than per-session stepping would;
* **serving never changes results** — each session's trace is identical
  to running the same (query, method, run_seed) alone.

Run:  python examples/async_serving.py
"""

import asyncio

import numpy as np

from repro import DistinctObjectQuery, QueryEngine, make_dataset

DATASET_KWARGS = dict(name="dashcam", scale=0.02, seed=7)
WORKLOAD = [
    # (tenant, class, limit, run_seed)
    ("alice", "person", 4, 0),
    ("alice", "person", 4, 1),
    ("alice", "traffic light", 3, 2),
    ("bob", "person", 4, 3),
    ("bob", "person", 4, 4),
    ("bob", "traffic light", 3, 5),
    ("bob", "bicycle", 2, 6),
    ("alice", "bicycle", 2, 7),
]
BATCH_SIZE = 4


async def serve(engine: QueryEngine):
    server = engine.serve(max_in_flight=8, max_batch_size=512)
    handles = [
        await server.submit(
            DistinctObjectQuery(class_name, limit=limit),
            run_seed=run_seed,
            tenant=tenant,
            batch_size=BATCH_SIZE,
        )
        for tenant, class_name, limit, run_seed in WORKLOAD
    ]
    outcomes = [await handle.result() for handle in handles]
    return server, outcomes


def main() -> None:
    engine = QueryEngine(make_dataset(**DATASET_KWARGS), seed=7)
    detector = engine.detector

    print(f"serving {len(WORKLOAD)} concurrent queries from 2 tenants...")
    server, outcomes = asyncio.run(serve(engine))
    fused_calls = detector.detect_calls

    for (tenant, class_name, _limit, _run_seed), outcome in zip(WORKLOAD, outcomes):
        print(
            f"  {tenant:5s} {class_name:13s} -> {outcome.num_results} results "
            f"in {outcome.trace.num_samples} frames"
        )

    stats = server.stats()
    print()
    print(stats.describe())

    # Serving changed the detector-call schedule, never a result: every
    # trace equals the same query run alone on a fresh engine.
    solo_engine = QueryEngine(make_dataset(**DATASET_KWARGS), seed=7)
    solo_calls = 0
    for (_tenant, class_name, limit, run_seed), outcome in zip(WORKLOAD, outcomes):
        before = solo_engine.detector.detect_calls
        solo = solo_engine.run(
            DistinctObjectQuery(class_name, limit=limit),
            run_seed=run_seed,
            batch_size=BATCH_SIZE,
        )
        solo_calls += solo_engine.detector.detect_calls - before
        assert np.array_equal(solo.trace.chunks, outcome.trace.chunks)
        assert np.array_equal(solo.trace.frames, outcome.trace.frames)
        assert np.array_equal(solo.trace.costs, outcome.trace.costs)
        assert solo.trace.results == outcome.trace.results
    print()
    print(
        f"detector calls: {fused_calls} fused (server) vs {solo_calls} solo "
        f"-- identical traces, {solo_calls / max(fused_calls, 1):.1f}x fewer calls"
    )
    assert fused_calls < solo_calls


if __name__ == "__main__":
    main()
