"""The environment abstraction binding samplers to substrates.

ExSample's loop (Algorithm 1) needs only two things from the world:

1. how the repository is partitioned into chunks (``chunk_sizes``), and
2. what happens when a frame is processed (``observe``): which detections
   were new (*d0*), which matched an object previously seen exactly once
   (*d1*), what results were produced and what it cost.

Both the *real* pipeline (video repository + simulated detector + tracker
discriminator, :mod:`repro.query.engine`) and the *theory* simulators of
§III-D/§IV (:mod:`repro.theory`) implement this protocol, so the very same
sampler code runs in both worlds — mirroring how the paper's analysis and
system share one algorithm.

Batched observation (§III-F)
----------------------------

The batched-sampling extension exists to amortise per-frame overhead: "on
modern GPUs inference throughput is faster when performed on batches of
images". Environments may therefore implement

    observe_batch(picks) -> List[Observation]

taking a list of ``(chunk, frame)`` pairs and returning one
:class:`Observation` per pick, **in pick order**, with semantics identical
to calling :meth:`~SearchEnvironment.observe` once per pick in that order
(stateful environments must fold each frame into their state before
producing the next observation, exactly as the sequential path would).
Implementing it is optional: the run loop dispatches through
:func:`batched_observe`, which falls back to per-pick ``observe`` calls
when an environment does not provide the method. Vectorised
implementations live in :class:`repro.query.engine.VideoSearchEnvironment`
(batched detector, discriminator and cost-model calls) and
:class:`repro.theory.temporal_sim.TemporalEnvironment`.

The request/fulfil split (serving)
----------------------------------

A serving layer that multiplexes many concurrent searches over one
detector needs to *see* a search's pending frame requests without blocking
on the detector, so it can coalesce requests across sessions into fused
detector batches (see :mod:`repro.serving`). Environments that can
separate "which frames, at what cost" from "what the detections mean"
therefore optionally split ``observe_batch`` into three phases::

    propose_batch(picks)                  -> FrameRequest
    detect_request(request)               -> List[List[detection]]
    ingest_batch(request, detection_lists)-> List[Observation]

``propose_batch`` resolves addresses and costs and names the frames the
detector must process (a :class:`FrameRequest`); ``detect_request`` is the
blocking detector invocation for exactly that request; ``ingest_batch``
folds externally produced detections through the environment's stateful
parts (the discriminator) in pick order. ``observe_batch`` must equal the
composition of the three — the regression suites assert byte-identical
traces — so a blocking caller and a serving event loop run literally the
same computation, merely scheduling the detector differently. Environments
without the split (the theory simulators, plain callables) simply never
offer cross-session batching; :func:`propose_frames` returns None for them
and every driver falls back to :func:`batched_observe`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np


@dataclass
class Observation:
    """Outcome of processing one sampled frame.

    Attributes
    ----------
    d0:
        Number of detections that matched no previous object — these are the
        new distinct results (Algorithm 1's ``d0``).
    d1:
        Number of detections whose matched object had been seen exactly once
        before this frame (Algorithm 1's ``d1``).
    results:
        Opaque result payloads for the ``d0`` new objects (instance ids in
        simulation; detection records in the video pipeline).
    cost:
        Cost of processing this frame in seconds (decode + detect).
    d1_origin_chunks:
        For each ``d1`` match, the chunk where the matched object was
        *first discovered* — or None when the environment cannot tell.
        Feeds the ``cross_chunk="origin"`` accounting mode (the paper's
        footnote 1 / tech-report adjustment): the ``-1`` to N1 is charged
        to the chunk whose N1 the object originally incremented, keeping
        every per-chunk N1 non-negative.
    """

    d0: int
    d1: int
    results: List[object] = field(default_factory=list)
    cost: float = 0.0
    d1_origin_chunks: "List[int] | None" = None


@dataclass
class FrameRequest:
    """The detector-facing half of a proposed observation batch.

    Produced by an environment's ``propose_batch`` and consumed by its
    ``ingest_batch``; in between, *someone* — the environment itself on
    the blocking path, a :class:`repro.serving.DetectorBatcher` on the
    serving path — must produce one detection list per requested frame.

    Attributes
    ----------
    picks:
        The ``(chunk, frame)`` pairs this request covers, in pick order.
    videos, frames:
        The resolved per-pick detector addresses (video id and
        within-video frame), aligned with ``picks``.
    class_filter:
        Class restriction for the detector call, or None for all classes.
        Requests may only be fused into one detector batch when their
        filters agree — filtering happens inside the detector, keyed into
        its cache, so it is part of the request's identity.
    context:
        Environment-private data carried from propose to ingest (the video
        environment stashes per-pick costs here). Opaque to callers.
    """

    picks: List[Tuple[int, int]]
    videos: List[int]
    frames: List[int]
    class_filter: "str | None" = None
    context: object = None

    def __len__(self) -> int:
        return len(self.picks)


@runtime_checkable
class SearchEnvironment(Protocol):
    """What a sampler needs to know about the world."""

    def chunk_sizes(self) -> np.ndarray:
        """Number of sampleable frames per chunk (length M, Algorithm 1)."""
        ...

    def observe(self, chunk: int, frame: int) -> Observation:
        """Decode + detect + discriminate frame ``frame`` of chunk ``chunk``.

        ``frame`` is an index *within* the chunk, in ``[0, chunk_size)``.
        """
        ...

    def observe_batch(self, picks: Sequence[Tuple[int, int]]) -> List[Observation]:
        """Observe many ``(chunk, frame)`` picks in one call (§III-F).

        Must be equivalent to ``[observe(c, f) for c, f in picks]`` —
        same observations, same order, same state evolution — but is free
        to batch detector invocations, discriminator matching and cost
        lookups internally.

        The full protocol (and hence ``isinstance`` against this
        runtime-checkable Protocol) includes this method; environments
        that implement only :meth:`observe` still work everywhere in the
        library, because the run loop reaches environments through
        :func:`batched_observe`, which falls back to per-pick calls.
        """
        ...


def batched_observe(
    env: SearchEnvironment, picks: Sequence[Tuple[int, int]]
) -> List[Observation]:
    """Observe ``picks`` via the environment's batched path when available.

    This is the single dispatch point the :class:`repro.core.sampler
    .Searcher` run loop uses: environments exposing ``observe_batch`` get
    one call for the whole batch; everything else gets the per-pick
    fallback, so pre-existing environments keep working unchanged.
    """
    method = getattr(env, "observe_batch", None)
    if method is not None:
        return method(picks)
    return [env.observe(chunk, frame) for chunk, frame in picks]


def propose_frames(
    env: SearchEnvironment, picks: Sequence[Tuple[int, int]]
) -> "FrameRequest | None":
    """Propose ``picks`` as a :class:`FrameRequest`, if the env supports it.

    The dispatch twin of :func:`batched_observe` for the request/fulfil
    split: environments exposing ``propose_batch`` get their request
    surfaced (so a server can fulfil detection elsewhere — fused with
    other sessions' requests); for everything else this returns None and
    the caller must observe through :func:`batched_observe`.
    """
    method = getattr(env, "propose_batch", None)
    if method is None:
        return None
    return method(picks)


class CallbackEnvironment:
    """Adapter turning plain callables into a :class:`SearchEnvironment`.

    Convenient for tests and small simulations::

        env = CallbackEnvironment([100, 100], lambda c, f: Observation(0, 0))
    """

    def __init__(self, sizes: Sequence[int], observe_fn) -> None:
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._observe_fn = observe_fn

    def chunk_sizes(self) -> np.ndarray:
        return self._sizes

    def observe(self, chunk: int, frame: int) -> Observation:
        return self._observe_fn(chunk, frame)

    def observe_batch(self, picks: Sequence[Tuple[int, int]]) -> List[Observation]:
        observe_fn = self._observe_fn
        return [observe_fn(chunk, frame) for chunk, frame in picks]
