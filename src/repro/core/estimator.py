"""The future-reward estimator R̂(n+1) = N1(n)/n and its error bounds.

This module implements §III-A of the paper. The central quantity is

    R(n+1) = sum_i p_i * [i not in seen(n)]

the expected number of *new* distinct objects in the (n+1)-th sampled frame,
where ``p_i`` is the probability that instance ``i`` appears in a uniformly
sampled frame. ExSample never observes the ``p_i``; it estimates R directly:

    R̂(n+1) = N1(n) / n                                        (Eq. III.1)

where ``N1(n)`` counts distinct objects seen *exactly once* in the first
``n`` samples. (Readers may recognise this as the Good–Turing estimator of
the missing mass.)

Alongside the estimator itself, this module exposes the *theoretical*
quantities used in the paper's analysis — ``pi_exact_once``, expected N1,
expected R — and the bias/variance bounds of the two theorems in §III-A and
§III-B, so tests and the Figure 2 validation can check the implementation
against theory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def point_estimate(n1: float, n: float) -> float:
    """R̂(n+1) = N1/n (Eq. III.1); defined as 0 before any samples."""
    if n <= 0:
        return 0.0
    return n1 / n


def pi_seen_at(p: np.ndarray, n: int) -> np.ndarray:
    """π_i(n+1) = p_i (1 - p_i)^n: chance instance i is first seen at sample n+1.

    Note the indexing convention from the proof of Eq. III.2: the event that
    instance ``i`` is seen on the (n+1)-th sample after being missed on the
    first ``n`` occurs with probability ``p (1-p)^n``; the paper writes this
    as π_i(n+1), so ``pi_seen_at(p, n)`` returns π(n+1).
    """
    p = np.asarray(p, dtype=float)
    return p * np.power(1.0 - p, n)


def expected_r(p: np.ndarray, n: int) -> float:
    """E[R(n+1)] = Σ_i π_i(n+1) over a population with frame-probabilities p."""
    return float(np.sum(pi_seen_at(p, n)))


def expected_n1(p: np.ndarray, n: int) -> float:
    """E[N1(n)] = n Σ_i π_i(n) (each instance seen exactly once w.p. nπ_i(n))."""
    if n <= 0:
        return 0.0
    return float(n * np.sum(pi_seen_at(p, n - 1)))


def expected_bias(p: np.ndarray, n: int) -> float:
    """E[R̂ - R] = Σ_i p_i π_i(n): the exact (positive) bias of the estimator.

    Derived in the proof of the bias theorem: E[N1/n - R(n+1)] =
    Σ π(n) - π(n+1) = Σ p π(n).
    """
    p = np.asarray(p, dtype=float)
    return float(np.sum(p * pi_seen_at(p, n - 1)))


def bias_bound_maxp(p: np.ndarray) -> float:
    """Upper bound of Eq. III.2: relative bias ≤ max p_i."""
    return float(np.max(np.asarray(p, dtype=float)))


def bias_bound_moments(p: np.ndarray) -> float:
    """Second upper bound of Eq. III.2: relative bias ≤ sqrt(N) (μ_p + σ_p)."""
    p = np.asarray(p, dtype=float)
    n_instances = p.size
    return float(np.sqrt(n_instances) * (np.mean(p) + np.std(p)))


def variance_bound(p: np.ndarray, n: int) -> float:
    """Eq. III.3: Var[R̂(n+1)] ≤ E[R̂(n+1)] / n.

    Under the independence assumption E[R̂] = E[N1]/n, so the bound equals
    E[N1(n)] / n^2.
    """
    if n <= 0:
        return float("inf")
    return expected_n1(p, n) / (n * n)


def poisson_lambda(p: np.ndarray, n: int) -> float:
    """λ = Σ π_i(n) of the Poisson sampling distribution of N1(n) (§III-B).

    The paper shows N1(n) is approximately Poisson with this parameter when
    the p_i are small or n is large.
    """
    if n <= 0:
        return 0.0
    return float(n * np.sum(pi_seen_at(np.asarray(p, dtype=float), n - 1)))


@dataclass
class SeenCounter:
    """Streaming bookkeeping of N1 from observed result identities.

    The sampler does not get to see instance identities directly — the
    discriminator reports only ``d0`` (unmatched detections = new objects)
    and ``d1`` (detections whose object had been seen exactly once before) —
    but tests and the theory simulators *do* know identities. This counter
    converts a stream of "instance i appeared in this frame" events into the
    (N1, n, distinct) statistics, mirroring line 11 of Algorithm 1.
    """

    n: int = 0
    n1: int = 0
    distinct: int = 0

    def __post_init__(self) -> None:
        self._times_seen: dict[int, int] = {}

    def observe_frame(self, instance_ids: "np.ndarray | list[int]") -> tuple[int, int]:
        """Record one sampled frame containing ``instance_ids``.

        Returns ``(len(d0), len(d1))``: the number of never-before-seen
        instances, and the number of instances that had been seen exactly
        once before this frame. Duplicate ids within one frame are treated
        as a single sighting (a frame shows an object once).
        """
        d0 = 0
        d1 = 0
        # sorted() so the visit order (and thus any tie-break downstream
        # of the counters) is hash-seed independent across processes.
        for instance in sorted(set(int(i) for i in instance_ids)):
            seen = self._times_seen.get(instance, 0)
            if seen == 0:
                d0 += 1
                self.distinct += 1
            elif seen == 1:
                d1 += 1
            self._times_seen[instance] = seen + 1
        self.n += 1
        self.n1 += d0 - d1
        return d0, d1

    @property
    def estimate(self) -> float:
        """Current R̂(n+1) = N1/n."""
        return point_estimate(self.n1, self.n)

    def times_seen(self, instance: int) -> int:
        """How many sampled frames have shown ``instance``."""
        return self._times_seen.get(int(instance), 0)
