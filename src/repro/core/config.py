"""Configuration for the ExSample sampler (Algorithm 1 and §III-F)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Prior pseudo-counts used by the paper (§III-C): "We used alpha0 = .1 and
#: beta0 = 1 in practice, though we did not observe a strong dependence on
#: this value choice."
PAPER_ALPHA0 = 0.1
PAPER_BETA0 = 1.0

_VALID_POLICIES = ("thompson", "bayes_ucb", "greedy", "uniform")
_VALID_ORDERS = ("randomplus", "uniform", "sequential")
_VALID_CROSS_CHUNK = ("local", "origin")


@dataclass(frozen=True)
class ExSampleConfig:
    """Tunable knobs of the ExSample sampling loop.

    Attributes
    ----------
    alpha0, beta0:
        Prior pseudo-counts added to ``N1_j`` and ``n_j`` when forming the
        belief distribution Gamma(N1_j + alpha0, n_j + beta0) of Eq. III.4.
        Both must be positive: the Gamma distribution is undefined at 0 and
        the positive prior is what lets chunks with ``N1 = 0`` keep being
        explored (§III-C).
    policy:
        Chunk-selection policy. ``"thompson"`` (the paper's choice),
        ``"bayes_ucb"`` (the alternative the paper also tried, §III-C),
        ``"greedy"`` (raw point estimate — the strawman §III-B warns gets
        stuck), or ``"uniform"`` (ignores beliefs; turns ExSample into
        stratified random sampling, useful for ablations).
    batch_size:
        Number of frames selected per iteration (§III-F batched sampling).
        1 reproduces Algorithm 1 exactly; larger values draw ``batch_size``
        Thompson samples per chunk and apply commutative batched updates.
    within_chunk_order:
        How frames are drawn inside a chosen chunk: ``"randomplus"`` (the
        paper's stratified random+, §III-F), ``"uniform"`` (plain uniform
        without replacement) or ``"sequential"``.
    ucb_horizon:
        Bayes-UCB quantile schedule parameter: at step t the policy uses the
        1 - 1/(t * ucb_horizon) quantile of each chunk's Gamma belief.
    cross_chunk:
        How a ``d1`` match of an object discovered in *another* chunk is
        accounted (the paper's footnote 1). ``"local"`` is Algorithm 1
        verbatim: the ``-1`` hits the currently sampled chunk, whose raw N1
        may go negative (the belief clamps it). ``"origin"`` charges the
        ``-1`` to the chunk that originally received the object's ``+1``
        (the tech-report adjustment), keeping every per-chunk N1 >= 0;
        requires the environment to report ``d1_origin_chunks``.
    """

    alpha0: float = PAPER_ALPHA0
    beta0: float = PAPER_BETA0
    policy: str = "thompson"
    batch_size: int = 1
    within_chunk_order: str = "randomplus"
    ucb_horizon: float = 1.0
    cross_chunk: str = "local"
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.alpha0 <= 0 or self.beta0 <= 0:
            raise ConfigError(
                "alpha0 and beta0 must be positive "
                f"(got alpha0={self.alpha0}, beta0={self.beta0}); the Gamma "
                "belief of Eq. III.4 is undefined at zero"
            )
        if self.policy not in _VALID_POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {_VALID_POLICIES}"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.within_chunk_order not in _VALID_ORDERS:
            raise ConfigError(
                f"unknown within_chunk_order {self.within_chunk_order!r}; "
                f"expected one of {_VALID_ORDERS}"
            )
        if self.ucb_horizon <= 0:
            raise ConfigError("ucb_horizon must be positive")
        if self.cross_chunk not in _VALID_CROSS_CHUNK:
            raise ConfigError(
                f"unknown cross_chunk mode {self.cross_chunk!r}; "
                f"expected one of {_VALID_CROSS_CHUNK}"
            )

    def replace(self, **changes: object) -> "ExSampleConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace sugar)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
