"""Configuration for the ExSample sampler (Algorithm 1 and §III-F)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Prior pseudo-counts used by the paper (§III-C): "We used alpha0 = .1 and
#: beta0 = 1 in practice, though we did not observe a strong dependence on
#: this value choice."
PAPER_ALPHA0 = 0.1
PAPER_BETA0 = 1.0

_VALID_POLICIES = ("thompson", "bayes_ucb", "greedy", "uniform")
_VALID_ORDERS = ("randomplus", "uniform", "sequential")
_VALID_CROSS_CHUNK = ("local", "origin")


def validate_prior(name: str, value) -> "float | np.ndarray":
    """Normalise a prior pseudo-count to a positive float or 1-D array.

    Scalars stay plain floats (the paper's uniform prior). Array-likes
    become read-only float vectors — one prior per chunk, the warm-start
    substrate of the repository index. Anything non-positive, empty, or
    of higher rank is rejected: the Gamma belief of Eq. III.4 is
    undefined at zero, and a matrix prior has no chunk interpretation.
    """
    if np.ndim(value) == 0:
        scalar = float(value)
        if not np.isfinite(scalar) or scalar <= 0:
            raise ConfigError(
                f"{name} must be positive (got {name}={value!r}); the "
                "Gamma belief of Eq. III.4 is undefined at zero"
            )
        return scalar
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError(
            f"{name} must be a positive scalar or a non-empty 1-D "
            f"per-chunk array, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)) or np.any(arr <= 0):
        raise ConfigError(
            f"every per-chunk {name} entry must be positive and finite; "
            f"offending values: {arr[~(np.isfinite(arr) & (arr > 0))][:5]}"
        )
    arr = arr.copy()
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True)
class ExSampleConfig:
    """Tunable knobs of the ExSample sampling loop.

    Attributes
    ----------
    alpha0, beta0:
        Prior pseudo-counts added to ``N1_j`` and ``n_j`` when forming the
        belief distribution Gamma(N1_j + alpha0, n_j + beta0) of Eq. III.4.
        Each is either one positive scalar applied to every chunk (the
        paper's uniform prior) or a positive 1-D array with one entry per
        chunk — how a repository index warm-starts a run from what earlier
        queries learned. Positivity is required: the Gamma distribution is
        undefined at 0 and the positive prior is what lets chunks with
        ``N1 = 0`` keep being explored (§III-C).
    policy:
        Chunk-selection policy. ``"thompson"`` (the paper's choice),
        ``"bayes_ucb"`` (the alternative the paper also tried, §III-C),
        ``"greedy"`` (raw point estimate — the strawman §III-B warns gets
        stuck), or ``"uniform"`` (ignores beliefs; turns ExSample into
        stratified random sampling, useful for ablations).
    batch_size:
        Number of frames selected per iteration (§III-F batched sampling).
        1 reproduces Algorithm 1 exactly; larger values draw ``batch_size``
        Thompson samples per chunk and apply commutative batched updates.
    within_chunk_order:
        How frames are drawn inside a chosen chunk: ``"randomplus"`` (the
        paper's stratified random+, §III-F), ``"uniform"`` (plain uniform
        without replacement) or ``"sequential"``.
    ucb_horizon:
        Bayes-UCB quantile schedule parameter: at step t the policy uses the
        1 - 1/(t * ucb_horizon) quantile of each chunk's Gamma belief.
    cross_chunk:
        How a ``d1`` match of an object discovered in *another* chunk is
        accounted (the paper's footnote 1). ``"local"`` is Algorithm 1
        verbatim: the ``-1`` hits the currently sampled chunk, whose raw N1
        may go negative (the belief clamps it). ``"origin"`` charges the
        ``-1`` to the chunk that originally received the object's ``+1``
        (the tech-report adjustment), keeping every per-chunk N1 >= 0;
        requires the environment to report ``d1_origin_chunks``.
    """

    alpha0: "float | np.ndarray" = PAPER_ALPHA0
    beta0: "float | np.ndarray" = PAPER_BETA0
    policy: str = "thompson"
    batch_size: int = 1
    within_chunk_order: str = "randomplus"
    ucb_horizon: float = 1.0
    cross_chunk: str = "local"
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Frozen dataclass: normalised priors are written back through
        # object.__setattr__ (floats stay floats, array-likes become
        # read-only per-chunk vectors).
        object.__setattr__(self, "alpha0", validate_prior("alpha0", self.alpha0))
        object.__setattr__(self, "beta0", validate_prior("beta0", self.beta0))
        if self.policy not in _VALID_POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {_VALID_POLICIES}"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.within_chunk_order not in _VALID_ORDERS:
            raise ConfigError(
                f"unknown within_chunk_order {self.within_chunk_order!r}; "
                f"expected one of {_VALID_ORDERS}"
            )
        if self.ucb_horizon <= 0:
            raise ConfigError("ucb_horizon must be positive")
        if self.cross_chunk not in _VALID_CROSS_CHUNK:
            raise ConfigError(
                f"unknown cross_chunk mode {self.cross_chunk!r}; "
                f"expected one of {_VALID_CROSS_CHUNK}"
            )

    def replace(self, **changes: object) -> "ExSampleConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace sugar)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
