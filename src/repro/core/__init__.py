"""ExSample's core: estimator, beliefs, policies, frame orders, sampler.

This package is the paper's primary contribution (§III). Everything else in
the library — the video/detector/tracker substrates, the baselines, the
query engine — exists to feed or compare against the classes exported here.
"""

from repro.core.belief import (
    BayesUCBPolicy,
    ChunkPolicy,
    GammaBelief,
    GreedyMeanPolicy,
    ThompsonPolicy,
    UniformPolicy,
    beliefs_from_counts,
    make_policy,
)
from repro.core.chunk_state import ChunkStatistics
from repro.core.config import PAPER_ALPHA0, PAPER_BETA0, ExSampleConfig
from repro.core.environment import (
    CallbackEnvironment,
    Observation,
    SearchEnvironment,
    batched_observe,
)
from repro.core.estimator import (
    SeenCounter,
    bias_bound_maxp,
    bias_bound_moments,
    expected_bias,
    expected_n1,
    expected_r,
    pi_seen_at,
    point_estimate,
    poisson_lambda,
    variance_bound,
)
from repro.core.frame_order import (
    FrameOrder,
    RandomPlusOrder,
    ScoreWeightedOrder,
    SequentialOrder,
    UniformOrder,
    make_order,
)
from repro.core.registry import (
    SEARCH_METHODS,
    SearcherContext,
    SearcherSpec,
    register_searcher,
    searcher_spec,
    searcher_specs,
    unregister_searcher,
)
from repro.core.sampler import (
    ExSampleSearcher,
    Searcher,
    SearchRun,
    SearchStep,
    SearchTrace,
)

__all__ = [
    "BayesUCBPolicy",
    "CallbackEnvironment",
    "ChunkPolicy",
    "ChunkStatistics",
    "ExSampleConfig",
    "ExSampleSearcher",
    "FrameOrder",
    "GammaBelief",
    "GreedyMeanPolicy",
    "Observation",
    "PAPER_ALPHA0",
    "PAPER_BETA0",
    "RandomPlusOrder",
    "SEARCH_METHODS",
    "ScoreWeightedOrder",
    "SearchEnvironment",
    "SearchRun",
    "SearchStep",
    "SearchTrace",
    "Searcher",
    "SearcherContext",
    "SearcherSpec",
    "SeenCounter",
    "SequentialOrder",
    "ThompsonPolicy",
    "UniformOrder",
    "UniformPolicy",
    "batched_observe",
    "beliefs_from_counts",
    "bias_bound_maxp",
    "bias_bound_moments",
    "expected_bias",
    "expected_n1",
    "expected_r",
    "make_order",
    "make_policy",
    "pi_seen_at",
    "point_estimate",
    "poisson_lambda",
    "register_searcher",
    "searcher_spec",
    "searcher_specs",
    "unregister_searcher",
    "variance_bound",
]
