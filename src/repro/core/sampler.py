"""The ExSample search loop (Algorithm 1) and the shared searcher machinery.

:class:`Searcher` is the common scaffold every sampling method in this
library uses: it owns the run loop (pick frames, observe them, update state,
record a trace, stop when a limit is hit) while subclasses decide *which*
frame to look at next. :class:`ExSampleSearcher` is the paper's method; the
baselines in :mod:`repro.baselines` subclass the same scaffold, so every
method produces an identical :class:`SearchTrace` and all comparisons are
apples-to-apples.

A :class:`SearchTrace` records, per processed frame, the chunk, the frame
id, the d0/d1 counts and the cost. From this everything the evaluation needs
is derived exactly: discovery curves (distinct results vs frames processed),
samples-to-k-results, and cost-to-recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.belief import make_policy
from repro.core.chunk_state import ChunkStatistics
from repro.core.config import ExSampleConfig
from repro.core.environment import (
    FrameRequest,
    Observation,
    SearchEnvironment,
    batched_observe,
    propose_frames,
)
from repro.core.frame_order import FrameOrder, make_order
from repro.core.registry import register_searcher
from repro.errors import ConfigError, ExhaustedError
from repro.utils.rng import RngFactory


@dataclass
class SearchTrace:
    """Immutable record of one search run.

    Attributes
    ----------
    chunks, frames:
        Per processed frame: which chunk it came from and its within-chunk
        frame index.
    d0s, d1s:
        Per frame: new-object count and seen-exactly-once-match count.
    costs:
        Per frame processing cost in seconds.
    results:
        Flat list of result payloads, in discovery order.
    upfront_cost:
        Cost paid before the first frame could be chosen (the proxy scan of
        §II-B for BlazeIt-style searchers; zero for sampling methods).
    """

    chunks: np.ndarray
    frames: np.ndarray
    d0s: np.ndarray
    d1s: np.ndarray
    costs: np.ndarray
    results: List[object] = field(default_factory=list)
    upfront_cost: float = 0.0
    searcher: str = ""

    @property
    def num_samples(self) -> int:
        """Total frames processed by the expensive detector."""
        return int(self.chunks.size)

    @property
    def num_results(self) -> int:
        """Total distinct results discovered."""
        return int(self.d0s.sum())

    @property
    def total_cost(self) -> float:
        """End-to-end cost in seconds, including any upfront scan."""
        return float(self.upfront_cost + self.costs.sum())

    def discovery_curve(self) -> np.ndarray:
        """Cumulative distinct results after each processed frame."""
        return np.cumsum(self.d0s)

    def cost_curve(self) -> np.ndarray:
        """Cumulative cost (seconds) after each processed frame."""
        return self.upfront_cost + np.cumsum(self.costs)

    def samples_to_results(self, k: int) -> Optional[int]:
        """Frames processed until ``k`` distinct results were found.

        Returns ``None`` if the run ended before reaching ``k`` results.
        """
        if k <= 0:
            return 0
        curve = self.discovery_curve()
        hits = np.flatnonzero(curve >= k)
        if hits.size == 0:
            return None
        return int(hits[0]) + 1

    def cost_to_results(self, k: int) -> Optional[float]:
        """Seconds of processing until ``k`` distinct results were found."""
        if k <= 0:
            return self.upfront_cost
        idx = self.samples_to_results(k)
        if idx is None:
            return None
        return float(self.upfront_cost + self.costs[:idx].sum())

    def results_at_samples(self, grid: Sequence[int]) -> np.ndarray:
        """Distinct results found by each sample count in ``grid``.

        Points beyond the end of the run saturate at the final count, which
        is the right semantics for discovery curves (nothing is lost once
        found).
        """
        curve = self.discovery_curve()
        grid_arr = np.asarray(grid, dtype=np.int64)
        out = np.zeros(grid_arr.shape, dtype=float)
        if curve.size == 0:
            return out
        positive = grid_arr > 0
        idx = np.clip(grid_arr[positive], None, curve.size) - 1
        out[positive] = curve[idx]
        return out


class _TraceBuilder:
    """Accumulates per-frame records and freezes them into a SearchTrace.

    The limit-facing counters (``num_results``, ``num_samples``,
    ``total_cost``, ``num_unique_real``) are maintained incrementally so
    the run loop can check its stopping conditions after *every* recorded
    frame — the mid-batch stopping of §III-F — at O(1) per check.
    """

    def __init__(self, searcher: str, upfront_cost: float = 0.0):
        self._chunks: List[int] = []
        self._frames: List[int] = []
        self._d0s: List[int] = []
        self._d1s: List[int] = []
        self._costs: List[float] = []
        self._results: List[object] = []
        self._searcher = searcher
        self._upfront = upfront_cost
        self._real_uids: set[int] = set()
        self._d0_total = 0
        self._cost_total = float(upfront_cost)

    def record(
        self, chunk: int, frame: int, obs: Observation, extra_cost: float = 0.0
    ) -> None:
        """Append one processed frame to the trace.

        ``extra_cost`` is deferred searcher-side cost (a lazy proxy scan
        paid while picking this batch) charged to this frame's trace entry.
        It is accounted here, in the builder, so the environment's
        :class:`Observation` objects are never mutated — environments may
        cache or replay them.
        """
        self._chunks.append(chunk)
        self._frames.append(frame)
        self._d0s.append(obs.d0)
        self._d1s.append(obs.d1)
        cost = obs.cost + extra_cost
        self._costs.append(cost)
        self._cost_total += cost
        self._d0_total += obs.d0
        self._results.extend(obs.results)
        for payload in obs.results:
            uid = _payload_instance_uid(payload)
            if uid is not None:
                self._real_uids.add(uid)

    @property
    def num_unique_real(self) -> int:
        """Unique ground-truth instances among results (evaluation stops)."""
        return len(self._real_uids)

    @property
    def num_results(self) -> int:
        """Distinct results so far, counted from the authoritative d0s.

        ``d0`` *is* the per-frame new-object count (payloads are optional
        decoration an environment may supply for some, all, or none of
        them), so the total must come from d0 — matching
        :attr:`SearchTrace.num_results`. Counting payloads undercounted in
        environments that attach them to only some frames.
        """
        return self._d0_total

    @property
    def num_samples(self) -> int:
        return len(self._chunks)

    @property
    def total_cost(self) -> float:
        return self._cost_total

    def build(self) -> SearchTrace:
        return SearchTrace(
            chunks=np.asarray(self._chunks, dtype=np.int64),
            frames=np.asarray(self._frames, dtype=np.int64),
            d0s=np.asarray(self._d0s, dtype=np.int64),
            d1s=np.asarray(self._d1s, dtype=np.int64),
            costs=np.asarray(self._costs, dtype=float),
            results=list(self._results),
            upfront_cost=self._upfront,
            searcher=self._searcher,
        )


def _payload_instance_uid(payload: object) -> Optional[int]:
    """Backing ground-truth uid of a result payload, if any.

    Theory simulators return instance ids directly (ints); the video
    pipeline returns records with an ``instance_uid`` attribute where None
    marks a false-positive track.
    """
    if isinstance(payload, (int, np.integer)):
        return int(payload)
    uid = getattr(payload, "instance_uid", None)
    return int(uid) if uid is not None else None


class Searcher:
    """Base class: the run loop shared by ExSample and every baseline."""

    name = "searcher"

    def __init__(self, env: SearchEnvironment, rng: RngFactory | int | None = 0):
        self.env = env
        self.rngs = rng if isinstance(rng, RngFactory) else RngFactory(rng or 0)
        self.sizes = np.asarray(env.chunk_sizes(), dtype=np.int64)
        if self.sizes.ndim != 1 or self.sizes.size == 0:
            raise ConfigError("environment must expose a non-empty chunk list")

    # -- subclass interface ------------------------------------------------

    def pick_batch(self) -> List[Tuple[int, int]]:
        """Return the next (chunk, frame) pairs to process; [] when done."""
        raise NotImplementedError

    def update(
        self, picks: List[Tuple[int, int]], observations: List[Observation]
    ) -> None:
        """Fold a batch of observations into internal state (default: none)."""

    def upfront_cost(self) -> float:
        """Cost paid before sampling can begin (e.g. a proxy scan)."""
        return 0.0

    def consume_extra_cost(self) -> float:
        """Deferred cost incurred while picking the current batch.

        Subclasses that pay as-they-go (the §VII fusion searcher scores a
        chunk the first time it is chosen) return the accumulated amount
        here; the run loop charges it to the batch's first *trace record*
        (never to the environment's :class:`Observation` objects, which may
        be cached or replayed) so every time-based metric sees it at the
        moment it was paid.
        """
        return 0.0

    # -- run loop ------------------------------------------------------------

    def begin(
        self,
        result_limit: Optional[int] = None,
        frame_budget: Optional[int] = None,
        cost_budget: Optional[float] = None,
        distinct_real_limit: Optional[int] = None,
    ) -> "SearchRun":
        """Start a resumable run; see :class:`SearchRun` and :meth:`run`."""
        return SearchRun(
            self,
            result_limit=result_limit,
            frame_budget=frame_budget,
            cost_budget=cost_budget,
            distinct_real_limit=distinct_real_limit,
        )

    def run(
        self,
        result_limit: Optional[int] = None,
        frame_budget: Optional[int] = None,
        cost_budget: Optional[float] = None,
        distinct_real_limit: Optional[int] = None,
    ) -> SearchTrace:
        """Execute the search until a limit is reached or frames run out.

        Parameters mirror the paper's stopping regimes: ``result_limit`` is
        the limit clause of a distinct object query (counting what the
        discriminator returns, duplicates-from-lost-tracks and all),
        ``frame_budget`` caps detector invocations, ``cost_budget`` caps
        seconds of (modelled) processing time including any upfront scan,
        and ``distinct_real_limit`` — an evaluation-side stop — counts
        unique ground-truth instances, which is what the paper's recall
        targets are measured against.

        This is a thin wrapper over :class:`SearchRun`: it steps a fresh
        run to completion and returns its trace. Use :meth:`begin` (or the
        engine-level ``QueryEngine.session``) to drive the same loop
        incrementally.
        """
        run = self.begin(
            result_limit=result_limit,
            frame_budget=frame_budget,
            cost_budget=cost_budget,
            distinct_real_limit=distinct_real_limit,
        )
        while not run.finished:
            run.step()
        return run.trace()


@dataclass
class StepProposal:
    """One step's pending work: picked frames awaiting detection.

    Produced by :meth:`SearchRun.propose` and consumed by
    :meth:`SearchRun.fulfil`. ``request`` carries the environment's
    :class:`~repro.core.environment.FrameRequest` when the environment
    supports the request/fulfil split (so a server can fulfil detection
    externally — fused with other sessions); it is None for environments
    that only offer blocking observation, in which case the holder must
    observe through :func:`~repro.core.environment.batched_observe`.
    ``extra_cost`` is the searcher's deferred pick-time cost, captured at
    propose time so the proposal is self-contained.
    """

    picks: List[Tuple[int, int]]
    request: Optional[FrameRequest]
    extra_cost: float = 0.0


@dataclass
class SearchStep:
    """What one :meth:`SearchRun.step` call produced.

    ``picks``/``observations`` cover only the *consumed* prefix of the
    batch (mid-batch stopping trims the tail); ``new_results`` pairs each
    freshly discovered result payload with the 1-based cumulative sample
    index of the frame that produced it.
    """

    picks: List[Tuple[int, int]]
    observations: List[Observation]
    new_results: List[Tuple[int, object]]
    finished: bool
    reason: Optional[str]


class SearchRun:
    """A resumable, serialisable stepper over one searcher run.

    This is :meth:`Searcher.run`'s loop body turned into an object: each
    :meth:`step` performs one pick-observe-record-update cycle (one §III-F
    batch) and reports what happened, so callers can interleave several
    runs, stream results as they appear, or stop between any two steps.
    Because every piece of state it reaches — chunk statistics, frame
    orders, RNG streams, discriminator tracks, the partial trace — lives in
    ordinary picklable attributes, a ``SearchRun`` can be serialised
    mid-run and resumed elsewhere with a byte-identical final trace (see
    :class:`repro.query.session.QuerySession`).

    Stopping reasons are the limit names: ``"result_limit"``,
    ``"distinct_real_limit"``, ``"frame_budget"``, ``"cost_budget"``, or
    ``"exhausted"`` when the searcher ran out of frames.
    """

    def __init__(
        self,
        searcher: Searcher,
        result_limit: Optional[int] = None,
        frame_budget: Optional[int] = None,
        cost_budget: Optional[float] = None,
        distinct_real_limit: Optional[int] = None,
    ):
        no_limit = (
            result_limit is None
            and frame_budget is None
            and cost_budget is None
            and distinct_real_limit is None
        )
        if no_limit:
            frame_budget = int(searcher.sizes.sum())
        self.searcher = searcher
        self.result_limit = result_limit
        self.frame_budget = frame_budget
        self.cost_budget = cost_budget
        self.distinct_real_limit = distinct_real_limit
        self._trace = _TraceBuilder(
            searcher.name, upfront_cost=searcher.upfront_cost()
        )
        self._reason: Optional[str] = self._breached()
        # True between propose() and fulfil(); serialised with the run so
        # a checkpoint taken at a batch boundary restores cleanly (servers
        # only checkpoint between steps, where this is False).
        self._outstanding = False

    # -- limit-facing counters (live, O(1)) --------------------------------

    @property
    def num_samples(self) -> int:
        return self._trace.num_samples

    @property
    def num_results(self) -> int:
        return self._trace.num_results

    @property
    def total_cost(self) -> float:
        return self._trace.total_cost

    @property
    def num_unique_real(self) -> int:
        return self._trace.num_unique_real

    @property
    def finished(self) -> bool:
        return self._reason is not None

    @property
    def reason(self) -> Optional[str]:
        """Why the run stopped, or None while it can still make progress."""
        return self._reason

    def _breached(self) -> Optional[str]:
        """First limit currently crossed, in the historical check order."""
        trace = self._trace
        if self.result_limit is not None and trace.num_results >= self.result_limit:
            return "result_limit"
        if (
            self.distinct_real_limit is not None
            and trace.num_unique_real >= self.distinct_real_limit
        ):
            return "distinct_real_limit"
        if self.frame_budget is not None and trace.num_samples >= self.frame_budget:
            return "frame_budget"
        if self.cost_budget is not None and trace.total_cost >= self.cost_budget:
            return "cost_budget"
        return None

    def step(self) -> SearchStep:
        """Advance by one batch; a no-op returning an empty step when done.

        Consumes the batch incrementally and stops the moment a limit is
        crossed (§III-F): frames the environment processed beyond that
        point are neither recorded nor charged, so a batched run stops at
        exactly the same sample count and cost as the equivalent
        one-frame-at-a-time run.

        This is the blocking composition of the request/fulfil split:
        :meth:`propose` the batch, run the environment's detector on it,
        :meth:`fulfil` with the observations. A serving event loop calls
        the same three phases but fulfils detection through a
        cross-session batcher (:mod:`repro.serving`).
        """
        if self.finished:
            return SearchStep([], [], [], True, self._reason)
        proposal = self.propose()
        if proposal is None:
            return SearchStep([], [], [], True, self._reason)
        env = self.searcher.env
        if proposal.request is not None:
            detections = env.detect_request(proposal.request)
            observations = env.ingest_batch(proposal.request, detections)
        else:
            observations = batched_observe(env, proposal.picks)
        return self.fulfil(proposal, observations)

    def propose(self) -> Optional[StepProposal]:
        """Pick the next batch and surface it without touching the detector.

        Returns None when the run is finished or the searcher has no
        frames left (which finishes the run with reason ``"exhausted"``).
        At most one proposal may be outstanding: the searcher's frame
        orders and RNG streams advanced when the batch was picked, so the
        proposal must be fulfilled (or the run abandoned) before the next
        one.
        """
        if self.finished:
            return None
        if self._outstanding:
            raise RuntimeError(
                "a step proposal is already outstanding; fulfil it before "
                "proposing again"
            )
        searcher = self.searcher
        picks = searcher.pick_batch()
        if not picks:
            self._reason = "exhausted"
            return None
        request = propose_frames(searcher.env, picks)
        extra_cost = searcher.consume_extra_cost()
        self._outstanding = True
        return StepProposal(picks=picks, request=request, extra_cost=extra_cost)

    def fulfil(
        self, proposal: StepProposal, observations: List[Observation]
    ) -> SearchStep:
        """Record a proposed batch's observations and update the searcher.

        ``observations`` must align with ``proposal.picks`` (for split
        environments: ``env.ingest_batch(proposal.request, detections)``).
        Mid-batch stopping applies exactly as on the blocking path.
        """
        if not self._outstanding:
            raise RuntimeError("fulfil called with no outstanding proposal")
        self._outstanding = False
        picks = proposal.picks
        trace = self._trace
        new_results: List[Tuple[int, object]] = []
        consumed = 0
        for (chunk, frame), obs in zip(picks, observations, strict=True):
            trace.record(
                chunk, frame, obs, proposal.extra_cost if consumed == 0 else 0.0
            )
            consumed += 1
            if obs.results:
                sample_index = trace.num_samples
                new_results.extend((sample_index, payload) for payload in obs.results)
            self._reason = self._breached()
            if self._reason is not None:
                break
        self.searcher.update(picks[:consumed], observations[:consumed])
        return SearchStep(
            picks[:consumed],
            observations[:consumed],
            new_results,
            self.finished,
            self._reason,
        )

    def trace(self) -> SearchTrace:
        """Freeze everything recorded so far into a :class:`SearchTrace`."""
        return self._trace.build()

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints written before the request/fulfil split predate the
        # outstanding-proposal flag; a restored run is at a batch boundary.
        self.__dict__.setdefault("_outstanding", False)


class ExSampleSearcher(Searcher):
    """Algorithm 1, with the batched-sampling extension of §III-F.

    Each iteration: (1) draw one Thompson sample per chunk from the Gamma
    beliefs of Eq. III.4 and pick the argmax chunk; (2) draw the next frame
    of that chunk's random+ order; (3) process the frame; (4) apply the
    additive N1/n update. With ``config.batch_size > 1``, ``B`` Thompson
    draws are taken per chunk and the (commutative) updates are applied once
    per batch, exactly as the paper describes.
    """

    name = "exsample"

    def __init__(
        self,
        env: SearchEnvironment,
        config: ExSampleConfig | None = None,
        rng: RngFactory | int | None = None,
    ):
        config = config or ExSampleConfig()
        super().__init__(env, rng if rng is not None else RngFactory(config.seed))
        # Per-chunk prior vectors (the index warm-start path) must align
        # with this environment's chunk list; a vector built against a
        # different chunking would silently mis-credit every belief.
        for name, prior in (("alpha0", config.alpha0), ("beta0", config.beta0)):
            if np.ndim(prior) == 1 and np.size(prior) != self.sizes.size:
                raise ConfigError(
                    f"per-chunk {name} has {np.size(prior)} entries but the "
                    f"environment has {self.sizes.size} chunks"
                )
        self.config = config
        self.stats = ChunkStatistics(self.sizes)
        self.policy = make_policy(config.policy, config.ucb_horizon)
        self._policy_rng = self.rngs.stream("policy")
        # Orders are created lazily on a chunk's first draw. Drawn-frame
        # counts are tracked separately so the active mask never has to
        # instantiate an order — subclasses (the §VII fusion searcher) hook
        # order creation to charge per-chunk scoring costs, which must only
        # happen for chunks that are actually visited.
        self._orders: List[Optional[FrameOrder]] = [None] * int(self.sizes.size)
        self._drawn = np.zeros(self.sizes.size, dtype=np.int64)
        self._step = 0

    def _make_order(self, chunk: int) -> FrameOrder:
        """Create the within-chunk frame order for ``chunk`` (overridable)."""
        return make_order(
            self.config.within_chunk_order,
            int(self.sizes[chunk]),
            self.rngs.stream("order", chunk),
        )

    def _order_for(self, chunk: int) -> FrameOrder:
        order = self._orders[chunk]
        if order is None:
            order = self._make_order(chunk)
            self._orders[chunk] = order
        return order

    # -- introspection -----------------------------------------------------

    def point_estimates(self) -> np.ndarray:
        """Current per-chunk R̂_j values (Eq. III.1)."""
        return self.stats.point_estimates()

    def belief_parameters(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current per-chunk Gamma (alpha, beta) of Eq. III.4.

        ``N1_j`` is clamped at zero: an object first found in chunk j but
        re-seen from chunk k charges the ``-len(d1)`` update to chunk k,
        which can drive its raw counter negative (the cross-chunk instance
        problem of the paper's footnote 1). The belief needs a positive
        shape parameter, and a chunk whose every sighting was a duplicate
        carries the same evidence as one with N1 = 0.
        """
        alphas = np.maximum(self.stats.n1, 0.0) + self.config.alpha0
        betas = self.stats.n.astype(float) + self.config.beta0
        return alphas, betas

    # -- searcher interface --------------------------------------------------

    def pick_batch(self) -> List[Tuple[int, int]]:
        remaining = self.sizes - self._drawn
        active = remaining > 0
        if not np.any(active):
            return []
        self._step += 1
        alphas, betas = self.belief_parameters()
        choices = self.policy.choose(
            alphas,
            betas,
            active,
            self._policy_rng,
            step=self._step,
            batch=self.config.batch_size,
        )
        picks: List[Tuple[int, int]] = []
        for choice in choices:
            chunk = int(choice)
            # A batch may over-draw a nearly empty chunk; redirect the draw.
            if remaining[chunk] <= 0:
                mask = remaining > 0
                if not np.any(mask):
                    break
                chunk = int(
                    self.policy.choose(
                        alphas, betas, mask, self._policy_rng, self._step, batch=1
                    )[0]
                )
            try:
                frame = self._order_for(chunk).next()
            except ExhaustedError:  # pragma: no cover - guarded above
                continue
            remaining[chunk] -= 1
            self._drawn[chunk] += 1
            picks.append((chunk, frame))
        return picks

    def update(self, picks, observations) -> None:
        chunks = np.array([c for c, _ in picks], dtype=np.int64)
        d0s = np.array([o.d0 for o in observations], dtype=float)
        if self.config.cross_chunk == "origin":
            # Footnote-1 adjustment: each d1 decrement is charged to the
            # chunk that first discovered the object. Observations lacking
            # origin information fall back to charging the sampled chunk.
            origins = [
                obs.d1_origin_chunks
                if obs.d1_origin_chunks is not None
                else [int(chunk)] * obs.d1
                for (chunk, _), obs in zip(picks, observations, strict=True)
            ]
            self.stats.apply_credit_batch(chunks, d0s, origins)
        else:
            d1s = np.array([o.d1 for o in observations], dtype=float)
            self.stats.apply_batch(chunks, d0s, d1s)


@register_searcher(
    "exsample",
    description="Thompson sampling over per-chunk Gamma beliefs (the paper's method)",
)
def _build_exsample(ctx):
    """Factory: fold batch_size into the config, honour an explicit config."""
    return ExSampleSearcher(
        ctx.env, ctx.fold_exsample_config("exsample"), rng=ctx.rngs
    )
