"""Within-chunk frame orderings: uniform, sequential, random+ (§III-F).

The paper's ``chunk.sample()`` (Algorithm 1, line 7) draws frames from the
chosen chunk *without replacement*. Plain uniform sampling "allows samples to
happen very close to each other in quick succession", so §III-F introduces
**random+**: sample one random frame out of every hour, then one frame out of
every not-yet-sampled half hour, and so on, until the whole dataset has been
sampled. We implement that as a lazy level-by-level binary stratification:

* level 0 starts from ``initial_strata`` equal strata (default 1 = the whole
  chunk);
* at each level, every stratum that does not yet contain a sampled frame
  receives one frame drawn uniformly from it, and strata are visited in
  random order;
* every stratum is then split in half for the next level.

An invariant makes this lazy and cheap: at the start of each level every
stratum contains *at most one* previously sampled frame, so splitting needs
to route at most one sample to a child. The order is a permutation of the
chunk — every frame is produced exactly once — and any prefix of length m is
spread across at least ~m/2 distinct strata of the matching scale.

All orders implement the small :class:`FrameOrder` interface used by the
sampler: ``next()`` produces the next frame index (within the chunk) and
raises :class:`ExhaustedError` when no frames remain.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigError, ExhaustedError


class FrameOrder:
    """Produces each frame index of ``[0, size)`` exactly once."""

    def __init__(self, size: int):
        if size < 0:
            raise ConfigError(f"order size must be non-negative, got {size}")
        self.size = int(size)
        self._produced = 0

    @property
    def remaining(self) -> int:
        return self.size - self._produced

    def next(self) -> int:
        if self._produced >= self.size:
            raise ExhaustedError(f"all {self.size} frames have been sampled")
        frame = self._next_impl()
        self._produced += 1
        return frame

    def _next_impl(self) -> int:
        raise NotImplementedError


class SequentialOrder(FrameOrder):
    """0, 1, 2, ... — the naive scan order (§II-B naive execution)."""

    def _next_impl(self) -> int:
        return self._produced


class UniformOrder(FrameOrder):
    """Uniform sampling without replacement.

    Lazy strategy: while less than half the frames are consumed, rejection-
    sample against a hash set (cheap when the domain is much larger than the
    number of samples, which is the regime ExSample operates in); once half
    the domain is consumed, materialise a shuffled list of the leftovers.
    """

    def __init__(self, size: int, rng: np.random.Generator):
        super().__init__(size)
        self._rng = rng
        self._seen: set[int] = set()
        self._tail: Optional[list[int]] = None

    def _next_impl(self) -> int:
        if self._tail is not None:
            return self._tail.pop()
        if len(self._seen) * 2 >= self.size:
            leftovers = np.setdiff1d(
                np.arange(self.size, dtype=np.int64),
                np.fromiter(self._seen, dtype=np.int64, count=len(self._seen)),
            )
            self._rng.shuffle(leftovers)
            self._tail = list(leftovers)
            return self._tail.pop()
        while True:
            candidate = int(self._rng.integers(0, self.size))
            if candidate not in self._seen:
                self._seen.add(candidate)
                return candidate


class RandomPlusOrder(FrameOrder):
    """The paper's random+ stratified order (§III-F)."""

    def __init__(self, size: int, rng: np.random.Generator, initial_strata: int = 1):
        super().__init__(size)
        if initial_strata < 1:
            raise ConfigError("initial_strata must be >= 1")
        self._rng = rng
        self._initial_strata = min(initial_strata, max(size, 1))
        self._level_iter: Iterator[int] = iter(())
        # Each stratum is (lo, hi, pos) with pos = -1 when it holds no sample.
        if size > 0:
            self._lo, self._hi, self._pos = self._initial_level(size)
        else:
            self._lo = np.empty(0, dtype=np.int64)
            self._hi = np.empty(0, dtype=np.int64)
            self._pos = np.empty(0, dtype=np.int64)

    def _initial_level(self, size: int):
        k = self._initial_strata
        bounds = np.linspace(0, size, k + 1).astype(np.int64)
        lo, hi = bounds[:-1], bounds[1:]
        keep = hi > lo
        return lo[keep], hi[keep], np.full(int(keep.sum()), -1, dtype=np.int64)

    def _next_impl(self) -> int:
        while True:
            for frame in self._level_iter:
                return frame
            self._advance_level()

    def _advance_level(self) -> None:
        """Fill every sample-free stratum, emit in random order, then split."""
        if self._lo.size == 0:
            raise ExhaustedError("random+ order exhausted")
        need = self._pos < 0
        if np.any(need):
            # Vectorised uniform draw inside each needy stratum.
            lows = self._lo[need]
            highs = self._hi[need]
            draws = lows + (
                self._rng.random(lows.size) * (highs - lows)
            ).astype(np.int64)
            self._pos[need] = draws
            emitted = draws.copy()
            self._rng.shuffle(emitted)
            self._level_iter = iter(emitted.tolist())
        else:
            self._level_iter = iter(())
        self._split_level()

    def _split_level(self) -> None:
        lo, hi, pos = self._lo, self._hi, self._pos
        # Strata of size 1 are fully sampled once they hold a sample: drop.
        busy = (hi - lo) > 1
        lo, hi, pos = lo[busy], hi[busy], pos[busy]
        mid = (lo + hi) // 2
        in_left = pos < mid  # pos >= 0 always holds here (level just filled)
        left_pos = np.where(in_left, pos, -1)
        right_pos = np.where(in_left, -1, pos)
        new_lo = np.concatenate([lo, mid])
        new_hi = np.concatenate([mid, hi])
        new_pos = np.concatenate([left_pos, right_pos])
        keep = new_hi > new_lo
        self._lo, self._hi, self._pos = new_lo[keep], new_hi[keep], new_pos[keep]


class ScoreWeightedOrder(FrameOrder):
    """Score-biased sampling without replacement (future-work §VII).

    Implements the "predictive scoring" idea: frames are drawn without
    replacement with probability proportional to ``softmax(scores /
    temperature)`` using the Gumbel-top-k trick, which fixes the full order
    up front from one noise draw per frame. With flat scores this degrades
    gracefully to uniform sampling, so plugging a useless proxy in does not
    hurt correctness (Eq. III.1 stays valid under non-uniform within-chunk
    sampling, as §VII notes).
    """

    def __init__(
        self,
        size: int,
        rng: np.random.Generator,
        scores: np.ndarray,
        temperature: float = 1.0,
    ):
        super().__init__(size)
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (size,):
            raise ConfigError(
                f"scores must have shape ({size},), got {scores.shape}"
            )
        if temperature <= 0:
            raise ConfigError("temperature must be positive")
        gumbel = -np.log(-np.log(rng.uniform(1e-12, 1.0, size=size)))
        keys = scores / temperature + gumbel
        self._order = np.argsort(-keys)

    def _next_impl(self) -> int:
        return int(self._order[self._produced])


def make_order(
    name: str,
    size: int,
    rng: np.random.Generator,
    initial_strata: int = 1,
    scores: Optional[np.ndarray] = None,
) -> FrameOrder:
    """Instantiate a frame order by config name."""
    if name == "randomplus":
        return RandomPlusOrder(size, rng, initial_strata=initial_strata)
    if name == "uniform":
        return UniformOrder(size, rng)
    if name == "sequential":
        return SequentialOrder(size)
    if name == "score":
        if scores is None:
            raise ConfigError("score order requires a scores array")
        return ScoreWeightedOrder(size, rng, scores)
    raise ConfigError(f"unknown frame order {name!r}")
