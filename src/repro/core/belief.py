"""Gamma belief distributions and chunk-selection policies (§III-B, §III-C).

ExSample does not trust the raw point estimate R̂_j = N1_j / n_j: early in a
run a chunk may look bad purely from unlucky draws. Instead, the uncertainty
of the estimate is modelled with a Gamma distribution (Eq. III.4):

    R_j(n_j + 1) ~ Gamma(alpha = N1_j + alpha0, beta = n_j + beta0)

parameterised by *shape* alpha and *rate* beta, so the mean alpha/beta matches
Eq. III.1 and the variance alpha/beta^2 matches the bound of Eq. III.3.

Policies turn the per-chunk beliefs into a chunk choice:

* :class:`ThompsonPolicy` — draw one sample from each belief, pick the argmax
  (the paper's method).
* :class:`BayesUCBPolicy` — pick the argmax of an upper belief quantile that
  tightens over time (the alternative the paper reports trying, [18]).
* :class:`GreedyMeanPolicy` — argmax of the posterior mean; the strawman that
  §III-B warns can get stuck on early lucky chunks; kept for ablations.
* :class:`UniformPolicy` — ignore beliefs entirely; with one frame per draw
  this reduces ExSample to stratified random sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.errors import ConfigError


@dataclass(frozen=True)
class GammaBelief:
    """A Gamma(shape=alpha, rate=beta) belief over a chunk's future reward.

    This is Eq. III.4 for one chunk: ``alpha = N1 + alpha0`` and
    ``beta = n + beta0``.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError(
                f"Gamma belief requires positive parameters, got "
                f"alpha={self.alpha}, beta={self.beta}"
            )

    @property
    def mean(self) -> float:
        """Posterior mean alpha/beta — consistent with Eq. III.1."""
        return self.alpha / self.beta

    @property
    def variance(self) -> float:
        """Posterior variance alpha/beta^2 — consistent with Eq. III.3."""
        return self.alpha / (self.beta * self.beta)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw Thompson sample(s) from the belief."""
        return rng.gamma(shape=self.alpha, scale=1.0 / self.beta, size=size)

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` (used by Bayes-UCB)."""
        return float(_scipy_stats.gamma.ppf(q, a=self.alpha, scale=1.0 / self.beta))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Density, used by the Figure 2 validation plots."""
        return _scipy_stats.gamma.pdf(x, a=self.alpha, scale=1.0 / self.beta)


def beliefs_from_counts(
    n1: np.ndarray,
    n: np.ndarray,
    alpha0: "float | np.ndarray",
    beta0: "float | np.ndarray",
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Eq. III.4: alphas = N1 + alpha0, betas = n + beta0.

    ``alpha0``/``beta0`` are each a positive scalar (the paper's uniform
    prior) or a positive 1-D array aligned with the counts — per-chunk
    priors, the warm-start path of the repository index. Array priors are
    validated for positivity and length before the addition so a stale or
    truncated prior vector fails loudly instead of broadcasting nonsense.
    """
    n1 = np.asarray(n1, dtype=float)
    n = np.asarray(n, dtype=float)
    for name, prior in (("alpha0", alpha0), ("beta0", beta0)):
        arr = np.asarray(prior, dtype=float)
        if arr.ndim > 1:
            raise ConfigError(
                f"{name} must be a scalar or 1-D per-chunk array, "
                f"got shape {arr.shape}"
            )
        if arr.ndim == 1 and arr.shape != n1.shape:
            raise ConfigError(
                f"per-chunk {name} has {arr.size} entries for "
                f"{n1.size} chunks"
            )
        if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
            raise ConfigError(
                f"{name} must be positive and finite everywhere"
            )
    alphas = n1 + alpha0
    betas = n + beta0
    if np.any(alphas <= 0) or np.any(betas <= 0):
        raise ConfigError("belief parameters must be positive; check alpha0/beta0")
    return alphas, betas


class ChunkPolicy:
    """Interface: map per-chunk belief parameters to chosen chunk indices."""

    def choose(
        self,
        alphas: np.ndarray,
        betas: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
        step: int,
        batch: int = 1,
    ) -> np.ndarray:
        """Return ``batch`` chunk indices, restricted to ``active`` chunks.

        Parameters
        ----------
        alphas, betas:
            Gamma belief parameters per chunk (Eq. III.4).
        active:
            Boolean mask of chunks that still contain unsampled frames.
            Exhausted chunks must never be chosen.
        rng:
            Random source for stochastic policies.
        step:
            1-based global iteration count (used by Bayes-UCB's schedule).
        batch:
            Batched sampling (§III-F): how many draws to produce at once.
        """
        raise NotImplementedError

    @staticmethod
    def _masked_argmax(scores: np.ndarray, active: np.ndarray) -> int:
        masked = np.where(active, scores, -np.inf)
        return int(np.argmax(masked))


class ThompsonPolicy(ChunkPolicy):
    """The paper's policy: argmax over one Gamma draw per chunk (line 4-6)."""

    def choose(self, alphas, betas, active, rng, step, batch=1):
        n_chunks = alphas.shape[0]
        # One draw per (batch, chunk); argmax row-wise. Matches the batched
        # variant of §III-F: "we draw B samples per chunk j instead of one".
        draws = rng.gamma(
            shape=np.broadcast_to(alphas, (batch, n_chunks)),
            scale=1.0 / np.broadcast_to(betas, (batch, n_chunks)),
        )
        draws = np.where(active[None, :], draws, -np.inf)
        return np.argmax(draws, axis=1)


class BayesUCBPolicy(ChunkPolicy):
    """Bayes-UCB [18]: argmax of the 1 - 1/(t·horizon) belief quantile."""

    def __init__(self, horizon: float = 1.0):
        if horizon <= 0:
            raise ConfigError("ucb horizon must be positive")
        self.horizon = horizon

    def choose(self, alphas, betas, active, rng, step, batch=1):
        t = max(int(step), 1)
        q = 1.0 - 1.0 / (t * self.horizon + 1.0)
        scores = _scipy_stats.gamma.ppf(q, a=alphas, scale=1.0 / betas)
        # Deterministic given the state; break ties randomly so the first
        # rounds (identical beliefs everywhere) still spread out.
        scores = scores + rng.uniform(0.0, 1e-12, size=scores.shape)
        choice = self._masked_argmax(scores, active)
        return np.full(batch, choice, dtype=np.int64)


class GreedyMeanPolicy(ChunkPolicy):
    """Argmax of the posterior mean. Kept as the §III-B cautionary baseline."""

    def choose(self, alphas, betas, active, rng, step, batch=1):
        scores = alphas / betas + rng.uniform(0.0, 1e-12, size=alphas.shape)
        choice = self._masked_argmax(scores, active)
        return np.full(batch, choice, dtype=np.int64)


class UniformPolicy(ChunkPolicy):
    """Pick active chunks uniformly at random (stratified-random ablation)."""

    def choose(self, alphas, betas, active, rng, step, batch=1):
        candidates = np.flatnonzero(active)
        if candidates.size == 0:
            raise ConfigError("no active chunks to choose from")
        return rng.choice(candidates, size=batch, replace=True)


def make_policy(name: str, ucb_horizon: float = 1.0) -> ChunkPolicy:
    """Instantiate a policy by config name (see :class:`ExSampleConfig`)."""
    if name == "thompson":
        return ThompsonPolicy()
    if name == "bayes_ucb":
        return BayesUCBPolicy(horizon=ucb_horizon)
    if name == "greedy":
        return GreedyMeanPolicy()
    if name == "uniform":
        return UniformPolicy()
    raise ConfigError(f"unknown policy name {name!r}")
