"""The pluggable searcher registry.

Search methods plug into the query layer by registering a *factory* under a
name::

    from repro.core.registry import register_searcher

    @register_searcher("my_method", description="one-line summary")
    def _build_my_method(ctx):
        return MySearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch(), ...)

Each factory owns its method's construction quirks (config folding, proxy
scoring, oracle weights, ...) and receives a :class:`SearcherContext`
carrying everything :meth:`repro.query.engine.QueryEngine.make_searcher`
knows: the engine, the environment, the per-run RNG factory and the
user-supplied options. Registration happens at import time in the module
that defines the method — the five baselines, the ExSample sampler and the
fusion extension all self-register — so adding a method never touches the
engine.

:data:`SEARCH_METHODS` is a *live*, ordered view over the registry: the CLI
``--method`` choices, ``repro methods``, and any sweep iterating it pick up
third-party registrations automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.errors import ConfigError, QueryError

#: A factory takes a :class:`SearcherContext` and returns a ready searcher.
SearcherFactory = Callable[["SearcherContext"], object]


@dataclass
class SearcherContext:
    """Everything a searcher factory may need to build its method.

    Attributes
    ----------
    engine:
        The :class:`repro.query.engine.QueryEngine` requesting the searcher
        (``None`` when the registry is driven without an engine; factories
        that need engine facilities call :meth:`require_engine`).
    env:
        The :class:`repro.core.environment.SearchEnvironment` to search.
    rngs:
        Per-run RNG factory, already keyed by ``(seed, method, run_seed)``.
    config:
        User-supplied :class:`repro.core.config.ExSampleConfig`, or None.
    batch_size:
        Raw user-supplied batch size (None means "default"); factories for
        non-ExSample methods usually want :meth:`batch` instead.
    proxy_quality, dedup_window_s, stride, sample_budget_hint:
        Method-specific tuning knobs forwarded from ``make_searcher``.
    extras:
        Unrecognised keyword arguments, for third-party factories.
    """

    engine: Optional[object]
    env: object
    rngs: object
    run_seed: int = 0
    config: Optional[object] = None
    batch_size: Optional[int] = None
    proxy_quality: Optional[float] = None
    dedup_window_s: float = 1.0
    stride: Optional[int] = None
    sample_budget_hint: Optional[int] = None
    extras: dict = field(default_factory=dict)

    def batch(self) -> int:
        """The effective batch size for methods taking a plain integer."""
        return self.batch_size or 1

    def require_engine(self, method: str):
        """The owning engine, or a :class:`QueryError` naming the method."""
        if self.engine is None:
            raise QueryError(
                f"search method {method!r} needs a QueryEngine context "
                "(proxy scores / dataset metadata); construct it via "
                "QueryEngine.make_searcher"
            )
        return self.engine

    def fold_exsample_config(self, method: str):
        """Resolve config vs batch_size for ExSample-family methods.

        The batch size is part of :class:`ExSampleConfig`; supplying both an
        explicit config and a separate ``batch_size`` is ambiguous and
        rejected, matching the historical ``make_searcher`` behaviour.
        """
        from repro.core.config import ExSampleConfig

        if self.config is not None:
            if self.batch_size is not None:
                raise QueryError(
                    "pass batch_size inside the ExSampleConfig, not alongside it"
                )
            return self.config
        return ExSampleConfig(seed=self.run_seed, batch_size=self.batch())


@dataclass(frozen=True)
class SearcherSpec:
    """One registered search method: its name, factory and description.

    ``accepts_extras`` marks factories that consume method-specific keyword
    arguments via ``ctx.extras``; for everything else the engine rejects
    unrecognised keywords so a typo (``batchsize=64``) fails fast instead
    of silently running a misconfigured search.
    """

    name: str
    factory: SearcherFactory
    description: str = ""
    accepts_extras: bool = False


_REGISTRY: Dict[str, SearcherSpec] = {}


def register_searcher(
    name: str, *, description: str = "", accepts_extras: bool = False
) -> Callable[[SearcherFactory], SearcherFactory]:
    """Class/function decorator registering a searcher factory under ``name``.

    Raises :class:`ConfigError` if ``name`` is already taken — duplicate
    registration is almost always an accidental name collision, and silently
    replacing a method would change what every query using that name runs.
    Use :func:`unregister_searcher` first to replace deliberately.

    Pass ``accepts_extras=True`` if the factory reads custom keyword
    arguments from ``ctx.extras``; otherwise unrecognised keywords reaching
    ``QueryEngine.make_searcher`` raise a :class:`QueryError`.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"searcher name must be a non-empty string, got {name!r}")

    def decorator(factory: SearcherFactory) -> SearcherFactory:
        if name in _REGISTRY:
            raise ConfigError(
                f"search method {name!r} is already registered "
                f"(available: {', '.join(_REGISTRY)}); "
                "unregister_searcher() first to replace it"
            )
        _REGISTRY[name] = SearcherSpec(
            name=name,
            factory=factory,
            description=description,
            accepts_extras=accepts_extras,
        )
        return factory

    return decorator


def unregister_searcher(name: str) -> None:
    """Remove a registered method (useful for tests and hot-swapping)."""
    if name not in _REGISTRY:
        raise QueryError(
            f"cannot unregister unknown method {name!r}; "
            f"registered: {', '.join(_REGISTRY)}"
        )
    del _REGISTRY[name]


def searcher_spec(name: str) -> SearcherSpec:
    """Look up a method by name, or raise listing what is available."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise QueryError(
            f"unknown method {name!r}; choose from {tuple(_REGISTRY)}"
        )
    return spec


def searcher_specs() -> "tuple[SearcherSpec, ...]":
    """All registered methods, in registration order."""
    return tuple(_REGISTRY.values())


class SearchMethodsView(Sequence):
    """Live, ordered, read-only view of the registered method names.

    Behaves like the historical ``SEARCH_METHODS`` tuple (iteration,
    ``in``, indexing, ``len``) but always reflects the current registry, so
    CLI choices and experiment sweeps see third-party methods the moment
    they register.
    """

    def __iter__(self) -> Iterator[str]:
        return iter(tuple(_REGISTRY))

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __getitem__(self, index):
        return tuple(_REGISTRY)[index]

    def __eq__(self, other: object) -> bool:
        return tuple(self) == (
            tuple(other) if isinstance(other, (tuple, list, SearchMethodsView)) else other
        )

    def __hash__(self) -> int:  # pragma: no cover - view is not dict-key material
        return hash(tuple(_REGISTRY))

    def __repr__(self) -> str:
        return f"SearchMethodsView{tuple(_REGISTRY)!r}"


#: Live view over the registry; import-compatible with the old tuple.
SEARCH_METHODS = SearchMethodsView()
