"""Per-chunk sampling statistics: the (N1_j, n_j) state of Algorithm 1.

The state update on lines 11-12 of Algorithm 1 is

    N1[j*] += len(d0) - len(d1)
    n[j*]  += 1

Both updates are additive, which is what makes the batched variant of §III-F
correct: updates from a batch of frames commute, so they can be applied in
any order (or summed and applied at once). :meth:`ChunkStatistics.apply_batch`
exploits exactly that property and tests assert the equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ChunkStatistics:
    """Vectorised (N1, n, frames_remaining) bookkeeping over M chunks."""

    def __init__(self, chunk_sizes: "list[int] | np.ndarray"):
        sizes = np.asarray(chunk_sizes, dtype=np.int64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ConfigError("chunk_sizes must be a non-empty 1-D sequence")
        if np.any(sizes < 0):
            raise ConfigError("chunk sizes must be non-negative")
        self.sizes = sizes
        self.num_chunks = int(sizes.size)
        self.n1 = np.zeros(self.num_chunks, dtype=float)
        self.n = np.zeros(self.num_chunks, dtype=np.int64)

    # -- queries ---------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Total frames sampled so far across all chunks (the global n)."""
        return int(self.n.sum())

    @property
    def remaining(self) -> np.ndarray:
        """Frames still unsampled per chunk."""
        return self.sizes - self.n

    @property
    def active(self) -> np.ndarray:
        """Mask of chunks with at least one unsampled frame."""
        return self.remaining > 0

    @property
    def exhausted(self) -> bool:
        """True when every frame of every chunk has been sampled."""
        return bool(np.all(self.remaining <= 0))

    def point_estimates(self) -> np.ndarray:
        """R̂_j = N1_j / n_j per chunk (0 where n_j = 0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            est = np.where(self.n > 0, self.n1 / np.maximum(self.n, 1), 0.0)
        return est

    def empirical_weights(self) -> np.ndarray:
        """n_j / n: the de-facto sample allocation of §IV-A."""
        total = self.total_samples
        if total == 0:
            return np.full(self.num_chunks, 1.0 / self.num_chunks)
        return self.n / total

    # -- updates ---------------------------------------------------------

    def record(self, chunk: int, d0: int, d1: int) -> None:
        """Apply the Algorithm 1 lines 11-12 update for one processed frame."""
        self._check_chunk(chunk)
        if d0 < 0 or d1 < 0:
            raise ConfigError("d0/d1 counts must be non-negative")
        if self.remaining[chunk] <= 0:
            raise ConfigError(f"chunk {chunk} is exhausted; cannot record a sample")
        self.n1[chunk] += d0 - d1
        self.n[chunk] += 1

    def apply_batch(self, chunks: np.ndarray, d0s: np.ndarray, d1s: np.ndarray) -> None:
        """Apply many updates at once (batched sampling, §III-F).

        All updates are additive, hence commutative; this is equivalent to
        calling :meth:`record` once per element in any order.
        """
        chunks = np.asarray(chunks, dtype=np.int64)
        d0s = np.asarray(d0s, dtype=float)
        d1s = np.asarray(d1s, dtype=float)
        if not (chunks.shape == d0s.shape == d1s.shape):
            raise ConfigError("batch arrays must share a shape")
        np.add.at(self.n1, chunks, d0s - d1s)
        np.add.at(self.n, chunks, 1)
        if np.any(self.n > self.sizes):
            raise ConfigError("batch update sampled more frames than a chunk holds")

    def apply_credit_batch(
        self,
        chunks: np.ndarray,
        d0s: np.ndarray,
        origin_lists: "list[list[int]]",
    ) -> None:
        """Origin-credited update (the footnote-1 / tech-report variant).

        Each processed frame increments ``n`` and adds its ``d0`` to the
        *sampled* chunk's N1, but every d1 decrement lands on the chunk
        where the matched object was first discovered. When origins always
        point at the chunk of first discovery, every per-chunk N1 stays
        non-negative (the +1 always precedes its -1 on the same counter).
        """
        chunks = np.asarray(chunks, dtype=np.int64)
        d0s = np.asarray(d0s, dtype=float)
        if chunks.shape != d0s.shape or len(origin_lists) != chunks.size:
            raise ConfigError("credit batch arrays must align")
        np.add.at(self.n1, chunks, d0s)
        np.add.at(self.n, chunks, 1)
        for origins in origin_lists:
            for origin in origins:
                self._check_chunk(int(origin))
                self.n1[int(origin)] -= 1.0
        if np.any(self.n > self.sizes):
            raise ConfigError("batch update sampled more frames than a chunk holds")

    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise ConfigError(
                f"chunk index {chunk} out of range [0, {self.num_chunks})"
            )
