"""Persistent repository knowledge: reuse what sampling already learned.

A production service sees the same video repository queried thousands of
times, yet every ExSample run historically started from uniform chunk
beliefs and re-paid detection for frames earlier queries had already
sampled. :class:`RepositoryIndex` is the on-disk store that closes that
loop — see :mod:`repro.index.store` for the three knowledge layers
(detection rows, per-chunk sampling counts, recorded query outcomes) and
the concurrent-writer segment format.
"""

from repro.index.store import (
    INDEX_VERSION,
    IndexStats,
    RepositoryIndex,
    canonical_query_digest,
    chunk_signature,
    counts_from_trace,
    make_repository_index,
)

__all__ = [
    "INDEX_VERSION",
    "IndexStats",
    "RepositoryIndex",
    "canonical_query_digest",
    "chunk_signature",
    "counts_from_trace",
    "make_repository_index",
]
