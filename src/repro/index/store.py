"""The repository index: an on-disk store of cross-query knowledge.

ExSample's premise is that detector invocations dominate runtime (§III).
Everything a completed query learned about a repository — which frames
decode to which detections, which chunks yielded objects, what the final
outcome was — is therefore worth keeping: the next query over the same
repository can start informed instead of uniform. The index records three
layers of knowledge, each keyed by digests so stale knowledge is
structurally unreachable:

1. **Detection rows**, keyed by ``SimulatedDetector.cache_scope()`` (a
   digest of seed, noise profile and world content). Preloaded into a
   :class:`~repro.detection.cache.DetectionCache` they make a new query's
   revisits free.
2. **Per-chunk sampling counts** ``(n_j, N1_j)``, aggregated across
   queries per ``(detector scope, class, chunk signature)``. Through
   :func:`repro.core.belief.beliefs_from_counts` they become per-chunk
   warm-start priors: a run begins with the posterior earlier runs earned
   instead of the uniform ``alpha0/beta0``.
3. **Recorded query outcomes**, keyed by a canonical digest over
   everything that determines a run's trace (detector scope, chunking,
   engine seed, cost model, method, run seed, the query itself, config
   and searcher options). An exact-repeat query short-circuits to its
   recorded outcome with zero detector calls.

On-disk layout — built for concurrent writers::

    index_dir/
      segments/seg-<pid>-<uuid>.bin   # one append-only record per session
      compacted.bin                   # merged segments (repro index vacuum)
      vacuum.lock                     # advisory lock held during vacuum

Each file is a digest-checked envelope in the PR 6 checkpoint style
(``{"version", "meta", "digest": blake2b(payload), "payload"}``). Writers
never touch a shared file: every recorded session becomes its own
uniquely named segment, written to a temp file and atomically renamed, so
any number of engines, server tenants or fleet shards may record into one
index directory without locks. ``vacuum()`` folds segments into
``compacted.bin`` under an advisory lock. Corrupted or digest-mismatched
files are skipped with a logged warning — never a crash, and never a
silent adoption of bad rows (the PR 4 cross-world cache read is the
cautionary regression).

Merge semantics: counts **sum** across records; detection rows and
outcomes are first-merged-wins in a deterministic file order. For
outcomes that choice is immaterial to correctness — a digest fully
determines the run that produced it *given the index state it started
from*, and any recorded outcome under a digest is a genuine outcome of
that exact query; repeats replay whichever landed first, byte for byte.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError

logger = logging.getLogger("repro.index")

#: On-disk format version; bumped on incompatible envelope/record changes.
INDEX_VERSION = 1

_SEGMENT_DIR = "segments"
_COMPACTED = "compacted.bin"
_VACUUM_LOCK = "vacuum.lock"


def chunk_signature(sizes) -> str:
    """Digest of a chunking (the per-chunk frame counts, in order).

    Counts aggregated under one signature are guaranteed to describe the
    same chunk list: the same world split differently (another chunk
    duration, another video order) gets a different signature and never
    pollutes warm-start priors.
    """
    arr = np.ascontiguousarray(np.asarray(sizes, dtype=np.int64))
    return hashlib.blake2b(arr.tobytes(), digest_size=16).hexdigest()


def canonical_query_digest(
    *,
    scope: str,
    chunk_sig: str,
    engine_seed: int,
    cost_model,
    method: str,
    run_seed: int,
    query,
    config,
    searcher_kwargs: Optional[dict] = None,
) -> str:
    """Digest of everything that determines one run's trace.

    Two submissions share a digest exactly when, against the same index
    state, they would produce byte-identical traces: same detector
    identity (``scope`` covers seed, profile and world content), same
    chunking, same engine seed (discriminator streams), same cost model,
    same method/run-seed/query/config/options. Deliberately *excludes*
    index-derived warm priors — the digest describes what the user asked,
    not what the index knew at the time.
    """
    kwargs = searcher_kwargs or {}
    material = repr(
        (
            "repro-query-digest",
            INDEX_VERSION,
            scope,
            chunk_sig,
            int(engine_seed),
            (
                getattr(cost_model, "detector_fps", None),
                getattr(cost_model, "scan_fps", None),
                getattr(cost_model, "detailed", False),
                type(getattr(cost_model, "decoder", None)).__name__,
            ),
            str(method),
            int(run_seed),
            repr(query),
            repr(config),
            sorted((str(k), repr(v)) for k, v in kwargs.items()),
        )
    )
    return hashlib.blake2b(material.encode(), digest_size=16).hexdigest()


def counts_from_trace(trace, num_chunks: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-chunk ``(n_j, N1_j)`` aggregated from one finished trace.

    ``n_j`` counts samples taken in chunk j; ``N1_j`` accumulates
    ``d0 - d1`` there — the paper's local accounting (Algorithm 1 line 9),
    matching what :class:`~repro.core.chunk_state.ChunkStatistics` folds
    in during the run. ``N1_j`` may go negative for chunks whose every
    sighting was a duplicate; consumers clamp at read time exactly as
    :meth:`ExSampleSearcher.belief_parameters` does.
    """
    n = np.zeros(num_chunks, dtype=np.int64)
    n1 = np.zeros(num_chunks, dtype=float)
    if trace.chunks.size:
        np.add.at(n, trace.chunks, 1)
        np.add.at(n1, trace.chunks, trace.d0s - trace.d1s)
    return n, n1


@dataclass(frozen=True)
class IndexStats:
    """Point-in-time summary of one index directory."""

    path: str
    segment_files: int
    compacted: bool
    total_bytes: int
    detection_rows: int
    count_keys: int
    total_samples: int
    outcomes: int
    scopes: Tuple[str, ...]
    skipped_files: int

    def describe(self) -> str:
        lines = [
            (
                f"repository index at {self.path}: "
                f"{self.segment_files} segment(s)"
                + (" + compacted store" if self.compacted else "")
                + f", {self.total_bytes} bytes"
            ),
            (
                f"knowledge: {self.detection_rows} detection rows, "
                f"{self.count_keys} count key(s) covering "
                f"{self.total_samples} samples, "
                f"{self.outcomes} recorded outcome(s)"
            ),
        ]
        for scope in self.scopes:
            lines.append(f"  scope {scope[:12]}…")
        if self.skipped_files:
            lines.append(
                f"warning: {self.skipped_files} unreadable file(s) skipped "
                "(corrupted or foreign; see the repro.index log)"
            )
        return "\n".join(lines)


class _MergedState:
    """Everything readable from an index directory, merged in memory."""

    def __init__(self):
        # {scope: {(video, frame, class_filter): [Detection, ...]}}
        self.detections: Dict[str, Dict[tuple, list]] = {}
        # {(scope, class_name, chunk_sig): [n array, n1 array]}
        self.counts: Dict[Tuple[str, str, str], List[np.ndarray]] = {}
        # {query_digest: outcome record dict}
        self.outcomes: Dict[str, dict] = {}
        self.skipped = 0

    def fold(self, record: dict) -> None:
        for scope, rows in record.get("detections", {}).items():
            bucket = self.detections.setdefault(scope, {})
            for key, detections in rows.items():
                bucket.setdefault(key, detections)
        for key, payload in record.get("counts", {}).items():
            n = np.asarray(payload["n"], dtype=np.int64)
            n1 = np.asarray(payload["n1"], dtype=float)
            entry = self.counts.get(key)
            if entry is None:
                self.counts[key] = [n.copy(), n1.copy()]
            elif entry[0].size != n.size:  # pragma: no cover - defensive
                logger.warning(
                    "repository index: conflicting chunk counts under key "
                    "%s (%d vs %d chunks); keeping the first",
                    key, entry[0].size, n.size,
                )
            else:
                entry[0] += n
                entry[1] += n1
        for digest, outcome in record.get("outcomes", {}).items():
            self.outcomes.setdefault(digest, outcome)


class RepositoryIndex:
    """On-disk cross-query knowledge for one repository (see module docs).

    Instances are cheap handles over a directory; all state lives on
    disk. Pickling keeps only the path (like
    :class:`~repro.detection.cache.DetectionCache` keeps only its
    configuration), so engines carrying an index can still be shipped to
    worker or shard processes — each process reopens the same directory.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._cache_sig: Optional[tuple] = None
        self._cache_state: Optional[_MergedState] = None
        os.makedirs(os.path.join(self.path, _SEGMENT_DIR), exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RepositoryIndex({self.path!r})"

    # -- pickling: the path travels, the in-memory merge cache never ---------

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._cache_sig = None
        self._cache_state = None
        os.makedirs(os.path.join(self.path, _SEGMENT_DIR), exist_ok=True)

    # -- low-level file handling ---------------------------------------------

    def _files(self) -> List[str]:
        """Readable store files, compacted first then segments, sorted."""
        files = []
        compacted = os.path.join(self.path, _COMPACTED)
        if os.path.exists(compacted):
            files.append(compacted)
        seg_dir = os.path.join(self.path, _SEGMENT_DIR)
        try:
            names = sorted(os.listdir(seg_dir))
        except FileNotFoundError:  # pragma: no cover - dir created in init
            names = []
        files.extend(
            os.path.join(seg_dir, name)
            for name in names
            if name.endswith(".bin")
        )
        return files

    @staticmethod
    def _write_envelope(path: str, record: dict, meta: dict) -> None:
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "version": INDEX_VERSION,
            "meta": meta,
            "digest": hashlib.blake2b(payload, digest_size=16).hexdigest(),
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    @staticmethod
    def _read_envelope(path: str) -> Optional[dict]:
        """Decode one envelope; None (with a warning) on any defect."""
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            # A vacuum racing this reader deleted a segment it already
            # merged into the compacted store; nothing is lost.
            return None
        except Exception as exc:  # noqa: BLE001 - unreadable file, skip it
            logger.warning(
                "repository index: skipping unreadable file %s (%s)",
                path, exc,
            )
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != INDEX_VERSION
            or "payload" not in envelope
        ):
            logger.warning(
                "repository index: skipping %s (not a version-%d index "
                "envelope)", path, INDEX_VERSION,
            )
            return None
        digest = hashlib.blake2b(
            envelope["payload"], digest_size=16
        ).hexdigest()
        if digest != envelope.get("digest"):
            logger.warning(
                "repository index: skipping %s (payload digest mismatch — "
                "corrupted in storage)", path,
            )
            return None
        try:
            record = pickle.loads(envelope["payload"])
        except Exception as exc:  # noqa: BLE001 - corrupt payload, skip it
            logger.warning(
                "repository index: skipping %s (payload undecodable: %s)",
                path, exc,
            )
            return None
        return record

    def _load(self) -> _MergedState:
        """Merge every readable store file, memoised on the dir listing."""
        files = self._files()
        sig = []
        for path in files:
            try:
                stat = os.stat(path)
                sig.append((path, stat.st_mtime_ns, stat.st_size))
            except OSError:
                sig.append((path, 0, 0))
        signature = tuple(sig)
        if self._cache_sig == signature and self._cache_state is not None:
            return self._cache_state
        state = _MergedState()
        for path in files:
            record = self._read_envelope(path)
            if record is None:
                if os.path.exists(path):
                    state.skipped += 1
                continue
            state.fold(record)
        self._cache_sig = signature
        self._cache_state = state
        return state

    # -- recording -----------------------------------------------------------

    def record_session(
        self,
        *,
        scope: str,
        class_name: str,
        chunk_sig: str,
        num_chunks: int,
        trace,
        query_digest: Optional[str] = None,
        outcome_blob: Optional[bytes] = None,
        reason: Optional[str] = None,
        detections: Optional[Dict[tuple, list]] = None,
    ) -> str:
        """Persist one session's knowledge as a new append-only segment.

        Called by the engine's record-on-completion hook. ``detections``
        maps plain ``(video, frame, class_filter)`` keys to detection
        lists (already verified to belong to ``scope``). Returns the
        segment path. Concurrent callers never conflict: every call
        writes its own uniquely named file.
        """
        n, n1 = counts_from_trace(trace, num_chunks)
        record: dict = {
            "counts": {
                (scope, class_name, chunk_sig): {"n": n, "n1": n1}
            },
            "detections": {scope: dict(detections or {})},
            "outcomes": {},
        }
        if query_digest is not None and outcome_blob is not None:
            record["outcomes"][query_digest] = {
                "blob": outcome_blob,
                "reason": reason,
                "method": getattr(trace, "searcher", ""),
                "class_name": class_name,
                "scope": scope,
                "num_samples": int(trace.num_samples),
                "num_results": int(trace.num_results),
            }
        # Zero-padded nanosecond timestamp first so the sorted merge order
        # approximates write order (pid+uuid break same-instant ties).
        # The timestamp is a filename ordering hint only — payloads are
        # digest-addressed and nothing trace-visible depends on it.
        name = (
            f"seg-{time.time_ns():020d}-{os.getpid()}-"  # repro-lint: allow[DET102]
            f"{uuid.uuid4().hex[:8]}.bin"
        )
        path = os.path.join(self.path, _SEGMENT_DIR, name)
        self._write_envelope(
            path,
            record,
            meta={
                "scope": scope,
                "class_name": class_name,
                "num_samples": int(trace.num_samples),
                "outcomes": len(record["outcomes"]),
                "detections": len(record["detections"][scope]),
            },
        )
        return path

    # -- reading the three layers --------------------------------------------

    def counts_for(
        self, scope: str, class_name: str, chunk_sig: str
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Aggregated ``(n, N1)`` for one (detector, class, chunking).

        None when no query over this exact combination was recorded —
        including every digest-mismatch case (mutated world, different
        detector seed, different chunking), which simply resolves to a
        different key.
        """
        entry = self._load().counts.get((scope, class_name, chunk_sig))
        if entry is None or int(entry[0].sum()) == 0:
            return None
        return entry[0].copy(), entry[1].copy()

    def outcome_for(self, query_digest: str) -> Optional[dict]:
        """The recorded outcome record for a canonical query digest."""
        record = self._load().outcomes.get(query_digest)
        return dict(record) if record is not None else None

    def detections_for(self, scope: str) -> Dict[tuple, list]:
        """All recorded detection rows for one detector scope."""
        rows = self._load().detections.get(scope, {})
        return {key: list(value) for key, value in rows.items()}

    def preload_cache(self, detector) -> int:
        """Load this detector's recorded detection rows into its cache.

        Returns the number of rows loaded. When the index holds knowledge
        but none of it matches the detector's scope — the world content,
        detector seed or noise profile changed since the index was built —
        the index is *ignored* with a logged warning, never adopted (the
        digest keying makes wrong-world rows unreachable by construction;
        the warning makes the staleness visible).
        """
        cache = getattr(detector, "cache", None)
        scope = detector.cache_scope()
        state = self._load()
        rows = state.detections.get(scope, {})
        if not rows:
            known = self.scopes()
            if known and scope not in known:
                logger.warning(
                    "repository index at %s holds knowledge for scope(s) "
                    "%s but this detector's scope is %s…; the world, seed "
                    "or detector profile changed since the index was built "
                    "— ignoring the index for this engine",
                    self.path,
                    [s[:12] + "…" for s in sorted(known)],
                    scope[:12],
                )
            return 0
        if cache is None or not getattr(cache, "scoped", False):
            return 0
        for key, detections in rows.items():
            cache.put((scope,) + key, detections)
        return len(rows)

    def scopes(self) -> Tuple[str, ...]:
        """Every detector scope with recorded knowledge, sorted."""
        state = self._load()
        found = set(state.detections)
        found.update(key[0] for key in state.counts)
        found.update(
            record.get("scope", "") for record in state.outcomes.values()
        )
        return tuple(sorted(s for s in found if s))

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> IndexStats:
        files = self._files()
        state = self._load()
        total_bytes = 0
        for path in files:
            try:
                total_bytes += os.stat(path).st_size
            except OSError:  # pragma: no cover - raced deletion
                pass
        return IndexStats(
            path=self.path,
            segment_files=sum(
                1 for f in files if os.sep + _SEGMENT_DIR + os.sep in f
            ),
            compacted=any(f.endswith(_COMPACTED) for f in files),
            total_bytes=total_bytes,
            detection_rows=sum(
                len(rows) for rows in state.detections.values()
            ),
            count_keys=len(state.counts),
            total_samples=int(
                sum(int(entry[0].sum()) for entry in state.counts.values())
            ),
            outcomes=len(state.outcomes),
            scopes=self.scopes(),
            skipped_files=state.skipped,
        )

    def vacuum(self) -> IndexStats:
        """Fold every segment into ``compacted.bin`` (advisory-locked).

        Readers racing a vacuum stay correct: the compacted store is
        written with a temp-file-and-rename before any segment is
        deleted, so at every instant the union of readable files carries
        the full knowledge (counts folded into the compacted store are
        only removed as segments after they are durably merged).
        """
        lock_path = os.path.join(self.path, _VACUUM_LOCK)
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            raise ConfigError(
                f"another vacuum holds the lock at {lock_path}; remove the "
                "file if its process died"
            ) from None
        try:
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            merged_files = self._files()
            state = _MergedState()
            for path in merged_files:
                record = self._read_envelope(path)
                if record is not None:
                    state.fold(record)
            record = {
                "detections": state.detections,
                "counts": {
                    key: {"n": entry[0], "n1": entry[1]}
                    for key, entry in state.counts.items()
                },
                "outcomes": state.outcomes,
            }
            self._write_envelope(
                os.path.join(self.path, _COMPACTED),
                record,
                meta={
                    "merged_files": len(merged_files),
                    "outcomes": len(state.outcomes),
                    "count_keys": len(state.counts),
                },
            )
            for path in merged_files:
                if path.endswith(_COMPACTED):
                    continue
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - raced deletion
                    pass
        finally:
            try:
                os.remove(lock_path)
            except OSError:  # pragma: no cover - lock vanished
                pass
        self._cache_sig = None
        self._cache_state = None
        return self.stats()


def make_repository_index(spec) -> Optional[RepositoryIndex]:
    """Resolve a user-facing index spec to an index object (or None).

    ``spec`` may be None (no index), a directory path (created on
    demand), or an existing :class:`RepositoryIndex` (returned as-is).
    """
    if spec is None:
        return None
    if isinstance(spec, RepositoryIndex):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        return RepositoryIndex(spec)
    raise ConfigError(
        f"index must be None, a directory path or a RepositoryIndex, "
        f"got {type(spec).__name__}"
    )
