"""IoU-based assignment between detection sets (the SORT matching step)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import ConfigError


def greedy_match(
    iou: np.ndarray, threshold: float = 0.3
) -> List[Tuple[int, int]]:
    """Greedy best-first matching on an IoU matrix.

    Repeatedly picks the highest remaining IoU pair at or above the
    threshold. This is the matching SORT-style trackers use in practice:
    nearly as good as optimal for well-separated objects and much simpler.
    Returns (row, col) index pairs.
    """
    _check(iou, threshold)
    work = iou.copy()
    pairs: List[Tuple[int, int]] = []
    while work.size:
        flat = int(np.argmax(work))
        row, col = np.unravel_index(flat, work.shape)
        if work[row, col] < threshold:
            break
        pairs.append((int(row), int(col)))
        work[row, :] = -1.0
        work[:, col] = -1.0
    return pairs


def hungarian_match(
    iou: np.ndarray, threshold: float = 0.3
) -> List[Tuple[int, int]]:
    """Optimal assignment maximising total IoU, filtered by the threshold.

    Uses scipy's Hungarian solver. Sub-threshold entries are zeroed
    *before* solving: otherwise the solver may realise the same total
    through pairs that the threshold then discards (e.g. two 0.25s instead
    of one 0.5), leaving fewer — or worse — matches than greedy. Pairs
    below the threshold are dropped from the returned assignment.
    """
    _check(iou, threshold)
    if iou.size == 0:
        return []
    eligible = np.where(iou >= threshold, iou, 0.0)
    rows, cols = linear_sum_assignment(-eligible)
    return [
        (int(r), int(c))
        for r, c in zip(rows, cols, strict=True)
        if iou[r, c] >= threshold
    ]


def _check(iou: np.ndarray, threshold: float) -> None:
    if iou.ndim != 2:
        raise ConfigError("IoU matrix must be 2-D")
    if not 0 < threshold <= 1:
        raise ConfigError("threshold must lie in (0, 1]")
