"""Tracking substrate: IoU matching, tracks, the discriminator, GT building."""

from repro.tracking.discriminator import FrameMatchResult, TrackDiscriminator
from repro.tracking.groundtruth import GroundTruthTable, approximate_ground_truth
from repro.tracking.iou_tracker import OnlineIoUTracker, TrackedObject
from repro.tracking.matching import greedy_match, hungarian_match
from repro.tracking.tracks import Track

__all__ = [
    "FrameMatchResult",
    "GroundTruthTable",
    "OnlineIoUTracker",
    "Track",
    "TrackDiscriminator",
    "TrackedObject",
    "approximate_ground_truth",
    "greedy_match",
    "hungarian_match",
]
