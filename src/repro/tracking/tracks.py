"""Tracks: the discriminator's memory of objects it has already returned.

When the discriminator accepts a detection as a *new* object, it runs a
tracker "backwards and forwards through video ... to compute the position of
that object in each frame where the object was visible; then, future
detections are discarded if they match previously observed positions"
(§II-B). A :class:`Track` is that record: a covered frame interval plus the
per-frame box the tracker produced, and a counter of how many sampled frames
have matched it (which is what feeds Algorithm 1's ``d1``).

Two kinds of track exist in the simulation:

* instance-backed — the simulated tracker followed a real trajectory; its
  per-frame box delegates to the ground-truth trajectory over the interval
  the tracker managed to cover before losing the object;
* point tracks — a false-positive detection has no trajectory to follow, so
  the track covers just the frame it was seen in with the detected box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DatasetError
from repro.video.geometry import BoundingBox
from repro.video.synthetic import ObjectInstance


@dataclass
class Track:
    """One returned object's tracked extent.

    Attributes
    ----------
    track_id:
        Dense discriminator-local id.
    class_name, video:
        What and where.
    start, end:
        Frame interval ``[start, end)`` the tracker covered.
    instance:
        Backing ground-truth instance, or None for false-positive tracks.
    anchor_box:
        The originally detected box (the only position known for
        false-positive tracks).
    times_seen:
        How many sampled frames have shown this object so far (>= 1; the
        discovery itself counts as the first sighting).
    origin_chunk:
        The chunk the discovery frame was sampled from, set by the query
        engine; feeds the ``cross_chunk="origin"`` accounting mode.
    """

    track_id: int
    class_name: str
    video: int
    start: int
    end: int
    instance: Optional[ObjectInstance]
    anchor_box: BoundingBox
    times_seen: int = 1
    origin_chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise DatasetError(f"track {self.track_id} has empty interval")
        if self.instance is not None:
            if self.start < self.instance.start or self.end > self.instance.end:
                raise DatasetError(
                    "track interval must lie inside the backing instance"
                )

    def covers(self, video: int, frame: int) -> bool:
        return video == self.video and self.start <= frame < self.end

    def box_at(self, frame: int) -> BoundingBox:
        """Tracked box at ``frame`` (must be covered)."""
        if not self.start <= frame < self.end:
            raise DatasetError(
                f"frame {frame} outside track {self.track_id} "
                f"[{self.start}, {self.end})"
            )
        if self.instance is None:
            return self.anchor_box
        return self.instance.box_at(frame)

    @property
    def is_false_positive(self) -> bool:
        return self.instance is None
