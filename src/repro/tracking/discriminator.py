"""The discriminator: decides whether a detection is a new distinct object.

This is ``discrim`` in Algorithm 1. Given a frame's detections it returns

* ``d0`` — detections matching no known track: these are *new* objects;
* ``d1`` — detections whose matched track had been seen in exactly one
  sampled frame before (their object just moved from the "seen once" to the
  "seen twice" bucket, so N1 decreases).

Matching is genuine box matching: a detection matches a track if the track
covers the detection's frame and the IoU between the detected box and the
track's box at that frame clears a threshold; ties are resolved greedily,
one detection per track (same as SORT's association step).

When a new object is accepted, the simulated tracker extends its track
forwards and backwards from the discovery frame along the ground-truth
trajectory, losing the object independently in each direction with a
per-frame hazard (``track_loss_per_frame``). This reproduces the real
failure mode that matters for the sampler: a lost track means a later
sighting of the same physical object is (incorrectly but honestly) counted
as a new result — exactly the double-counting hazard the paper's recall
metric inherits from its approximate ground truth (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.detection.detections import Detection
from repro.errors import ConfigError
from repro.tracking.matching import greedy_match
from repro.tracking.tracks import Track
from repro.utils.rng import spawn_rng
from repro.video.geometry import iou_matrix
from repro.video.synthetic import SyntheticWorld


class _TrackColumns:
    """Columnar store of one (video, class) group's tracks.

    Matching needs, per candidate track: does it cover the frame
    (``starts``/``ends``) and where is its box at the frame (linear
    interpolation ``entry + delta * clip((frame - t0) / denom, 0, 1)``;
    false-positive tracks carry ``delta = 0`` so the expression collapses
    to their anchor box). Keeping those as amortised-growth numpy arrays
    turns the per-candidate ``covers``/``box_at`` Python calls of the
    matching hot path into a handful of whole-group expressions.
    """

    def __init__(self, capacity: int = 8):
        self.size = 0
        self.ids = np.empty(capacity, dtype=np.int64)
        self.starts = np.empty(capacity, dtype=np.int64)
        self.ends = np.empty(capacity, dtype=np.int64)
        self.t0 = np.empty(capacity, dtype=float)
        self.denom = np.empty(capacity, dtype=float)
        self.entry = np.empty((capacity, 4), dtype=float)
        self.delta = np.empty((capacity, 4), dtype=float)

    def append(
        self,
        track_id: int,
        start: int,
        end: int,
        t0: float,
        denom: float,
        entry: np.ndarray,
        delta: np.ndarray,
    ) -> None:
        n = self.size
        if n == self.ids.size:
            grow = max(2 * n, 8)
            for name in ("ids", "starts", "ends", "t0", "denom"):
                old = getattr(self, name)
                new = np.empty(grow, dtype=old.dtype)
                new[:n] = old
                setattr(self, name, new)
            for name in ("entry", "delta"):
                old = getattr(self, name)
                new = np.empty((grow, 4), dtype=old.dtype)
                new[:n] = old
                setattr(self, name, new)
        self.ids[n] = track_id
        self.starts[n] = start
        self.ends[n] = end
        self.t0[n] = t0
        self.denom[n] = denom
        self.entry[n] = entry
        self.delta[n] = delta
        self.size = n + 1

    def active(self, frame: int) -> np.ndarray:
        """Row indices of tracks covering ``frame``."""
        n = self.size
        return np.flatnonzero(
            (self.starts[:n] <= frame) & (frame < self.ends[:n])
        )

    def boxes_at(self, rows: np.ndarray, frame: int) -> np.ndarray:
        """Tracked boxes (len(rows), 4) at ``frame``."""
        t = np.clip((frame - self.t0[rows]) / self.denom[rows], 0.0, 1.0)
        return self.entry[rows] + self.delta[rows] * t[:, None]


@dataclass
class FrameMatchResult:
    """Everything one frame's discrimination produced.

    ``d1_tracks`` aligns one-to-one with ``d1`` (the matched track behind
    each seen-exactly-once detection), carrying each track's discovery
    ``origin_chunk`` for cross-chunk N1 accounting.
    """

    d0: List[Detection] = field(default_factory=list)
    d1: List[Detection] = field(default_factory=list)
    new_tracks: List[Track] = field(default_factory=list)
    d1_tracks: List[Track] = field(default_factory=list)


class TrackDiscriminator:
    """Track-based duplicate suppression for distinct object queries."""

    def __init__(
        self,
        world: SyntheticWorld,
        iou_threshold: float = 0.45,
        track_loss_per_frame: float = 0.001,
        seed: int = 0,
    ):
        if not 0 < iou_threshold <= 1:
            raise ConfigError("iou_threshold must lie in (0, 1]")
        if not 0 <= track_loss_per_frame < 1:
            raise ConfigError("track_loss_per_frame must lie in [0, 1)")
        self.world = world
        self.iou_threshold = iou_threshold
        self.track_loss_per_frame = track_loss_per_frame
        self.seed = seed
        self.tracks: List[Track] = []
        # Per (video, class) columnar index of tracks, to keep matching
        # cheap: candidate filtering and box interpolation are whole-group
        # numpy expressions (see :class:`_TrackColumns`).
        self._index: Dict[Tuple[int, str], _TrackColumns] = {}
        self._pending: Optional[Tuple[int, int, tuple, List[Detection], List[Detection]]] = None


    # -- the paper's two-call interface (Algorithm 1 lines 10 and 13) -------

    def get_matches(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection]]:
        """Return (d0, d1) for a frame's detections without mutating state."""
        d0, d1, assignment = self._match(video, frame, detections)
        self._pending = (video, frame, tuple(id(d) for d in detections), d0, assignment)
        return d0, d1

    def add(self, video: int, frame: int, detections: List[Detection]) -> List[Track]:
        """Fold the frame's detections into the track store.

        Must be called after :meth:`get_matches` on the same frame (the
        paper's calling convention); re-matching is avoided by caching.
        Returns the newly created tracks.
        """
        key = (video, frame, tuple(id(d) for d in detections))
        if self._pending is not None and self._pending[:3] == key:
            _, _, _, d0, assignment = self._pending
        else:
            d0, _, assignment = self._match(video, frame, detections)
        self._pending = None
        for track_idx in assignment.values():
            self.tracks[track_idx].times_seen += 1
        return [self._create_track(det) for det in d0]

    # -- the one-call convenience used by the query engine -----------------

    def observe(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection], List[Track]]:
        """get_matches + add in one step; returns (d0, d1, new_tracks)."""
        result = self.observe_full(video, frame, detections)
        return result.d0, result.d1, result.new_tracks

    def observe_full_batch(
        self,
        videos: "List[int]",
        frames: "List[int]",
        detection_lists: "List[List[Detection]]",
    ) -> List[FrameMatchResult]:
        """Discriminate a batch of frames (§III-F batched sampling).

        The aligned lists give each frame's address and detections in
        sampling order. Matching is inherently sequential — a track created
        from an earlier frame of the batch must be matchable by later
        frames — so the frames are folded into the store in order, exactly
        as repeated :meth:`observe_full` calls would; the batch entry point
        amortises per-call overhead and skips the matcher entirely for
        frames with no detections (which leave the store untouched).
        """
        observe_full = self.observe_full
        return [
            observe_full(video, frame, detections)
            if detections
            else FrameMatchResult()
            for video, frame, detections in zip(videos, frames, detection_lists, strict=True)
        ]

    def observe_full(
        self, video: int, frame: int, detections: List[Detection]
    ) -> FrameMatchResult:
        """One-step discrimination with full match detail."""
        d0, d1_dets, assignment = self._match(video, frame, detections)
        # Mirror _match's d1 construction exactly so the track list aligns
        # one-to-one with the d1 detection list.
        d1_tracks = [
            self.tracks[tid]
            for _, tid in assignment.items()
            if self.tracks[tid].times_seen == 1
        ]
        for track_idx in assignment.values():
            self.tracks[track_idx].times_seen += 1
        new_tracks = [self._create_track(det) for det in d0]
        self._pending = None
        return FrameMatchResult(
            d0=d0, d1=d1_dets, new_tracks=new_tracks, d1_tracks=d1_tracks
        )

    # -- internals ---------------------------------------------------------

    def _match(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection], Dict[int, int]]:
        if not detections:
            return [], [], {}
        # Candidates are gathered per class (classes in sorted order for
        # cross-process determinism; within a class, tracks in creation
        # order, as the historical id-list index yielded them). A detection
        # only ever scores against same-class tracks, so the assembled
        # matrix equals the historical all-pairs IoU with cross-class
        # entries zeroed — and greedy matching decomposes per class, so the
        # resulting pair set is unchanged.
        rows_by_class: Dict[str, List[int]] = {}
        for i, det in enumerate(detections):
            rows_by_class.setdefault(det.class_name, []).append(i)
        blocks = []
        total_candidates = 0
        for cls in sorted(rows_by_class):
            columns = self._index.get((video, cls))
            if columns is None:
                continue
            active = columns.active(frame)
            if active.size == 0:
                continue
            blocks.append((rows_by_class[cls], columns, active))
            total_candidates += int(active.size)
        if not total_candidates:
            return list(detections), [], {}
        det_boxes = np.array(
            [(d.box.x1, d.box.y1, d.box.x2, d.box.y2) for d in detections]
        )
        iou = np.zeros((len(detections), total_candidates))
        candidate_ids: List[int] = []
        col = 0
        for det_rows, columns, active in blocks:
            track_boxes = columns.boxes_at(active, frame)
            iou[
                np.asarray(det_rows)[:, None],
                np.arange(col, col + active.size)[None, :],
            ] = iou_matrix(det_boxes[det_rows], track_boxes)
            candidate_ids.extend(columns.ids[active].tolist())
            col += int(active.size)
        pairs = greedy_match(iou, self.iou_threshold)
        assignment = {di: candidate_ids[ti] for di, ti in pairs}
        d0 = [d for i, d in enumerate(detections) if i not in assignment]
        d1 = [
            detections[di]
            for di, tid in assignment.items()
            if self.tracks[tid].times_seen == 1
        ]
        return d0, d1, assignment

    def _create_track(self, det: Detection) -> Track:
        track_id = len(self.tracks)
        if det.instance_uid is None:
            track = Track(
                track_id=track_id,
                class_name=det.class_name,
                video=det.video,
                start=det.frame,
                end=det.frame + 1,
                instance=None,
                anchor_box=det.box,
            )
            entry = det.box.as_array()
            delta = np.zeros(4)
            t0, denom = float(det.frame), 1.0
        else:
            instance = self.world.instances[det.instance_uid]
            rng = spawn_rng(self.seed, "trackext", track_id, det.frame)
            start, end = self._extend(instance.start, instance.end, det.frame, rng)
            track = Track(
                track_id=track_id,
                class_name=det.class_name,
                video=det.video,
                start=start,
                end=end,
                instance=instance,
                anchor_box=det.box,
            )
            entry = instance.entry_box.as_array()
            delta = instance.exit_box.as_array() - entry
            t0 = float(instance.start)
            denom = float(max(instance.duration - 1, 1))
        self.tracks.append(track)
        key = (track.video, track.class_name)
        columns = self._index.get(key)
        if columns is None:
            columns = self._index[key] = _TrackColumns()
        columns.append(track_id, track.start, track.end, t0, denom, entry, delta)
        return track

    def _extend(
        self, inst_start: int, inst_end: int, frame: int, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """Simulate tracking from ``frame`` with per-frame loss hazard."""
        if self.track_loss_per_frame <= 0:
            return inst_start, inst_end
        fwd_run = int(rng.geometric(self.track_loss_per_frame))
        bwd_run = int(rng.geometric(self.track_loss_per_frame))
        start = max(inst_start, frame - bwd_run)
        end = min(inst_end, frame + 1 + fwd_run)
        return start, end

    # -- stats -------------------------------------------------------------

    @property
    def num_tracks(self) -> int:
        return len(self.tracks)

    def distinct_real_instances(self) -> int:
        """Unique backing instances across tracks (evaluation only)."""
        return len(
            {t.instance.uid for t in self.tracks if t.instance is not None}
        )
