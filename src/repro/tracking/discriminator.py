"""The discriminator: decides whether a detection is a new distinct object.

This is ``discrim`` in Algorithm 1. Given a frame's detections it returns

* ``d0`` — detections matching no known track: these are *new* objects;
* ``d1`` — detections whose matched track had been seen in exactly one
  sampled frame before (their object just moved from the "seen once" to the
  "seen twice" bucket, so N1 decreases).

Matching is genuine box matching: a detection matches a track if the track
covers the detection's frame and the IoU between the detected box and the
track's box at that frame clears a threshold; ties are resolved greedily,
one detection per track (same as SORT's association step).

When a new object is accepted, the simulated tracker extends its track
forwards and backwards from the discovery frame along the ground-truth
trajectory, losing the object independently in each direction with a
per-frame hazard (``track_loss_per_frame``). This reproduces the real
failure mode that matters for the sampler: a lost track means a later
sighting of the same physical object is (incorrectly but honestly) counted
as a new result — exactly the double-counting hazard the paper's recall
metric inherits from its approximate ground truth (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.detection.detections import Detection
from repro.errors import ConfigError
from repro.tracking.matching import greedy_match
from repro.tracking.tracks import Track
from repro.utils.rng import spawn_rng
from repro.video.geometry import iou_matrix
from repro.video.synthetic import SyntheticWorld


@dataclass
class FrameMatchResult:
    """Everything one frame's discrimination produced.

    ``d1_tracks`` aligns one-to-one with ``d1`` (the matched track behind
    each seen-exactly-once detection), carrying each track's discovery
    ``origin_chunk`` for cross-chunk N1 accounting.
    """

    d0: List[Detection] = field(default_factory=list)
    d1: List[Detection] = field(default_factory=list)
    new_tracks: List[Track] = field(default_factory=list)
    d1_tracks: List[Track] = field(default_factory=list)


class TrackDiscriminator:
    """Track-based duplicate suppression for distinct object queries."""

    def __init__(
        self,
        world: SyntheticWorld,
        iou_threshold: float = 0.45,
        track_loss_per_frame: float = 0.001,
        seed: int = 0,
    ):
        if not 0 < iou_threshold <= 1:
            raise ConfigError("iou_threshold must lie in (0, 1]")
        if not 0 <= track_loss_per_frame < 1:
            raise ConfigError("track_loss_per_frame must lie in [0, 1)")
        self.world = world
        self.iou_threshold = iou_threshold
        self.track_loss_per_frame = track_loss_per_frame
        self.seed = seed
        self.tracks: List[Track] = []
        # Per (video, class) index of track ids, to keep matching cheap.
        self._index: Dict[Tuple[int, str], List[int]] = {}
        self._pending: Optional[Tuple[int, int, tuple, List[Detection], List[Detection]]] = None


    # -- the paper's two-call interface (Algorithm 1 lines 10 and 13) -------

    def get_matches(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection]]:
        """Return (d0, d1) for a frame's detections without mutating state."""
        d0, d1, assignment = self._match(video, frame, detections)
        self._pending = (video, frame, tuple(id(d) for d in detections), d0, assignment)
        return d0, d1

    def add(self, video: int, frame: int, detections: List[Detection]) -> List[Track]:
        """Fold the frame's detections into the track store.

        Must be called after :meth:`get_matches` on the same frame (the
        paper's calling convention); re-matching is avoided by caching.
        Returns the newly created tracks.
        """
        key = (video, frame, tuple(id(d) for d in detections))
        if self._pending is not None and self._pending[:3] == key:
            _, _, _, d0, assignment = self._pending
        else:
            d0, _, assignment = self._match(video, frame, detections)
        self._pending = None
        for track_idx in assignment.values():
            self.tracks[track_idx].times_seen += 1
        return [self._create_track(det) for det in d0]

    # -- the one-call convenience used by the query engine -----------------

    def observe(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection], List[Track]]:
        """get_matches + add in one step; returns (d0, d1, new_tracks)."""
        result = self.observe_full(video, frame, detections)
        return result.d0, result.d1, result.new_tracks

    def observe_full_batch(
        self,
        videos: "List[int]",
        frames: "List[int]",
        detection_lists: "List[List[Detection]]",
    ) -> List[FrameMatchResult]:
        """Discriminate a batch of frames (§III-F batched sampling).

        The aligned lists give each frame's address and detections in
        sampling order. Matching is inherently sequential — a track created
        from an earlier frame of the batch must be matchable by later
        frames — so the frames are folded into the store in order, exactly
        as repeated :meth:`observe_full` calls would; the batch entry point
        amortises per-call overhead and skips the matcher entirely for
        frames with no detections (which leave the store untouched).
        """
        observe_full = self.observe_full
        return [
            observe_full(video, frame, detections)
            if detections
            else FrameMatchResult()
            for video, frame, detections in zip(videos, frames, detection_lists)
        ]

    def observe_full(
        self, video: int, frame: int, detections: List[Detection]
    ) -> FrameMatchResult:
        """One-step discrimination with full match detail."""
        d0, d1_dets, assignment = self._match(video, frame, detections)
        # Mirror _match's d1 construction exactly so the track list aligns
        # one-to-one with the d1 detection list.
        d1_tracks = [
            self.tracks[tid]
            for _, tid in assignment.items()
            if self.tracks[tid].times_seen == 1
        ]
        for track_idx in assignment.values():
            self.tracks[track_idx].times_seen += 1
        new_tracks = [self._create_track(det) for det in d0]
        self._pending = None
        return FrameMatchResult(
            d0=d0, d1=d1_dets, new_tracks=new_tracks, d1_tracks=d1_tracks
        )

    # -- internals ---------------------------------------------------------

    def _match(
        self, video: int, frame: int, detections: List[Detection]
    ) -> Tuple[List[Detection], List[Detection], Dict[int, int]]:
        if not detections:
            return [], [], {}
        candidate_ids = [
            tid
            for cls in {d.class_name for d in detections}
            for tid in self._index.get((video, cls), [])
            if self.tracks[tid].covers(video, frame)
        ]
        if not candidate_ids:
            return list(detections), [], {}
        det_boxes = np.stack([d.box.as_array() for d in detections])
        track_boxes = np.stack(
            [self.tracks[tid].box_at(frame).as_array() for tid in candidate_ids]
        )
        iou = iou_matrix(det_boxes, track_boxes)
        # Class must agree as well as geometry.
        for di, det in enumerate(detections):
            for ti, tid in enumerate(candidate_ids):
                if self.tracks[tid].class_name != det.class_name:
                    iou[di, ti] = 0.0
        pairs = greedy_match(iou, self.iou_threshold)
        assignment = {di: candidate_ids[ti] for di, ti in pairs}
        d0 = [d for i, d in enumerate(detections) if i not in assignment]
        d1 = [
            detections[di]
            for di, tid in assignment.items()
            if self.tracks[tid].times_seen == 1
        ]
        return d0, d1, assignment

    def _create_track(self, det: Detection) -> Track:
        track_id = len(self.tracks)
        if det.instance_uid is None:
            track = Track(
                track_id=track_id,
                class_name=det.class_name,
                video=det.video,
                start=det.frame,
                end=det.frame + 1,
                instance=None,
                anchor_box=det.box,
            )
        else:
            instance = self.world.instances[det.instance_uid]
            rng = spawn_rng(self.seed, "trackext", track_id, det.frame)
            start, end = self._extend(instance.start, instance.end, det.frame, rng)
            track = Track(
                track_id=track_id,
                class_name=det.class_name,
                video=det.video,
                start=start,
                end=end,
                instance=instance,
                anchor_box=det.box,
            )
        self.tracks.append(track)
        self._index.setdefault((track.video, track.class_name), []).append(track_id)
        return track

    def _extend(
        self, inst_start: int, inst_end: int, frame: int, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """Simulate tracking from ``frame`` with per-frame loss hazard."""
        if self.track_loss_per_frame <= 0:
            return inst_start, inst_end
        fwd_run = int(rng.geometric(self.track_loss_per_frame))
        bwd_run = int(rng.geometric(self.track_loss_per_frame))
        start = max(inst_start, frame - bwd_run)
        end = min(inst_end, frame + 1 + fwd_run)
        return start, end

    # -- stats -------------------------------------------------------------

    @property
    def num_tracks(self) -> int:
        return len(self.tracks)

    def distinct_real_instances(self) -> int:
        """Unique backing instances across tracks (evaluation only)."""
        return len(
            {t.instance.uid for t in self.tracks if t.instance is not None}
        )
