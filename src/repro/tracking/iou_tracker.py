"""An online SORT-like IoU tracker over sequential detector outputs.

The paper builds its approximate ground truth by "sequentially scanning
every video in the dataset and running each frame through a reference object
detector ... To match objects across neighboring frames, we employ an
Intersection over Union (IoU) matching approach similar to SORT" (§V-A).
This module is that tracker: detections arrive frame by frame; each is
matched to an active track by IoU (greedy, like SORT's cheap variant) with a
maximum frame gap; unmatched detections open new tracks.

It serves two roles: building approximate ground truth in
:mod:`repro.tracking.groundtruth`, and acting as a reference implementation
the discriminator's behaviour can be sanity-checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.detection.detections import Detection
from repro.errors import ConfigError
from repro.tracking.matching import greedy_match
from repro.video.geometry import BoundingBox, iou_matrix


@dataclass
class TrackedObject:
    """A track produced by the online tracker."""

    track_id: int
    class_name: str
    video: int
    first_frame: int
    last_frame: int
    last_box: BoundingBox
    detections: int = 1
    #: Majority vote over backing uids (evaluation only; None = untracked FP).
    instance_votes: Dict[Optional[int], int] = field(default_factory=dict)

    @property
    def span(self) -> int:
        return self.last_frame - self.first_frame + 1

    def majority_instance(self) -> Optional[int]:
        if not self.instance_votes:
            return None
        return max(self.instance_votes.items(), key=lambda kv: kv[1])[0]


class OnlineIoUTracker:
    """Frame-by-frame greedy IoU association with gap tolerance."""

    def __init__(
        self,
        iou_threshold: float = 0.3,
        max_frame_gap: int = 30,
    ):
        if not 0 < iou_threshold <= 1:
            raise ConfigError("iou_threshold must lie in (0, 1]")
        if max_frame_gap < 1:
            raise ConfigError("max_frame_gap must be >= 1")
        self.iou_threshold = iou_threshold
        self.max_frame_gap = max_frame_gap
        self.finished: List[TrackedObject] = []
        self._active: List[TrackedObject] = []
        self._current_video: Optional[int] = None

    def process_frame(
        self, video: int, frame: int, detections: List[Detection]
    ) -> None:
        """Advance the tracker by one (sequentially increasing) frame."""
        if self._current_video != video:
            self.flush()
            self._current_video = video
        # Retire tracks that have been unmatched for too long.
        still_active: List[TrackedObject] = []
        for track in self._active:
            if frame - track.last_frame > self.max_frame_gap:
                self.finished.append(track)
            else:
                still_active.append(track)
        self._active = still_active

        if not detections:
            return
        if self._active:
            det_boxes = np.array(
                [(d.box.x1, d.box.y1, d.box.x2, d.box.y2) for d in detections]
            )
            track_boxes = np.array(
                [
                    (b.x1, b.y1, b.x2, b.y2)
                    for b in (t.last_box for t in self._active)
                ]
            )
            iou = iou_matrix(det_boxes, track_boxes)
            # Class must agree as well as geometry: one broadcast
            # comparison instead of the per-pair Python double loop.
            det_cls = np.array([d.class_name for d in detections], dtype=object)
            track_cls = np.array(
                [t.class_name for t in self._active], dtype=object
            )
            iou[det_cls[:, None] != track_cls[None, :]] = 0.0
            pairs = greedy_match(iou, self.iou_threshold)
        else:
            pairs = []
        matched = {di for di, _ in pairs}
        for di, ti in pairs:
            det = detections[di]
            track = self._active[ti]
            track.last_frame = frame
            track.last_box = det.box
            track.detections += 1
            track.instance_votes[det.instance_uid] = (
                track.instance_votes.get(det.instance_uid, 0) + 1
            )
        for di, det in enumerate(detections):
            if di in matched:
                continue
            track = TrackedObject(
                track_id=len(self.finished) + len(self._active),
                class_name=det.class_name,
                video=video,
                first_frame=frame,
                last_frame=frame,
                last_box=det.box,
                instance_votes={det.instance_uid: 1},
            )
            self._active.append(track)

    def flush(self) -> None:
        """Close all active tracks (end of a video or of the scan)."""
        self.finished.extend(self._active)
        self._active = []

    def results(self) -> List[TrackedObject]:
        """All tracks, closing active ones first."""
        self.flush()
        return self.finished
