"""Approximate ground truth by sequential scan + IoU tracking (§V-A).

"None of the datasets have human-generated object instance labels ...
Therefore, we approximate ground truth by sequentially scanning every video
in the dataset and running each frame through a reference object detector
[and] match the bounding boxes with those from previous frames" (§V-A).

In the simulation we *have* exact ground truth (the synthetic world), but
reproducing this pipeline matters for two reasons: it validates the tracker
substrate end-to-end (its instance counts should approach the true counts as
detector noise shrinks), and it exposes the same interface the paper's
evaluation used, so experiments can be run against approximate GT instead of
the oracle if desired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigError
from repro.tracking.iou_tracker import OnlineIoUTracker, TrackedObject
from repro.video.datasets import Dataset


@dataclass
class GroundTruthTable:
    """Approximate per-class instance inventory from a full scan."""

    tracks_by_class: Dict[str, List[TrackedObject]]
    frames_scanned: int
    stride: int

    def count(self, class_name: str) -> int:
        return len(self.tracks_by_class.get(class_name, []))

    def classes(self) -> List[str]:
        return sorted(self.tracks_by_class)

    def distinct_real_instances(self, class_name: str) -> int:
        """Unique backing instances among the class's tracks (evaluation)."""
        uids = {
            track.majority_instance()
            for track in self.tracks_by_class.get(class_name, [])
        }
        uids.discard(None)
        return len(uids)


def approximate_ground_truth(
    dataset: Dataset,
    detector: Optional[SimulatedDetector] = None,
    stride: int = 1,
    iou_threshold: float = 0.3,
    max_frame_gap_s: float = 1.0,
    min_track_detections: int = 1,
) -> GroundTruthTable:
    """Scan every video sequentially and track detections into instances.

    Parameters
    ----------
    stride:
        Process every ``stride``-th frame (the paper scans every frame for
        ground truth; a stride is useful for quick approximations).
    max_frame_gap_s:
        Tracker association gap in seconds (converted per video fps).
    min_track_detections:
        Drop tracks supported by fewer detections (suppresses one-off false
        positives, mirroring the paper's manual quality-tuning step).
    """
    if stride < 1:
        raise ConfigError("stride must be >= 1")
    detector = detector or SimulatedDetector(dataset.world)
    by_class: Dict[str, List[TrackedObject]] = {}
    frames_scanned = 0
    for video_idx, video in dataset.repository.iter_videos():
        gap = max(int(round(max_frame_gap_s * video.fps / stride)), 1) * stride
        tracker = OnlineIoUTracker(
            iou_threshold=iou_threshold, max_frame_gap=gap
        )
        # Scan through the batched detector entry point: the sequential
        # frame geometry is computed in flat arrays per block, which is
        # markedly faster than per-frame detect() calls at scan scale.
        all_frames = range(0, video.num_frames, stride)
        for block_start in range(0, len(all_frames), 2048):
            block = list(all_frames[block_start : block_start + 2048])
            detection_lists = detector.detect_batch(
                [video_idx] * len(block), block
            )
            for frame, detections in zip(block, detection_lists, strict=True):
                tracker.process_frame(video_idx, frame, detections)
            frames_scanned += len(block)
        for track in tracker.results():
            if track.detections < min_track_detections:
                continue
            by_class.setdefault(track.class_name, []).append(track)
    return GroundTruthTable(
        tracks_by_class=by_class, frames_scanned=frames_scanned, stride=stride
    )
