"""Extensions beyond the paper's core: the §VII future-work features."""

from repro.extensions.fusion import FusionSearcher

__all__ = ["FusionSearcher"]
