"""The §VII fusion extension: proxy scoring *without* a full upfront scan.

The paper's future-work section observes that "the equations in section III
remain valid even if sampling within a chunk is non-uniform but based on a
score. The current downside of scoring frames is the scanning component;
therefore, a key to integrating these approaches would be a form of
predictive scoring of frames that avoids scanning [the whole dataset]".

:class:`FusionSearcher` implements that integration:

* chunk selection stays pure ExSample (Thompson sampling over the Gamma
  beliefs of Eq. III.4 — valid under non-uniform within-chunk sampling, as
  the paper notes);
* within a chunk, frames start out drawn by random+ exactly as in plain
  ExSample; once ExSample has returned to the same chunk
  ``upgrade_after`` times — evidence the chunk is worth investing in — the
  proxy scores *that chunk only* (cost: chunk frames / scan fps, charged at
  that moment) and the remaining draws become score-biased (Gumbel top-k
  over score/temperature, skipping frames already sampled);
* chunks ExSample abandons early are never scanned at all.

Compared to BlazeIt-style search this replaces the mandatory full-dataset
scan with incremental scans that follow where sampling actually
concentrates; compared to plain ExSample it converts proxy signal into a
better within-chunk hit rate exactly where it matters. With a useless proxy
(AUC 0.5) it degrades to plain ExSample plus the scans of its hot chunks.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import ExSampleConfig
from repro.core.environment import SearchEnvironment
from repro.core.frame_order import FrameOrder, RandomPlusOrder
from repro.core.registry import register_searcher
from repro.core.sampler import ExSampleSearcher
from repro.errors import ConfigError
from repro.utils.rng import RngFactory

#: Signature of per-chunk score providers: chunk index -> per-frame scores.
ChunkScoreFn = Callable[[int], np.ndarray]
#: Signature of per-chunk scan cost: chunk index -> seconds.
ChunkCostFn = Callable[[int], float]


class HybridScoredOrder(FrameOrder):
    """random+ that upgrades to score-biased sampling after k draws.

    The upgrade computes one Gumbel-perturbed key per frame (fixing the
    rest of the order up front) and skips frames already emitted during
    the random+ phase, so the whole order remains a permutation.
    """

    def __init__(
        self,
        size: int,
        rng: np.random.Generator,
        score_fn: Callable[[], np.ndarray],
        upgrade_after: int,
        on_upgrade: Callable[[], None],
        temperature: float = 1.0,
    ):
        super().__init__(size)
        if upgrade_after < 0:
            raise ConfigError("upgrade_after must be non-negative")
        if temperature <= 0:
            raise ConfigError("temperature must be positive")
        self._rng = rng
        self._score_fn = score_fn
        self._upgrade_after = upgrade_after
        self._on_upgrade = on_upgrade
        self._temperature = temperature
        self._inner = RandomPlusOrder(size, rng)
        self._emitted: set[int] = set()
        self._scored_order: Optional[np.ndarray] = None
        self._cursor = 0

    @property
    def upgraded(self) -> bool:
        return self._scored_order is not None

    def _upgrade(self) -> None:
        scores = np.asarray(self._score_fn(), dtype=float)
        if scores.shape != (self.size,):
            raise ConfigError(
                f"scores have shape {scores.shape}, expected ({self.size},)"
            )
        gumbel = -np.log(-np.log(self._rng.uniform(1e-12, 1.0, size=self.size)))
        keys = scores / self._temperature + gumbel
        self._scored_order = np.argsort(-keys)
        self._on_upgrade()

    def _next_impl(self) -> int:
        if self._scored_order is None and self._produced >= self._upgrade_after:
            self._upgrade()
        if self._scored_order is None:
            frame = self._inner.next()
            self._emitted.add(frame)
            return frame
        while True:
            frame = int(self._scored_order[self._cursor])
            self._cursor += 1
            if frame not in self._emitted:
                self._emitted.add(frame)
                return frame


class FusionSearcher(ExSampleSearcher):
    """ExSample chunk selection + lazily-scored within-chunk sampling."""

    name = "exsample_fusion"

    def __init__(
        self,
        env: SearchEnvironment,
        chunk_scores: ChunkScoreFn,
        chunk_scan_cost: ChunkCostFn,
        config: Optional[ExSampleConfig] = None,
        rng: RngFactory | int | None = None,
        upgrade_after: int = 8,
        temperature: float = 1.0,
        score_scale: float = 4.0,
    ):
        """
        Parameters
        ----------
        chunk_scores:
            Returns the proxy scores for every frame of one chunk. Called at
            most once per chunk, only for chunks sampled at least
            ``upgrade_after`` times.
        chunk_scan_cost:
            Seconds charged for scoring one chunk (``size / scan_fps``
            under the paper's cost model), charged when the chunk upgrades.
        upgrade_after:
            Draws from a chunk before it is worth paying its scoring scan.
            0 scores every visited chunk immediately; larger values defer
            the investment to chunks Thompson sampling keeps returning to.
        temperature, score_scale:
            The within-chunk draw uses Gumbel top-k over
            ``score_scale * scores / temperature``; ``score_scale`` sharpens
            raw [0, 1] proxy scores into a meaningful preference.
        """
        super().__init__(env, config=config, rng=rng)
        if temperature <= 0 or score_scale <= 0:
            raise ConfigError("temperature and score_scale must be positive")
        if upgrade_after < 0:
            raise ConfigError("upgrade_after must be non-negative")
        self._chunk_scores = chunk_scores
        self._chunk_scan_cost = chunk_scan_cost
        self._upgrade_after = upgrade_after
        self._temperature = temperature
        self._score_scale = score_scale
        self._pending_cost = 0.0
        self.scanned_chunks: List[int] = []

    def _score_for(self, chunk: int) -> np.ndarray:
        """Scaled proxy scores for one chunk (hybrid-order score hook)."""
        return np.asarray(self._chunk_scores(chunk), dtype=float) * self._score_scale

    def _charge_scan(self, chunk: int) -> None:
        """Hybrid-order upgrade hook: pay the chunk's scoring scan now."""
        self._pending_cost += float(self._chunk_scan_cost(chunk))
        self.scanned_chunks.append(chunk)

    def _make_order(self, chunk: int) -> FrameOrder:
        # functools.partial over bound methods (not local closures) keeps
        # the searcher picklable for session checkpoint/restore.
        return HybridScoredOrder(
            int(self.sizes[chunk]),
            self.rngs.stream("fusion-order", chunk),
            score_fn=partial(self._score_for, chunk),
            upgrade_after=self._upgrade_after,
            on_upgrade=partial(self._charge_scan, chunk),
            temperature=self._temperature,
        )

    def consume_extra_cost(self) -> float:
        cost, self._pending_cost = self._pending_cost, 0.0
        return cost

    @property
    def total_scan_cost(self) -> float:
        """Scan seconds charged so far (for reporting; already in the trace)."""
        return sum(self._chunk_scan_cost(c) for c in self.scanned_chunks)


class ArrayChunkScores:
    """Per-chunk slices of a repository-wide score array (picklable).

    The engine precomputes proxy scores for every frame; this adapter
    serves the slice belonging to one chunk via the global chunk bounds.
    """

    def __init__(self, scores: np.ndarray, bounds: np.ndarray):
        self._scores = np.asarray(scores, dtype=float)
        self._bounds = np.asarray(bounds, dtype=np.int64)

    def __call__(self, chunk: int) -> np.ndarray:
        return self._scores[self._bounds[chunk] : self._bounds[chunk + 1]]


class ChunkScanCost:
    """Scan cost of scoring one chunk under a cost model (picklable)."""

    def __init__(self, cost_model, bounds: np.ndarray):
        self._cost_model = cost_model
        self._bounds = np.asarray(bounds, dtype=np.int64)

    def __call__(self, chunk: int) -> float:
        return self._cost_model.scan_cost(
            int(self._bounds[chunk + 1] - self._bounds[chunk])
        )


@register_searcher(
    "exsample_fusion",
    description="ExSample chunk choice + lazily proxy-scored hot chunks (§VII)",
)
def _build_fusion(ctx):
    engine = ctx.require_engine("exsample_fusion")
    proxy = engine.proxy_model(ctx.env.class_name, ctx.proxy_quality)
    bounds = engine.dataset.chunk_map.global_bounds()
    return FusionSearcher(
        ctx.env,
        chunk_scores=ArrayChunkScores(proxy.score_all(), bounds),
        chunk_scan_cost=ChunkScanCost(engine.cost_model, bounds),
        config=ctx.fold_exsample_config("exsample_fusion"),
        rng=ctx.rngs,
    )
