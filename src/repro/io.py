"""Persistence: saving and reloading search traces and query outcomes.

Long experiments should not have to re-run to be re-analysed. This module
round-trips the library's result objects through plain, inspectable files:

* :func:`save_trace` / :func:`load_trace` — a :class:`SearchTrace` as a
  compressed ``.npz`` (arrays) with an embedded JSON header (scalars and
  result payloads). Result payloads survive as dictionaries: theory-sim
  integer ids stay ints; :class:`~repro.query.FoundObject` records round-trip
  losslessly.
* :func:`save_outcome_summary` — a human- and machine-readable JSON summary
  of a :class:`~repro.query.QueryOutcome` (query, method, recall milestones,
  cost), the thing you would commit next to a paper table.

Datasets themselves are *not* serialised: they are pure functions of
``(name, scale, seed)`` — :func:`dataset_fingerprint` captures that triple
so a stored trace can be re-bound to its exact world later.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from repro.core.sampler import SearchTrace
from repro.errors import ReproError
from repro.query.engine import FoundObject, QueryOutcome
from repro.query.metrics import samples_to_recall, time_to_recall
from repro.video.datasets import Dataset

Pathish = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A trace or outcome file is missing, corrupt, or incompatible."""


def _payload_to_jsonable(payload: object) -> Dict:
    if isinstance(payload, (int, np.integer)):
        return {"kind": "instance", "uid": int(payload)}
    if isinstance(payload, FoundObject):
        record = dataclasses.asdict(payload)
        record["box_xyxy"] = [float(v) for v in record["box_xyxy"]]
        return {"kind": "found", **record}
    raise PersistenceError(
        f"cannot serialise result payload of type {type(payload).__name__}"
    )


def _payload_from_jsonable(record: Dict) -> object:
    kind = record.get("kind")
    if kind == "instance":
        return int(record["uid"])
    if kind == "found":
        fields = {k: v for k, v in record.items() if k != "kind"}
        fields["box_xyxy"] = tuple(fields["box_xyxy"])
        return FoundObject(**fields)
    raise PersistenceError(f"unknown payload kind {kind!r}")


def save_trace(trace: SearchTrace, path: Pathish) -> pathlib.Path:
    """Write a trace to ``path`` (``.npz`` appended if absent)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "version": _FORMAT_VERSION,
        "searcher": trace.searcher,
        "upfront_cost": trace.upfront_cost,
        "results": [_payload_to_jsonable(p) for p in trace.results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        chunks=trace.chunks,
        frames=trace.frames,
        d0s=trace.d0s,
        d1s=trace.d1s,
        costs=trace.costs,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path


def load_trace(path: Pathish) -> SearchTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise PersistenceError(f"no trace file at {path}")
    try:
        with np.load(path) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
            arrays = {
                key: data[key]
                for key in ("chunks", "frames", "d0s", "d1s", "costs")
            }
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"corrupt trace file {path}: {exc}") from exc
    if header.get("version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"trace format version {header.get('version')} not supported"
        )
    return SearchTrace(
        chunks=arrays["chunks"],
        frames=arrays["frames"],
        d0s=arrays["d0s"],
        d1s=arrays["d1s"],
        costs=arrays["costs"],
        results=[_payload_from_jsonable(r) for r in header["results"]],
        upfront_cost=float(header["upfront_cost"]),
        searcher=str(header["searcher"]),
    )


def dataset_fingerprint(dataset: Dataset) -> Dict:
    """The identity of a (re-creatable) dataset: structure, not contents."""
    return {
        "name": dataset.name,
        "total_frames": dataset.total_frames,
        "num_chunks": dataset.chunk_map.num_chunks,
        "num_instances": dataset.world.num_instances,
        "classes": dataset.classes,
        "camera": dataset.camera,
    }


def save_outcome_summary(
    outcome: QueryOutcome,
    path: Pathish,
    dataset: Optional[Dataset] = None,
    recalls: tuple = (0.1, 0.5, 0.9),
) -> pathlib.Path:
    """Write a JSON summary of a query outcome (not the full trace)."""
    path = pathlib.Path(path)
    milestones = {}
    for recall in recalls:
        milestones[str(recall)] = {
            "samples": samples_to_recall(outcome.trace, outcome.gt_count, recall),
            "seconds": time_to_recall(outcome.trace, outcome.gt_count, recall),
        }
    summary = {
        "version": _FORMAT_VERSION,
        "query": {
            "class_name": outcome.query.class_name,
            "limit": outcome.query.limit,
            "recall_target": outcome.query.recall_target,
            "frame_budget": outcome.query.frame_budget,
            "cost_budget": outcome.query.cost_budget,
        },
        "method": outcome.method,
        "gt_count": outcome.gt_count,
        "num_results": outcome.num_results,
        "num_samples": outcome.trace.num_samples,
        "total_cost_seconds": outcome.trace.total_cost,
        "upfront_cost_seconds": outcome.trace.upfront_cost,
        "final_recall": outcome.recall(),
        "milestones": milestones,
    }
    if dataset is not None:
        summary["dataset"] = dataset_fingerprint(dataset)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2) + "\n")
    return path


def load_outcome_summary(path: Pathish) -> Dict:
    """Read a summary written by :func:`save_outcome_summary`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise PersistenceError(f"no summary file at {path}")
    try:
        summary = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"corrupt summary file {path}: {exc}") from exc
    if summary.get("version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"summary format version {summary.get('version')} not supported"
        )
    return summary
