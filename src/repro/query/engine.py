"""The query engine: repository + detector + discriminator + a searcher.

:class:`QueryEngine` is the user-facing entry point of the library. It wires
a dataset's chunk map, a (simulated) object detector, a fresh
:class:`~repro.tracking.TrackDiscriminator` and a cost model into a
:class:`~repro.core.environment.SearchEnvironment`, then runs any of the
registered search methods over it:

>>> from repro.video import make_dataset
>>> from repro.query import QueryEngine, DistinctObjectQuery
>>> dataset = make_dataset("dashcam", scale=0.02, seed=7)
>>> engine = QueryEngine(dataset, seed=7)
>>> outcome = engine.run(
...     DistinctObjectQuery("traffic light", limit=5), method="exsample"
... )
>>> outcome.num_results >= 5
True
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

# Importing these packages registers every built-in search method with the
# registry (each method module self-registers at import time).
import repro.baselines  # noqa: F401  - registers the five §II-B baselines
import repro.extensions.fusion  # noqa: F401  - registers exsample_fusion
from repro.core.belief import beliefs_from_counts
from repro.core.config import PAPER_ALPHA0, PAPER_BETA0, ExSampleConfig
from repro.core.environment import FrameRequest, Observation
from repro.core.registry import (
    SEARCH_METHODS,
    SearcherContext,
    searcher_spec,
)
from repro.core.sampler import Searcher, SearchTrace
from repro.detection.cache import CacheInfo, CacheSpec, make_detection_cache
from repro.detection.proxy import ProxyModel
from repro.detection.simulated import DetectorProfile, SimulatedDetector
from repro.errors import QueryError
from repro.index.store import (
    canonical_query_digest,
    chunk_signature,
    make_repository_index,
)
from repro.query.cost import CostModel
from repro.query.metrics import recall_curve, samples_to_recall, time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.query.session import QuerySession
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import RngFactory
from repro.video.datasets import Dataset

__all__ = [
    "SEARCH_METHODS",
    "FoundObject",
    "QueryEngine",
    "QueryOutcome",
    "ReplaySession",
    "VideoSearchEnvironment",
]


@dataclass(frozen=True)
class FoundObject:
    """One distinct result returned to the user."""

    video: int
    frame: int
    class_name: str
    score: float
    box_xyxy: tuple
    instance_uid: Optional[int]
    track_id: int


@dataclass
class QueryOutcome:
    """Everything a query run produced."""

    query: DistinctObjectQuery
    method: str
    trace: SearchTrace
    gt_count: int

    @property
    def num_results(self) -> int:
        return self.trace.num_results

    @property
    def found(self) -> List[FoundObject]:
        return [r for r in self.trace.results if isinstance(r, FoundObject)]

    def recall(self) -> float:
        curve = recall_curve(self.trace, self.gt_count)
        return float(curve[-1]) if curve.size else 0.0

    def samples_to_recall(self, recall: float) -> Optional[int]:
        return samples_to_recall(self.trace, self.gt_count, recall)

    def time_to_recall(self, recall: float) -> Optional[float]:
        return time_to_recall(self.trace, self.gt_count, recall)


class _ReplaySearcher:
    """Searcher stand-in carried by a replayed run.

    Serving drivers reach through ``run.searcher.env`` for the detector;
    a replay has no environment (nothing left to detect), so the stub
    exposes ``env = None`` and the recorded searcher name.
    """

    def __init__(self, name: str):
        self.name = name
        self.env = None


class ReplayRun:
    """A finished :class:`~repro.core.sampler.SearchRun` look-alike.

    Wraps a trace recorded by the repository index. Born finished:
    ``propose()`` yields nothing, every driver — blocking, streaming, or
    the serving event loop — observes immediate completion, and no
    detector is ever invoked.
    """

    def __init__(self, trace: SearchTrace, reason: str):
        self._trace = trace
        self.reason = reason
        self.finished = True
        self.searcher = _ReplaySearcher(trace.searcher)

    @property
    def num_samples(self) -> int:
        return self._trace.num_samples

    @property
    def num_results(self) -> int:
        return self._trace.num_results

    @property
    def total_cost(self) -> float:
        return self._trace.total_cost

    def propose(self):
        return None

    def trace(self) -> SearchTrace:
        return self._trace


class ReplaySession(QuerySession):
    """A session short-circuited by a recorded repository-index outcome.

    Behaves like a :class:`~repro.query.session.QuerySession` whose run
    already finished: ``stream()`` yields exactly the terminal
    :class:`~repro.query.session.BudgetExhausted` event (with the original
    stop reason), and :meth:`outcome` returns the *recorded* outcome
    object — byte-identical under re-pickling to what the original run
    produced — at the cost of zero detector calls.
    """

    replayed = True

    def __init__(self, record: dict, query, method: str, gt_count: int):
        outcome = pickle.loads(record["blob"])
        super().__init__(
            ReplayRun(outcome.trace, record.get("reason") or "exhausted"),
            query=query,
            method=method,
            gt_count=gt_count,
        )
        self._outcome = outcome
        #: The recorded outcome pickle, byte-for-byte what the original
        #: live run serialised (``pickle.dumps(original_outcome)``); kept
        #: so callers can verify byte-identity without re-pickling.
        self.outcome_blob: bytes = record["blob"]

    def outcome(self) -> "QueryOutcome":
        return self._outcome


class VideoSearchEnvironment:
    """SearchEnvironment over a dataset for one target class."""

    def __init__(
        self,
        dataset: Dataset,
        detector: SimulatedDetector,
        discriminator: TrackDiscriminator,
        cost_model: CostModel,
        class_name: str,
    ):
        if class_name not in dataset.classes:
            raise QueryError(
                f"class {class_name!r} not in dataset {dataset.name!r}; "
                f"available: {dataset.classes}"
            )
        self.dataset = dataset
        self.detector = detector
        self.discriminator = discriminator
        self.cost_model = cost_model
        self.class_name = class_name

    def chunk_sizes(self) -> np.ndarray:
        return self.dataset.chunk_map.sizes()

    def observe(self, chunk: int, frame: int) -> Observation:
        video, vframe = self.dataset.chunk_map.to_video_frame(chunk, frame)
        detections = self.detector.detect(video, vframe, class_filter=self.class_name)
        match = self.discriminator.observe_full(video, vframe, detections)
        return self._observation_from(
            chunk, video, vframe, match, self.cost_model.sample_cost(video, vframe)
        )

    def observe_batch(self, picks) -> List[Observation]:
        """Vectorised batch observation (§III-F).

        The trivial propose-then-ingest composition: resolve the batch
        into a :class:`~repro.core.environment.FrameRequest`, run the
        detector on it, fold the detections back in. Results are
        identical to per-pick :meth:`observe` calls in the same order —
        the detector is deterministic per frame and the discriminator
        folds the batch's frames into its track store sequentially.
        """
        if not picks:
            return []
        request = self.propose_batch(picks)
        return self.ingest_batch(request, self.detect_request(request))

    def propose_batch(self, picks) -> FrameRequest:
        """Resolve picks into a detector-facing request without detecting.

        Address translation and cost lookup resolve in a handful of numpy
        operations for the whole batch; no detector or discriminator state
        is touched, so any number of sessions can hold proposed requests
        simultaneously while a serving layer fuses their detection.
        """
        picks = list(picks)
        if not picks:
            return FrameRequest([], [], [], self.class_name, context=[])
        chunks_arr = np.fromiter(
            (chunk for chunk, _ in picks), dtype=np.int64, count=len(picks)
        )
        withins_arr = np.fromiter(
            (frame for _, frame in picks), dtype=np.int64, count=len(picks)
        )
        videos_arr, vframes_arr = self.dataset.chunk_map.to_video_frame_batch(
            chunks_arr, withins_arr
        )
        # tolist() bulk-converts to Python ints/floats in one call — the
        # scalar coercion that would otherwise dominate the batch path.
        videos = videos_arr.tolist()
        vframes = vframes_arr.tolist()
        costs = self.cost_model.sample_costs(videos_arr, vframes_arr).tolist()
        return FrameRequest(
            picks=picks,
            videos=videos,
            frames=vframes,
            class_filter=self.class_name,
            context=costs,
        )

    def detect_request(self, request: FrameRequest) -> List[list]:
        """The blocking detector invocation for one proposed request."""
        return self.detector.detect_batch(
            request.videos, request.frames, class_filter=request.class_filter
        )

    def ingest_batch(
        self, request: FrameRequest, detection_lists: Sequence[list]
    ) -> List[Observation]:
        """Fold externally produced detections into observations.

        ``detection_lists`` must hold one detection list per requested
        frame — whatever :meth:`detect_request` would have returned,
        whether it was produced by that method, by a fused cross-session
        batch, or by a cache. The discriminator consumes the frames in
        pick order, exactly as the blocking path would.
        """
        if len(detection_lists) != len(request.picks):
            raise QueryError(
                f"got {len(detection_lists)} detection lists for "
                f"{len(request.picks)} requested frames"
            )
        if not request.picks:
            return []
        matches = self.discriminator.observe_full_batch(
            request.videos, request.frames, list(detection_lists)
        )
        make_observation = self._observation_from
        return [
            make_observation(chunk, video, vframe, match, cost)
            for (chunk, _), video, vframe, match, cost in zip(
                request.picks, request.videos, request.frames, matches,
                request.context, strict=True,
            )
        ]

    def _observation_from(
        self, chunk: int, video: int, vframe: int, match, cost: float
    ) -> Observation:
        """Turn one frame's match result into the sampler-facing record."""
        d0, d1, new_tracks, d1_tracks = (
            match.d0,
            match.d1,
            match.new_tracks,
            match.d1_tracks,
        )
        for track in new_tracks:
            track.origin_chunk = chunk
        results = [
            FoundObject(
                video=video,
                frame=vframe,
                class_name=det.class_name,
                score=det.score,
                box_xyxy=tuple(det.box.as_array()),
                instance_uid=det.instance_uid,
                track_id=track.track_id,
            )
            for det, track in zip(d0, new_tracks, strict=True)
        ]
        origins = [
            track.origin_chunk if track.origin_chunk is not None else chunk
            for track in d1_tracks
        ]
        return Observation(
            d0=len(d0),
            d1=len(d1),
            results=results,
            cost=cost,
            d1_origin_chunks=origins,
        )


class QueryEngine:
    """Runs distinct-object queries over a dataset with any search method.

    ``detection_cache`` configures result memoization on the engine's
    detector: ``"unbounded"`` (the default — detection is a pure function
    of ``(seed, video, frame)``, so every run over this engine pays
    detection once per distinct frame), ``"lru"``, ``"off"``, ``"shared"``
    (one cross-process memo joined by every worker of a parallel sweep —
    see :class:`~repro.parallel.shm.SharedDetectionCache`), or a
    pre-built :class:`~repro.detection.DetectionCache` (e.g. an LRU with a
    custom capacity). Caching changes wall-clock time only, never a trace.
    When an explicit ``detector`` is passed, its own cache configuration is
    respected and ``detection_cache`` is ignored.
    """

    def __init__(
        self,
        dataset: Dataset,
        detector: Optional[SimulatedDetector] = None,
        cost_model: Optional[CostModel] = None,
        detector_profile: Optional[DetectorProfile] = None,
        seed: int = 0,
        detection_cache: CacheSpec = "unbounded",
        index=None,
    ):
        self.dataset = dataset
        self.seed = seed
        self.detector = detector or SimulatedDetector(
            dataset.world,
            profile=detector_profile,
            seed=seed,
            cache=make_detection_cache(detection_cache),
        )
        self.cost_model = cost_model or CostModel()
        self._proxies: Dict[tuple, ProxyModel] = {}
        # ``index`` attaches a persistent repository index (a directory
        # path or RepositoryIndex): completed sessions record what they
        # learned, new sessions warm-start from it, exact repeats replay.
        self.index = make_repository_index(index)
        self._chunk_sig: Optional[str] = None
        if self.index is not None:
            self.index.preload_cache(self.detector)

    # -- repository-index plumbing -------------------------------------------

    def chunk_sig(self) -> str:
        """Memoized :func:`~repro.index.store.chunk_signature` of the dataset."""
        if self._chunk_sig is None:
            self._chunk_sig = chunk_signature(self.dataset.chunk_map.sizes())
        return self._chunk_sig

    def query_digest(
        self,
        query: DistinctObjectQuery,
        method: str = "exsample",
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        searcher_kwargs: Optional[dict] = None,
    ) -> str:
        """The canonical digest under which this submission is indexed."""
        return canonical_query_digest(
            scope=self.detector.cache_scope(),
            chunk_sig=self.chunk_sig(),
            engine_seed=self.seed,
            cost_model=self.cost_model,
            method=method,
            run_seed=run_seed,
            query=query,
            config=config,
            searcher_kwargs=searcher_kwargs,
        )

    def _warm_config(
        self, class_name: str, run_seed: int, searcher_kwargs: dict
    ) -> Optional[ExSampleConfig]:
        """An index-warmed ExSample config, or None to start uniform.

        Builds per-chunk priors from the aggregated ``(n, N1)`` the index
        holds for this exact (detector scope, class, chunking): through
        :func:`~repro.core.belief.beliefs_from_counts` the recorded counts
        become ``alpha0 = clip(N1) + PAPER_ALPHA0`` and
        ``beta0 = n + PAPER_BETA0`` — the posterior earlier queries earned,
        used as this run's prior. Consumes ``batch_size`` from
        ``searcher_kwargs`` (folding it into the config, exactly as the
        registry's config folding would) so the built config does not
        collide with the batch-size-vs-config exclusivity check.
        """
        counts = self.index.counts_for(
            self.detector.cache_scope(), class_name, self.chunk_sig()
        )
        if counts is None:
            return None
        n, n1 = counts
        alpha0_vec, beta0_vec = beliefs_from_counts(
            np.maximum(n1, 0.0), n, PAPER_ALPHA0, PAPER_BETA0
        )
        batch_size = searcher_kwargs.pop("batch_size", None)
        return ExSampleConfig(
            seed=run_seed,
            batch_size=batch_size or 1,
            alpha0=alpha0_vec,
            beta0=beta0_vec,
        )

    def _attach_recorder(
        self, session: QuerySession, query_digest: str
    ) -> None:
        """Hook index recording onto a live session's completion."""
        index = self.index
        scope = self.detector.cache_scope()
        chunk_sig = self.chunk_sig()
        chunk_map = self.dataset.chunk_map
        num_chunks = int(chunk_map.sizes().size)
        class_name = session.query.class_name

        def _record(sess: QuerySession) -> None:
            trace = sess.trace()
            detections: dict = {}
            cache = self.detection_cache
            if (
                cache is not None
                and getattr(cache, "scoped", False)
                and hasattr(cache, "snapshot")
                and trace.chunks.size
            ):
                videos, vframes = chunk_map.to_video_frame_batch(
                    trace.chunks, trace.frames
                )
                wanted = set(zip(videos.tolist(), vframes.tolist(), strict=True))
                for key, dets in cache.snapshot(scope).items():
                    if (key[1], key[2]) in wanted:
                        detections[key[1:]] = dets
            blob = pickle.dumps(
                sess.outcome(), protocol=pickle.HIGHEST_PROTOCOL
            )
            index.record_session(
                scope=scope,
                class_name=class_name,
                chunk_sig=chunk_sig,
                num_chunks=num_chunks,
                trace=trace,
                query_digest=query_digest,
                outcome_blob=blob,
                reason=sess.reason,
                detections=detections,
            )

        session.on_complete = _record

    # -- cache introspection -------------------------------------------------

    @property
    def detection_cache(self):
        """The detector's :class:`DetectionCache`, or None when off."""
        return getattr(self.detector, "cache", None)

    def cache_info(self) -> Optional[CacheInfo]:
        """Hit/miss counters of the detection cache (None when off)."""
        cache = self.detection_cache
        return cache.info() if cache is not None else None

    # -- construction helpers ----------------------------------------------

    def environment(self, class_name: str, run_seed: int = 0) -> VideoSearchEnvironment:
        """A fresh environment (fresh discriminator state) for one query run."""
        discriminator = TrackDiscriminator(
            self.dataset.world, seed=self.seed * 1000003 + run_seed
        )
        return VideoSearchEnvironment(
            dataset=self.dataset,
            detector=self.detector,
            discriminator=discriminator,
            cost_model=self.cost_model,
            class_name=class_name,
        )

    def proxy_model(self, class_name: str, quality: Optional[float] = None) -> ProxyModel:
        """The (cached) proxy scorer for a class.

        Default quality reflects the §V-A observation that moving-camera
        data is harder for proxies: 0.80 for moving, 0.90 for static.
        """
        if quality is None:
            quality = 0.80 if self.dataset.camera == "moving" else 0.90
        key = (class_name, quality)
        if key not in self._proxies:
            self._proxies[key] = ProxyModel(
                self.dataset.world, class_name, quality=quality, seed=self.seed
            )
        return self._proxies[key]

    def make_searcher(
        self,
        method: str,
        env: VideoSearchEnvironment,
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        proxy_quality: Optional[float] = None,
        dedup_window_s: float = 1.0,
        stride: Optional[int] = None,
        sample_budget_hint: Optional[int] = None,
        batch_size: Optional[int] = None,
        **extras,
    ) -> Searcher:
        """Instantiate a search method over an environment.

        Dispatches through the searcher registry
        (:mod:`repro.core.registry`): any method registered with
        ``@register_searcher`` — built-in or third-party — is constructed
        by its own factory, which receives this call's arguments as a
        :class:`~repro.core.registry.SearcherContext`. Unrecognised keyword
        arguments are forwarded in ``ctx.extras`` to factories registered
        with ``accepts_extras=True`` and rejected otherwise, so a
        misspelled option fails fast instead of silently running a
        misconfigured search.

        ``batch_size`` sets the §III-F observation batch for any method
        (every searcher supports it). For the ExSample variants it is
        folded into the config, so it cannot be combined with an explicit
        ``config``.
        """
        if batch_size is not None and batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        spec = searcher_spec(method)
        if extras and not spec.accepts_extras:
            raise QueryError(
                f"unknown keyword arguments for method {method!r}: "
                f"{sorted(extras)} (its factory was not registered with "
                "accepts_extras=True)"
            )
        context = SearcherContext(
            engine=self,
            env=env,
            rngs=RngFactory(self.seed).child("run", method, run_seed),
            run_seed=run_seed,
            config=config,
            batch_size=batch_size,
            proxy_quality=proxy_quality,
            dedup_window_s=dedup_window_s,
            stride=stride,
            sample_budget_hint=sample_budget_hint,
            extras=extras,
        )
        return spec.factory(context)

    # -- the main entry points -----------------------------------------------

    def session(
        self,
        query: DistinctObjectQuery,
        method: str = "exsample",
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        **searcher_kwargs,
    ) -> QuerySession:
        """Open a resumable streaming session for one query.

        The returned :class:`~repro.query.session.QuerySession` yields
        typed events from ``stream()``, can ``pause()`` between events, and
        ``checkpoint()``/``restore()`` its complete state; see the session
        module for the event vocabulary. :meth:`run` is a thin blocking
        wrapper over this method.

        With a repository index attached, three things happen here. An
        exact repeat of a recorded submission (same detector identity,
        chunking, engine seed, cost model, method, run seed, query, config
        and options) returns a :class:`ReplaySession` — the recorded
        outcome, zero detector calls. Otherwise a plain ExSample run
        (``method="exsample"``, no explicit config) warm-starts from the
        index's per-chunk counts for this class. Either way, a live
        session records its knowledge back into the index on completion.
        The digest covers the user's inputs only — never the warm priors —
        so a repeat replays no matter how the index evolved in between.
        """
        if query.class_name not in self.dataset.classes:
            raise QueryError(
                f"class {query.class_name!r} not in dataset "
                f"{self.dataset.name!r}; available: {self.dataset.classes}"
            )
        gt_count = self.dataset.gt_count(query.class_name)
        query_digest: Optional[str] = None
        if self.index is not None:
            query_digest = self.query_digest(
                query, method, run_seed, config, searcher_kwargs
            )
            record = self.index.outcome_for(query_digest)
            if record is not None:
                return ReplaySession(
                    record, query=query, method=method, gt_count=gt_count
                )
        run_config = config
        if (
            self.index is not None
            and config is None
            and method == "exsample"
        ):
            searcher_kwargs = dict(searcher_kwargs)
            run_config = self._warm_config(
                query.class_name, run_seed, searcher_kwargs
            )
        env = self.environment(query.class_name, run_seed)
        searcher = self.make_searcher(
            method, env, run_seed=run_seed, config=run_config, **searcher_kwargs
        )
        # User-facing limits count discriminator results (the paper's limit
        # clause); recall targets are an evaluation construct and count
        # unique ground-truth instances so measured recall actually reaches
        # the target despite false-positive or duplicate tracks.
        limit = query.resolve_limit(gt_count)
        limit_kind = (
            "distinct_real_limit" if query.recall_target is not None else "result_limit"
        )
        run = searcher.begin(
            frame_budget=query.frame_budget,
            cost_budget=query.cost_budget,
            **{limit_kind: limit},
        )
        session = QuerySession(run, query=query, method=method, gt_count=gt_count)
        if self.index is not None and query_digest is not None:
            self._attach_recorder(session, query_digest)
        return session

    def run(
        self,
        query: DistinctObjectQuery,
        method: str = "exsample",
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        **searcher_kwargs,
    ) -> QueryOutcome:
        """Execute one query with one method and return the outcome."""
        session = self.session(
            query, method=method, run_seed=run_seed, config=config, **searcher_kwargs
        )
        return session.run_to_completion()

    def serve(self, config=None, **overrides):
        """A :class:`~repro.serving.QueryServer` over this engine.

        The asyncio entry point for concurrent multi-tenant serving: many
        sessions on one event loop, detector requests fused across them
        by a :class:`~repro.serving.DetectorBatcher`, this engine's
        detection cache shared by every tenant. ``config`` is a
        :class:`~repro.serving.ServerConfig`; keyword overrides build one
        (``engine.serve(max_in_flight=16, policy="deadline")``). Must be
        driven from within a running event loop; the blocking wrapper is
        :meth:`run_many`.
        """
        from repro.serving import QueryServer, ServerConfig

        if config is not None and overrides:
            raise QueryError("pass config= or keyword overrides, not both")
        if config is None:
            config = ServerConfig(**overrides)
        return QueryServer(self, config)

    def run_many(
        self,
        queries: Sequence[DistinctObjectQuery],
        method: Union[str, Sequence[str]] = "exsample",
        run_seeds: Optional[Sequence[int]] = None,
        config: Optional[ExSampleConfig] = None,
        server_config=None,
        **searcher_kwargs,
    ) -> List[QueryOutcome]:
        """Run several queries concurrently over one shared detector.

        A thin blocking wrapper over the :class:`~repro.serving
        .QueryServer` event loop — the one stepping loop in the codebase:
        sessions interleave on the server, their detector requests fused
        into cross-session batches over this engine's shared detection
        cache. Each query gets a fresh environment and an independent
        ``run_seed`` (``run_seeds`` defaults to ``0, 1, 2, ...``), which
        makes the outcomes *identical* to running each query alone with
        the matching seed: serving changes wall-clock scheduling, never
        results.

        ``method`` may be one name for all queries or a sequence aligned
        with ``queries``; ``server_config`` (a
        :class:`~repro.serving.ServerConfig`) tunes batching and
        admission for this call.
        """
        from repro.serving import serve_sessions

        queries = list(queries)
        if isinstance(method, str):
            methods = [method] * len(queries)
        else:
            methods = list(method)
            if len(methods) != len(queries):
                raise QueryError(
                    f"got {len(methods)} methods for {len(queries)} queries"
                )
        if run_seeds is None:
            run_seeds = range(len(queries))
        else:
            run_seeds = list(run_seeds)
            if len(run_seeds) != len(queries):
                raise QueryError(
                    f"got {len(run_seeds)} run_seeds for {len(queries)} queries"
                )
        sessions = [
            self.session(
                query,
                method=name,
                run_seed=seed,
                config=config,
                **searcher_kwargs,
            )
            for query, name, seed in zip(queries, methods, run_seeds, strict=True)
        ]
        return serve_sessions(sessions, engine=self, config=server_config)
