"""The query engine: repository + detector + discriminator + a searcher.

:class:`QueryEngine` is the user-facing entry point of the library. It wires
a dataset's chunk map, a (simulated) object detector, a fresh
:class:`~repro.tracking.TrackDiscriminator` and a cost model into a
:class:`~repro.core.environment.SearchEnvironment`, then runs any of the
registered search methods over it:

>>> from repro.video import make_dataset
>>> from repro.query import QueryEngine, DistinctObjectQuery
>>> dataset = make_dataset("dashcam", scale=0.02, seed=7)
>>> engine = QueryEngine(dataset, seed=7)
>>> outcome = engine.run(
...     DistinctObjectQuery("traffic light", limit=5), method="exsample"
... )
>>> outcome.num_results >= 5
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import (
    OracleStaticSearcher,
    ProxySearcher,
    RandomPlusSearcher,
    RandomSearcher,
    SequentialSearcher,
)
from repro.core.config import ExSampleConfig
from repro.core.environment import Observation
from repro.core.sampler import ExSampleSearcher, Searcher, SearchTrace
from repro.detection.detections import Detection
from repro.detection.proxy import ProxyModel
from repro.detection.simulated import DetectorProfile, SimulatedDetector
from repro.errors import QueryError
from repro.query.cost import CostModel
from repro.query.metrics import recall_curve, samples_to_recall, time_to_recall
from repro.query.query import DistinctObjectQuery
from repro.theory.optimal_weights import optimal_weights
from repro.tracking.discriminator import TrackDiscriminator
from repro.utils.rng import RngFactory
from repro.video.datasets import Dataset

#: Methods accepted by :meth:`QueryEngine.run`.
SEARCH_METHODS = (
    "exsample",
    "random",
    "randomplus",
    "sequential",
    "proxy",
    "oracle",
    "exsample_fusion",
)


@dataclass(frozen=True)
class FoundObject:
    """One distinct result returned to the user."""

    video: int
    frame: int
    class_name: str
    score: float
    box_xyxy: tuple
    instance_uid: Optional[int]
    track_id: int


@dataclass
class QueryOutcome:
    """Everything a query run produced."""

    query: DistinctObjectQuery
    method: str
    trace: SearchTrace
    gt_count: int

    @property
    def num_results(self) -> int:
        return self.trace.num_results

    @property
    def found(self) -> List[FoundObject]:
        return [r for r in self.trace.results if isinstance(r, FoundObject)]

    def recall(self) -> float:
        curve = recall_curve(self.trace, self.gt_count)
        return float(curve[-1]) if curve.size else 0.0

    def samples_to_recall(self, recall: float) -> Optional[int]:
        return samples_to_recall(self.trace, self.gt_count, recall)

    def time_to_recall(self, recall: float) -> Optional[float]:
        return time_to_recall(self.trace, self.gt_count, recall)


class VideoSearchEnvironment:
    """SearchEnvironment over a dataset for one target class."""

    def __init__(
        self,
        dataset: Dataset,
        detector: SimulatedDetector,
        discriminator: TrackDiscriminator,
        cost_model: CostModel,
        class_name: str,
    ):
        if class_name not in dataset.classes:
            raise QueryError(
                f"class {class_name!r} not in dataset {dataset.name!r}; "
                f"available: {dataset.classes}"
            )
        self.dataset = dataset
        self.detector = detector
        self.discriminator = discriminator
        self.cost_model = cost_model
        self.class_name = class_name

    def chunk_sizes(self) -> np.ndarray:
        return self.dataset.chunk_map.sizes()

    def observe(self, chunk: int, frame: int) -> Observation:
        video, vframe = self.dataset.chunk_map.to_video_frame(chunk, frame)
        detections = self.detector.detect(video, vframe, class_filter=self.class_name)
        match = self.discriminator.observe_full(video, vframe, detections)
        return self._observation_from(
            chunk, video, vframe, match, self.cost_model.sample_cost(video, vframe)
        )

    def observe_batch(self, picks) -> List[Observation]:
        """Vectorised batch observation (§III-F).

        Address translation and cost lookup resolve in a handful of numpy
        operations for the whole batch; the detector and discriminator
        each get one call covering every pick. Results are identical to
        per-pick :meth:`observe` calls in the same order — the detector is
        deterministic per frame and the discriminator folds the batch's
        frames into its track store sequentially.
        """
        if not picks:
            return []
        chunks_arr = np.fromiter(
            (chunk for chunk, _ in picks), dtype=np.int64, count=len(picks)
        )
        withins_arr = np.fromiter(
            (frame for _, frame in picks), dtype=np.int64, count=len(picks)
        )
        videos_arr, vframes_arr = self.dataset.chunk_map.to_video_frame_batch(
            chunks_arr, withins_arr
        )
        # tolist() bulk-converts to Python ints/floats in one call — the
        # scalar coercion that would otherwise dominate the batch path.
        videos = videos_arr.tolist()
        vframes = vframes_arr.tolist()
        costs = self.cost_model.sample_costs(videos_arr, vframes_arr).tolist()
        detection_lists = self.detector.detect_batch(
            videos, vframes, class_filter=self.class_name
        )
        matches = self.discriminator.observe_full_batch(
            videos, vframes, detection_lists
        )
        make_observation = self._observation_from
        return [
            make_observation(chunk, video, vframe, match, cost)
            for (chunk, _), video, vframe, match, cost in zip(
                picks, videos, vframes, matches, costs
            )
        ]

    def _observation_from(
        self, chunk: int, video: int, vframe: int, match, cost: float
    ) -> Observation:
        """Turn one frame's match result into the sampler-facing record."""
        d0, d1, new_tracks, d1_tracks = (
            match.d0,
            match.d1,
            match.new_tracks,
            match.d1_tracks,
        )
        for track in new_tracks:
            track.origin_chunk = chunk
        results = [
            FoundObject(
                video=video,
                frame=vframe,
                class_name=det.class_name,
                score=det.score,
                box_xyxy=tuple(det.box.as_array()),
                instance_uid=det.instance_uid,
                track_id=track.track_id,
            )
            for det, track in zip(d0, new_tracks)
        ]
        origins = [
            track.origin_chunk if track.origin_chunk is not None else chunk
            for track in d1_tracks
        ]
        return Observation(
            d0=len(d0),
            d1=len(d1),
            results=results,
            cost=cost,
            d1_origin_chunks=origins,
        )


class QueryEngine:
    """Runs distinct-object queries over a dataset with any search method."""

    def __init__(
        self,
        dataset: Dataset,
        detector: Optional[SimulatedDetector] = None,
        cost_model: Optional[CostModel] = None,
        detector_profile: Optional[DetectorProfile] = None,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.seed = seed
        self.detector = detector or SimulatedDetector(
            dataset.world, profile=detector_profile, seed=seed
        )
        self.cost_model = cost_model or CostModel()
        self._proxies: Dict[tuple, ProxyModel] = {}

    # -- construction helpers ----------------------------------------------

    def environment(self, class_name: str, run_seed: int = 0) -> VideoSearchEnvironment:
        """A fresh environment (fresh discriminator state) for one query run."""
        discriminator = TrackDiscriminator(
            self.dataset.world, seed=self.seed * 1000003 + run_seed
        )
        return VideoSearchEnvironment(
            dataset=self.dataset,
            detector=self.detector,
            discriminator=discriminator,
            cost_model=self.cost_model,
            class_name=class_name,
        )

    def proxy_model(self, class_name: str, quality: Optional[float] = None) -> ProxyModel:
        """The (cached) proxy scorer for a class.

        Default quality reflects the §V-A observation that moving-camera
        data is harder for proxies: 0.80 for moving, 0.90 for static.
        """
        if quality is None:
            quality = 0.80 if self.dataset.camera == "moving" else 0.90
        key = (class_name, quality)
        if key not in self._proxies:
            self._proxies[key] = ProxyModel(
                self.dataset.world, class_name, quality=quality, seed=self.seed
            )
        return self._proxies[key]

    def make_searcher(
        self,
        method: str,
        env: VideoSearchEnvironment,
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        proxy_quality: Optional[float] = None,
        dedup_window_s: float = 1.0,
        stride: Optional[int] = None,
        sample_budget_hint: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> Searcher:
        """Instantiate a search method over an environment.

        ``batch_size`` sets the §III-F observation batch for any method
        (every searcher supports it). For the ExSample variants it is
        folded into the config, so it cannot be combined with an explicit
        ``config``.
        """
        rngs = RngFactory(self.seed).child("run", method, run_seed)
        if batch_size is not None and batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        if method in ("exsample", "exsample_fusion"):
            if config is not None and batch_size is not None:
                raise QueryError(
                    "pass batch_size inside the ExSampleConfig, not alongside it"
                )
            if config is None:
                config = ExSampleConfig(
                    seed=run_seed, batch_size=batch_size or 1
                )
        batch_size = batch_size or 1
        if method == "exsample":
            return ExSampleSearcher(env, config, rng=rngs)
        if method == "random":
            return RandomSearcher(env, rng=rngs, batch_size=batch_size)
        if method == "randomplus":
            return RandomPlusSearcher(env, rng=rngs, batch_size=batch_size)
        if method == "sequential":
            # A one-second stride by default; the validated repository-level
            # fps handles heterogeneous videos, and the max() guards
            # sub-1fps footage (e.g. timelapse) from a zero stride.
            fps = self.dataset.repository.common_fps()
            return SequentialSearcher(
                env,
                rng=rngs,
                # `is not None`, not `or`: an explicit stride=0 must reach
                # SequentialSearcher's validation, not the fps default.
                stride=stride if stride is not None else max(int(fps), 1),
                batch_size=batch_size,
            )
        if method == "proxy":
            proxy = self.proxy_model(env.class_name, proxy_quality)
            scores = proxy.score_all()
            scan_cost = self.cost_model.scan_cost(self.dataset.total_frames)
            fps = self.dataset.repository.common_fps()
            return ProxySearcher(
                env,
                scores=scores,
                scan_cost=scan_cost,
                rng=rngs,
                dedup_window=int(dedup_window_s * fps),
                batch_size=batch_size,
            )
        if method == "oracle":
            bounds = self.dataset.chunk_map.global_bounds()
            p_matrix = self.dataset.world.chunk_probabilities(env.class_name, bounds)
            budget = sample_budget_hint or max(
                self.dataset.total_frames // 200, 1000
            )
            weights = optimal_weights(p_matrix, float(budget))
            return OracleStaticSearcher(
                env, weights=weights, rng=rngs, batch_size=batch_size
            )
        if method == "exsample_fusion":
            from repro.extensions.fusion import FusionSearcher

            proxy = self.proxy_model(env.class_name, proxy_quality)
            scores = proxy.score_all()
            bounds = self.dataset.chunk_map.global_bounds()

            def chunk_scores(chunk: int) -> np.ndarray:
                return scores[bounds[chunk] : bounds[chunk + 1]]

            def chunk_scan_cost(chunk: int) -> float:
                return self.cost_model.scan_cost(
                    int(bounds[chunk + 1] - bounds[chunk])
                )

            return FusionSearcher(
                env,
                chunk_scores=chunk_scores,
                chunk_scan_cost=chunk_scan_cost,
                config=config,
                rng=rngs,
            )
        raise QueryError(
            f"unknown method {method!r}; choose from {SEARCH_METHODS}"
        )

    # -- the main entry point ------------------------------------------------

    def run(
        self,
        query: DistinctObjectQuery,
        method: str = "exsample",
        run_seed: int = 0,
        config: Optional[ExSampleConfig] = None,
        **searcher_kwargs,
    ) -> QueryOutcome:
        """Execute one query with one method and return the outcome."""
        if query.class_name not in self.dataset.classes:
            raise QueryError(
                f"class {query.class_name!r} not in dataset "
                f"{self.dataset.name!r}; available: {self.dataset.classes}"
            )
        gt_count = self.dataset.gt_count(query.class_name)
        env = self.environment(query.class_name, run_seed)
        searcher = self.make_searcher(
            method, env, run_seed=run_seed, config=config, **searcher_kwargs
        )
        # User-facing limits count discriminator results (the paper's limit
        # clause); recall targets are an evaluation construct and count
        # unique ground-truth instances so measured recall actually reaches
        # the target despite false-positive or duplicate tracks.
        limit = query.resolve_limit(gt_count)
        if query.recall_target is not None:
            trace = searcher.run(
                distinct_real_limit=limit,
                frame_budget=query.frame_budget,
                cost_budget=query.cost_budget,
            )
        else:
            trace = searcher.run(
                result_limit=limit,
                frame_budget=query.frame_budget,
                cost_budget=query.cost_budget,
            )
        return QueryOutcome(query=query, method=method, trace=trace, gt_count=gt_count)
