"""Resumable streaming query sessions: the anytime face of the library.

ExSample is an *anytime* algorithm — it surfaces distinct objects
incrementally and can stop at any budget — and :class:`QuerySession` is the
API that exposes that property. Where :meth:`repro.query.engine.QueryEngine
.run` blocks until a finished :class:`~repro.core.sampler.SearchTrace`,
a session streams typed events as the search progresses::

    session = engine.session(DistinctObjectQuery("person", limit=20))
    for event in session.stream():
        if isinstance(event, ResultFound):
            print("found", event.result, "after", event.sample_index, "frames")
        if isinstance(event, SampleBatch) and event.total_cost > 30.0:
            session.pause()            # stream() returns after this event
    blob = session.checkpoint("search.ckpt")

A paused (or simply abandoned) session can be serialised with
:meth:`QuerySession.checkpoint` and revived — in the same process or a
fresh one — with :meth:`QuerySession.restore`. The checkpoint captures the
*entire* search state: per-chunk statistics, within-chunk frame orders, RNG
streams, discriminator track stores, and the partial trace. Finishing a
restored session therefore produces a final trace byte-identical to the
trace of a never-interrupted run; the test suite asserts this for every
registered method.

Checkpoints use :mod:`pickle` under the hood: restore only checkpoints you
(or something you trust) created.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional, Tuple, Union

from repro.core.sampler import SearchRun, SearchStep, SearchTrace
from repro.errors import QueryError

#: Version tag embedded in checkpoints; bumped on incompatible layout changes.
#: v1 pickled the session state as one flat dict; v2 wraps the pickled
#: state in an envelope carrying a payload digest and summary metadata, so
#: checkpoints shipped over a wire (base64 frames between fleet shards) can
#: be integrity-checked and routed without deserialising the search state.
#: :meth:`QuerySession.restore` accepts both.
CHECKPOINT_VERSION = 2


@dataclass(frozen=True)
class SampleBatch:
    """One batch of frames was processed (one §III-F sampling step).

    ``picks`` holds the consumed ``(chunk, frame)`` pairs; the counters are
    cumulative over the whole session.
    """

    picks: Tuple[Tuple[int, int], ...]
    num_samples: int
    num_results: int
    total_cost: float


@dataclass(frozen=True)
class ResultFound:
    """A new distinct result was discovered.

    ``result`` is the searcher's payload (a
    :class:`repro.query.engine.FoundObject` in the video pipeline);
    ``sample_index`` is the 1-based count of frames processed when it was
    found, and ``num_results`` the cumulative result count including it.
    """

    result: object
    sample_index: int
    num_results: int


@dataclass(frozen=True)
class BudgetExhausted:
    """The session finished; no further events will follow.

    ``reason`` names what ended the search: ``"result_limit"``,
    ``"distinct_real_limit"``, ``"frame_budget"``, ``"cost_budget"``, or
    ``"exhausted"`` (every frame sampled).
    """

    reason: str
    num_samples: int
    num_results: int
    total_cost: float


#: Everything :meth:`QuerySession.stream` can yield.
SessionEvent = Union[SampleBatch, ResultFound, BudgetExhausted]


@dataclass(frozen=True)
class CheckpointInfo:
    """Envelope metadata of a checkpoint, readable without restoring it.

    Returned by :func:`peek_checkpoint`. ``method``/``num_samples``/
    ``num_results``/``total_cost`` describe the session at checkpoint
    time; ``payload_bytes`` is the size of the pickled search state. A
    fleet router uses this to log and account a migration without paying
    the deserialisation of chunk statistics and track stores.
    """

    version: int
    method: str
    num_samples: int
    num_results: int
    total_cost: float
    payload_bytes: int


def peek_checkpoint(source: "Union[bytes, bytearray, str]") -> CheckpointInfo:
    """Read a checkpoint's envelope metadata without restoring the session.

    Only the outer envelope is decoded; the search-state payload stays an
    opaque byte string (its digest is still verified, so a truncated or
    corrupted wire transfer is caught here, before any restore attempt).
    v1 checkpoints carry no envelope — peeking one raises
    :class:`~repro.errors.QueryError`; restore them directly instead.
    """
    envelope = _load_envelope(source)
    if envelope["version"] < 2:
        raise QueryError(
            "v1 checkpoints carry no peekable envelope; "
            "use QuerySession.restore()"
        )
    meta = envelope["meta"]
    return CheckpointInfo(
        version=envelope["version"],
        method=meta["method"],
        num_samples=meta["num_samples"],
        num_results=meta["num_results"],
        total_cost=meta["total_cost"],
        payload_bytes=len(envelope["payload"]),
    )


def _payload_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _load_envelope(source: "Union[bytes, bytearray, str]") -> dict:
    """Decode checkpoint bytes (or a file path) into the envelope dict.

    For v2 envelopes the payload digest is verified; v1 flat dicts are
    returned as-is (their ``run`` is already materialised).
    """
    if isinstance(source, (bytes, bytearray)):
        blob = bytes(source)
    else:
        with open(source, "rb") as handle:
            blob = handle.read()
    try:
        state = pickle.loads(blob)
    except Exception as exc:
        raise QueryError(f"could not decode session checkpoint: {exc}") from exc
    if not isinstance(state, dict) or "version" not in state:
        raise QueryError("not a QuerySession checkpoint")
    version = state["version"]
    if version not in (1, CHECKPOINT_VERSION):
        raise QueryError(
            f"checkpoint version {version} is not supported "
            f"(this library reads versions 1 and {CHECKPOINT_VERSION})"
        )
    if version >= 2:
        digest = _payload_digest(state["payload"])
        if digest != state["digest"]:
            raise QueryError(
                "checkpoint payload digest mismatch: the blob was "
                "corrupted in transit or storage"
            )
    return state


class QuerySession:
    """A resumable, streaming run of one query with one search method.

    Sessions are created by :meth:`repro.query.engine.QueryEngine.session`
    (or :meth:`restore`) and consumed either through the :meth:`stream`
    iterator or the lower-level :meth:`step`. They are single-threaded and
    not re-entrant: drive one consumer at a time.
    """

    #: True on sessions short-circuited from a recorded index outcome
    #: (:class:`repro.query.engine.ReplaySession`); False on live runs.
    replayed = False

    def __init__(
        self,
        run: SearchRun,
        query: Optional[object] = None,
        method: str = "",
        gt_count: int = 0,
    ):
        self._run = run
        self.query = query
        self.method = method
        self.gt_count = gt_count
        self._pending: Deque[SessionEvent] = deque()
        self._paused = False
        self._end_emitted = False
        #: Optional callback fired exactly once when the run finishes.
        #: The engine's repository-index recorder attaches here; the hook
        #: is process-local and deliberately excluded from checkpoints (a
        #: restored session re-attaches whatever its new engine provides).
        self.on_complete: Optional[Callable[["QuerySession"], None]] = None
        self._completion_notified = False

    # -- progress introspection --------------------------------------------

    @property
    def search_run(self) -> SearchRun:
        """The underlying resumable stepper.

        Exposed for drivers that schedule the propose/fulfil phases
        themselves — the :class:`repro.serving.QueryServer` event loop
        fulfils detection through a cross-session batcher. Ordinary
        consumers should stick to :meth:`stream`/:meth:`step`.
        """
        return self._run

    @property
    def finished(self) -> bool:
        """True once the search can make no further progress."""
        return self._run.finished

    @property
    def reason(self) -> Optional[str]:
        """Why the search stopped (None while it is still running)."""
        return self._run.reason

    @property
    def num_samples(self) -> int:
        return self._run.num_samples

    @property
    def num_results(self) -> int:
        return self._run.num_results

    @property
    def total_cost(self) -> float:
        return self._run.total_cost

    # -- the streaming interface -------------------------------------------

    def pause(self) -> None:
        """Make the active :meth:`stream` iterator return after this event.

        Purely cooperative: the search state is left at a batch boundary,
        ready for :meth:`checkpoint`, a later :meth:`stream` call, or both.
        """
        self._paused = True

    def stream(self) -> Iterator[SessionEvent]:
        """Yield events until the session finishes or :meth:`pause` is called.

        Calling :meth:`stream` again on a paused (or restored) session
        resumes exactly where it left off — including events that were
        already produced by a step but not yet consumed.
        """
        self._paused = False
        while True:
            if self._pending:
                yield self._pending.popleft()
                if self._paused:
                    return
                continue
            if self._end_emitted:
                return
            self._advance()

    def step(self) -> List[SessionEvent]:
        """Advance by one batch and return the events it produced.

        Pending events from an earlier, partially consumed :meth:`stream`
        are included first. Returns ``[]`` once the session has finished
        and the :class:`BudgetExhausted` event has been delivered.
        """
        if not self._end_emitted:
            self._advance()
        events = list(self._pending)
        self._pending.clear()
        return events

    def _advance(self) -> None:
        """Run one stepper batch and queue the resulting events."""
        if not self._run.finished:
            step = self._run.step()
            self._pending.extend(self._events_from(step))
        if self._run.finished and not self._end_emitted:
            self._pending.append(
                BudgetExhausted(
                    reason=self._run.reason or "exhausted",
                    num_samples=self._run.num_samples,
                    num_results=self._run.num_results,
                    total_cost=self._run.total_cost,
                )
            )
            self._end_emitted = True
            self.notify_complete()

    def _events_from(self, step: SearchStep) -> List[SessionEvent]:
        events: List[SessionEvent] = []
        count_before = self._run.num_results - len(step.new_results)
        for offset, (sample_index, payload) in enumerate(step.new_results, start=1):
            events.append(
                ResultFound(
                    result=payload,
                    sample_index=sample_index,
                    num_results=count_before + offset,
                )
            )
        if step.picks:
            events.append(
                SampleBatch(
                    picks=tuple(step.picks),
                    num_samples=self._run.num_samples,
                    num_results=self._run.num_results,
                    total_cost=self._run.total_cost,
                )
            )
        return events

    # -- completion ----------------------------------------------------------

    def advance(self) -> None:
        """Advance one batch *without* materialising events.

        For blocking drivers (:meth:`run_to_completion`) that only read
        the final outcome: the stepper does the same work, but no event
        objects are built. Mixing this with :meth:`stream` forfeits the
        events of batches advanced this way.
        """
        if not self._run.finished:
            self._run.step()
        if self._run.finished:
            self._end_emitted = True
            self.notify_complete()

    def run_to_completion(self):
        """Drive the remaining search without materialising events.

        This is what :meth:`QueryEngine.run` uses: same stepper, no event
        objects, so the blocking path stays as fast as the historical
        monolithic loop. Returns the finished
        :class:`~repro.query.engine.QueryOutcome`.
        """
        while not self._run.finished:
            self.advance()
        self._end_emitted = True
        self._pending.clear()
        self.notify_complete()
        return self.outcome()

    def notify_complete(self) -> None:
        """Fire :attr:`on_complete` once, if the run has actually finished.

        Idempotent and failure-isolated: the hook fires at most once per
        session, only on a finished run, and a raising hook is logged and
        swallowed — knowledge recording must never turn a successful query
        into an error. Drivers that step the underlying
        :class:`~repro.core.sampler.SearchRun` directly (the serving event
        loop) call this themselves when they observe completion.
        """
        if self._completion_notified or not self._run.finished:
            return
        self._completion_notified = True
        hook = self.on_complete
        if hook is None:
            return
        try:
            hook(self)
        except Exception:  # noqa: BLE001 - recording is best-effort
            logging.getLogger("repro.query.session").warning(
                "session on_complete hook failed; the query outcome is "
                "unaffected", exc_info=True,
            )

    def trace(self) -> SearchTrace:
        """The (partial, if unfinished) trace accumulated so far."""
        return self._run.trace()

    def outcome(self):
        """Wrap the current trace in a :class:`QueryOutcome`."""
        from repro.query.engine import QueryOutcome

        if self.query is None:
            raise QueryError(
                "this session has no query attached; use trace() instead"
            )
        return QueryOutcome(
            query=self.query,
            method=self.method,
            trace=self.trace(),
            gt_count=self.gt_count,
        )

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self, path: Optional[str] = None) -> bytes:
        """Serialise the complete session state; optionally write it to disk.

        The blob embeds everything needed to resume in a fresh process:
        the query, the searcher (chunk statistics, frame orders, RNG
        streams), the environment (dataset, detector, discriminator track
        store, cost model) and the partial trace. Events produced but not
        yet consumed from :meth:`stream` are preserved too.
        """
        payload = pickle.dumps(
            {
                "query": self.query,
                "method": self.method,
                "gt_count": self.gt_count,
                "run": self._run,
                "pending": list(self._pending),
                "end_emitted": self._end_emitted,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        envelope = {
            "version": CHECKPOINT_VERSION,
            "meta": {
                "method": self.method,
                "num_samples": self.num_samples,
                "num_results": self.num_results,
                "total_cost": self.total_cost,
            },
            "digest": _payload_digest(payload),
            "payload": payload,
        }
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        if path is not None:
            with open(path, "wb") as handle:
                handle.write(blob)
        return blob

    @staticmethod
    def restore(source: "Union[bytes, bytearray, str]") -> "QuerySession":
        """Revive a session from :meth:`checkpoint` bytes or a file path.

        Reads both v2 envelopes (digest-verified) and pre-envelope v1
        blobs, so checkpoints written by earlier releases stay loadable.
        """
        envelope = _load_envelope(source)
        if envelope["version"] >= 2:
            try:
                state = pickle.loads(envelope["payload"])
            except Exception as exc:
                raise QueryError(
                    f"could not decode session checkpoint payload: {exc}"
                ) from exc
        else:
            state = envelope
        session = QuerySession(
            state["run"],
            query=state["query"],
            method=state["method"],
            gt_count=state["gt_count"],
        )
        session._pending.extend(state["pending"])
        session._end_emitted = state["end_emitted"]
        return session
