"""Cost accounting matching the paper's measurements (§V-B).

The paper's two throughput constants anchor every time comparison:

* "ExSample processes frames at a rate of 20 frames per second, bound by
  the object detector throughput" — sampling costs 1/20 s per frame,
  end-to-end (random-access decode included);
* "the scoring throughput we can sustain on our equipment (100 frames per
  second, bound by io+decode)" — a proxy scan costs 1/100 s per frame.

For studies of the decode component itself, `detailed=True` splits the
sampling cost into a fixed detector term plus the decoder's keyframe-aware
random-access cost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.video.decoder import SimulatedDecoder

#: §V-B: end-to-end sampling throughput in frames/second.
PAPER_DETECTOR_FPS = 20.0
#: §V-B: proxy scoring scan throughput in frames/second.
PAPER_SCAN_FPS = 100.0


class CostModel:
    """Translates work (frames detected, frames scanned) into seconds."""

    def __init__(
        self,
        detector_fps: float = PAPER_DETECTOR_FPS,
        scan_fps: float = PAPER_SCAN_FPS,
        detailed: bool = False,
        decoder: SimulatedDecoder | None = None,
    ):
        if detector_fps <= 0 or scan_fps <= 0:
            raise ConfigError("throughputs must be positive")
        self.detector_fps = detector_fps
        self.scan_fps = scan_fps
        self.detailed = detailed
        self.decoder = decoder or SimulatedDecoder()

    def sample_cost(self, video: int, frame: int) -> float:
        """Seconds to randomly access + decode + detect one frame."""
        if not self.detailed:
            return 1.0 / self.detector_fps
        decode = self.decoder.random_access_cost(frame)
        # The detector-fps figure is end-to-end; in detailed mode we treat
        # the published rate as detector-only and add decode explicitly.
        return decode + 1.0 / self.detector_fps

    def sample_costs(self, videos, frames) -> np.ndarray:
        """Vectorised :meth:`sample_cost` over aligned index arrays.

        In the default (non-detailed) mode every frame costs the same, so
        the whole batch resolves to one ``np.full``; detailed mode falls
        back to the per-frame decoder model.
        """
        frames = np.asarray(frames, dtype=np.int64)
        if not self.detailed:
            return np.full(frames.shape, 1.0 / self.detector_fps, dtype=float)
        videos = np.asarray(videos, dtype=np.int64)
        return np.array(
            [
                self.sample_cost(int(video), int(frame))
                for video, frame in zip(videos, frames, strict=True)
            ],
            dtype=float,
        )

    def scan_cost(self, num_frames: int) -> float:
        """Seconds for a sequential proxy-scoring scan over ``num_frames``."""
        if num_frames < 0:
            raise ConfigError("num_frames must be non-negative")
        return num_frames / self.scan_fps

    def sampling_rate(self) -> float:
        """Frames/second the sampler achieves under this model."""
        return self.detector_fps

    def batched_sample_cost(
        self, batch_size: int, marginal_fraction: float = 0.4
    ) -> float:
        """Per-frame seconds when the detector runs on batches (§III-F).

        "On modern GPUs inference throughput is faster when performed on
        batches of images." Modelled as a fixed per-invocation overhead
        plus a marginal per-frame cost: at batch 1 the cost equals
        ``1/detector_fps``; as the batch grows it approaches
        ``marginal_fraction / detector_fps`` (a 1/marginal_fraction ceiling
        on the speedup — 2.5x at the 0.4 default, typical of detection
        models whose preprocessing and memory traffic amortise but whose
        FLOPs do not).
        """
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if not 0 < marginal_fraction <= 1:
            raise ConfigError("marginal_fraction must lie in (0, 1]")
        single = 1.0 / self.detector_fps
        marginal = single * marginal_fraction
        overhead = single - marginal
        return (overhead + batch_size * marginal) / batch_size
