"""Distinct object queries: what the user asks the system (§II-B).

A distinct object limit query is "find ``limit`` distinct objects of class
``class_name``"; each result must be a *different* physical object as judged
by the discriminator. Recall-target queries ("find 90% of the traffic
lights") are the evaluation's framing of the same thing: the limit is a
fraction of the (approximate) ground-truth instance count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import QueryError


@dataclass(frozen=True)
class DistinctObjectQuery:
    """A distinct-object limit query over a video repository.

    Exactly one of ``limit`` / ``recall_target`` should drive stopping;
    ``frame_budget`` may cap detector invocations and ``cost_budget`` may
    cap seconds of modelled processing time (the paper's cost-to-recall
    regime) in either mode — and either budget may also stand alone for
    budgeted exploration.
    """

    class_name: str
    limit: Optional[int] = None
    recall_target: Optional[float] = None
    frame_budget: Optional[int] = None
    cost_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.class_name:
            raise QueryError("query needs a class name")
        if self.limit is not None and self.limit <= 0:
            raise QueryError("limit must be positive")
        if self.recall_target is not None and not 0 < self.recall_target <= 1:
            raise QueryError("recall_target must lie in (0, 1]")
        if self.limit is not None and self.recall_target is not None:
            raise QueryError("specify limit or recall_target, not both")
        if self.frame_budget is not None and self.frame_budget <= 0:
            raise QueryError("frame_budget must be positive")
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise QueryError("cost_budget must be positive")

    def resolve_limit(self, gt_count: int) -> Optional[int]:
        """Concrete result limit given the ground-truth instance count.

        Uses the same ceiling rule as :func:`repro.query.metrics
        .samples_to_recall`, so a recall-target run stops exactly when the
        measured recall reaches the target.
        """
        if self.limit is not None:
            return self.limit
        if self.recall_target is not None:
            if gt_count <= 0:
                raise QueryError("recall target needs a positive GT count")
            import math

            return max(int(math.ceil(self.recall_target * gt_count - 1e-9)), 1)
        return None
