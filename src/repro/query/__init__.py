"""User-facing query layer: queries, cost model, metrics, engine, sessions."""

from repro.core.registry import (
    SEARCH_METHODS,
    SearcherContext,
    SearcherSpec,
    register_searcher,
    searcher_spec,
    searcher_specs,
    unregister_searcher,
)
from repro.query.cost import PAPER_DETECTOR_FPS, PAPER_SCAN_FPS, CostModel
from repro.query.engine import (
    FoundObject,
    QueryEngine,
    QueryOutcome,
    ReplaySession,
    VideoSearchEnvironment,
)
from repro.query.metrics import (
    duplicate_fraction,
    interpolate_curves_on_grid,
    precision,
    recall_against_table,
    recall_curve,
    result_sample_indices,
    samples_to_recall,
    savings_ratio,
    time_to_recall,
    unique_instance_curve,
)
from repro.query.query import DistinctObjectQuery
from repro.query.session import (
    BudgetExhausted,
    QuerySession,
    ResultFound,
    SampleBatch,
    SessionEvent,
)

__all__ = [
    "BudgetExhausted",
    "CostModel",
    "DistinctObjectQuery",
    "FoundObject",
    "PAPER_DETECTOR_FPS",
    "PAPER_SCAN_FPS",
    "QueryEngine",
    "QueryOutcome",
    "QuerySession",
    "ReplaySession",
    "ResultFound",
    "SEARCH_METHODS",
    "SampleBatch",
    "SearcherContext",
    "SearcherSpec",
    "SessionEvent",
    "VideoSearchEnvironment",
    "duplicate_fraction",
    "interpolate_curves_on_grid",
    "precision",
    "recall_against_table",
    "recall_curve",
    "register_searcher",
    "result_sample_indices",
    "samples_to_recall",
    "savings_ratio",
    "searcher_spec",
    "searcher_specs",
    "time_to_recall",
    "unique_instance_curve",
    "unregister_searcher",
]
