"""User-facing query layer: queries, cost model, metrics, engine."""

from repro.query.cost import PAPER_DETECTOR_FPS, PAPER_SCAN_FPS, CostModel
from repro.query.engine import (
    SEARCH_METHODS,
    FoundObject,
    QueryEngine,
    QueryOutcome,
    VideoSearchEnvironment,
)
from repro.query.metrics import (
    duplicate_fraction,
    interpolate_curves_on_grid,
    precision,
    recall_against_table,
    recall_curve,
    result_sample_indices,
    samples_to_recall,
    savings_ratio,
    time_to_recall,
    unique_instance_curve,
)
from repro.query.query import DistinctObjectQuery

__all__ = [
    "CostModel",
    "DistinctObjectQuery",
    "FoundObject",
    "PAPER_DETECTOR_FPS",
    "PAPER_SCAN_FPS",
    "QueryEngine",
    "QueryOutcome",
    "SEARCH_METHODS",
    "VideoSearchEnvironment",
    "duplicate_fraction",
    "interpolate_curves_on_grid",
    "precision",
    "recall_against_table",
    "recall_curve",
    "result_sample_indices",
    "samples_to_recall",
    "savings_ratio",
    "time_to_recall",
    "unique_instance_curve",
]
