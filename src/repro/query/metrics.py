"""Evaluation metrics: recall curves, time-to-recall, savings ratios (§V).

The paper measures *recall over distinct instances* ("recall is the fraction
of distinct instances found", §V-A) and reports the ratio of the time (or
frames) two methods need to reach the same recall (Figure 5). These helpers
compute all of that exactly from :class:`~repro.core.SearchTrace` records.

A detail worth spelling out: a trace's result payloads can contain false
positives (tracks with no backing instance) and occasional duplicates (the
tracker lost an object and the same instance was "found" again). Recall is
computed over *unique real* instances, so neither inflates it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.sampler import SearchTrace
from repro.errors import QueryError


def result_sample_indices(trace: SearchTrace) -> np.ndarray:
    """For each result payload, the 0-based sample index that produced it."""
    return np.repeat(np.arange(trace.num_samples), trace.d0s)


def _payload_uid(payload: object) -> Optional[int]:
    """Extract a backing instance uid from a result payload.

    Payloads are either plain ints (the theory simulators return instance
    ids directly) or objects with an ``instance_uid`` attribute (the video
    pipeline's found-object records, where None marks a false positive).
    """
    if isinstance(payload, (int, np.integer)):
        return int(payload)
    uid = getattr(payload, "instance_uid", None)
    return int(uid) if uid is not None else None


def unique_instance_curve(trace: SearchTrace) -> np.ndarray:
    """Unique *real* instances found after each processed frame."""
    curve = np.zeros(trace.num_samples, dtype=np.int64)
    if trace.num_samples == 0:
        return curve
    seen: set[int] = set()
    indices = result_sample_indices(trace)
    per_sample_new = np.zeros(trace.num_samples, dtype=np.int64)
    for payload, sample_idx in zip(trace.results, indices, strict=True):
        uid = _payload_uid(payload)
        if uid is None or uid in seen:
            continue
        seen.add(uid)
        per_sample_new[sample_idx] += 1
    np.cumsum(per_sample_new, out=curve)
    return curve


def recall_curve(trace: SearchTrace, gt_count: int) -> np.ndarray:
    """Recall over distinct instances after each processed frame."""
    if gt_count <= 0:
        raise QueryError("gt_count must be positive")
    return unique_instance_curve(trace) / float(gt_count)


def samples_to_recall(
    trace: SearchTrace, gt_count: int, recall: float
) -> Optional[int]:
    """Frames processed until ``recall`` of GT instances were found.

    Returns None if the trace never reaches the target.
    """
    if not 0 < recall <= 1:
        raise QueryError("recall must lie in (0, 1]")
    needed = max(int(np.ceil(recall * gt_count - 1e-9)), 1)
    curve = unique_instance_curve(trace)
    hits = np.flatnonzero(curve >= needed)
    if hits.size == 0:
        return None
    return int(hits[0]) + 1


def time_to_recall(
    trace: SearchTrace, gt_count: int, recall: float
) -> Optional[float]:
    """Seconds (including any upfront scan) until reaching ``recall``."""
    samples = samples_to_recall(trace, gt_count, recall)
    if samples is None:
        return None
    return float(trace.upfront_cost + trace.costs[:samples].sum())


def savings_ratio(
    baseline: SearchTrace,
    candidate: SearchTrace,
    gt_count: int,
    recall: float,
    mode: str = "time",
) -> Optional[float]:
    """How much faster ``candidate`` reaches ``recall`` than ``baseline``.

    The Figure 5 quantity: values above 1 mean the candidate (ExSample in
    the paper) wins. ``mode`` is "time" (includes upfront costs) or
    "samples" (detector invocations only). Returns None when either trace
    fails to reach the target.
    """
    if mode == "time":
        base = time_to_recall(baseline, gt_count, recall)
        cand = time_to_recall(candidate, gt_count, recall)
    elif mode == "samples":
        base_s = samples_to_recall(baseline, gt_count, recall)
        cand_s = samples_to_recall(candidate, gt_count, recall)
        base = float(base_s) if base_s is not None else None
        cand = float(cand_s) if cand_s is not None else None
    else:
        raise QueryError(f"unknown savings mode {mode!r}")
    if base is None or cand is None or cand <= 0:
        return None
    return base / cand


def precision(trace: SearchTrace) -> float:
    """Fraction of returned results backed by a real instance."""
    if not trace.results:
        return 1.0
    real = sum(1 for payload in trace.results if _payload_uid(payload) is not None)
    return real / len(trace.results)


def duplicate_fraction(trace: SearchTrace) -> float:
    """Fraction of real results that re-found an already-found instance.

    Nonzero when the discriminator's tracker lost an object and a later
    sighting opened a second track for the same physical instance.
    """
    uids = [
        _payload_uid(payload)
        for payload in trace.results
        if _payload_uid(payload) is not None
    ]
    if not uids:
        return 0.0
    return 1.0 - len(set(uids)) / len(uids)


def recall_against_table(
    trace: SearchTrace,
    approx_count: int,
    true_count: int,
) -> dict:
    """Recall under both denominators: approximate (scan-built) and true GT.

    The paper's recall denominators come from a sequential scan + IoU
    tracking pass (§V-A), not from oracle labels. This helper reports the
    final recall under an approximate count alongside the oracle-count
    recall, so experiments can quantify how much the GT approximation moves
    the metric. ``approx_count`` typically comes from
    :func:`repro.tracking.approximate_ground_truth`.
    """
    if approx_count <= 0 or true_count <= 0:
        raise QueryError("both GT counts must be positive")
    found = int(unique_instance_curve(trace)[-1]) if trace.num_samples else 0
    return {
        "found": found,
        "recall_vs_true": found / true_count,
        "recall_vs_approx": min(found / approx_count, 1.0),
        "denominator_ratio": approx_count / true_count,
    }


def interpolate_curves_on_grid(
    traces: Sequence[SearchTrace],
    grid: np.ndarray,
    gt_count: Optional[int] = None,
) -> np.ndarray:
    """Stack discovery (or recall) curves from many runs onto a sample grid.

    Used by the experiment runner to compute Figure 3-style median bands
    across repeated runs of unequal length.
    """
    rows: List[np.ndarray] = []
    for trace in traces:
        curve = (
            unique_instance_curve(trace)
            if gt_count is None
            else recall_curve(trace, gt_count)
        )
        padded = np.zeros(len(grid), dtype=float)
        for i, g in enumerate(grid):
            if g <= 0 or curve.size == 0:
                padded[i] = 0.0
            else:
                padded[i] = curve[min(int(g), curve.size) - 1]
        rows.append(padded)
    return np.vstack(rows)
