"""Comparison methods from §II-B: random, random+, sequential, proxy, oracle."""

from repro.baselines.oracle_search import OracleStaticSearcher
from repro.baselines.proxy_search import ProxySearcher
from repro.baselines.random_search import RandomSearcher
from repro.baselines.randomplus_search import RandomPlusSearcher
from repro.baselines.sequential_search import SequentialSearcher

__all__ = [
    "OracleStaticSearcher",
    "ProxySearcher",
    "RandomPlusSearcher",
    "RandomSearcher",
    "SequentialSearcher",
]
