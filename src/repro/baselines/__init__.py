"""Comparison methods from §II-B: random, random+, sequential, proxy, oracle.

Import order is deliberate (not alphabetical): each module registers its
method with :mod:`repro.core.registry` at import time, and registration
order is the order ``SEARCH_METHODS``, CLI choices and method sweeps
present — kept identical to the historical ``SEARCH_METHODS`` tuple.
"""

from repro.baselines.random_search import RandomSearcher
from repro.baselines.randomplus_search import RandomPlusSearcher
from repro.baselines.sequential_search import SequentialSearcher
from repro.baselines.proxy_search import ProxySearcher
from repro.baselines.oracle_search import OracleStaticSearcher

__all__ = [
    "OracleStaticSearcher",
    "ProxySearcher",
    "RandomPlusSearcher",
    "RandomSearcher",
    "SequentialSearcher",
]
