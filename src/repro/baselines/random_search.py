"""Uniform random sampling without replacement (§II-B).

"A better strategy is to iteratively process frames uniformly sampled from
the video repository (without replacement)." This is the paper's primary
baseline: every comparison in Figures 3-5 is ExSample vs this method.

Uniformity over the *remaining* frames of the whole repository is achieved
by picking a chunk with probability proportional to its remaining frame
count, then drawing the chunk's next uniform-without-replacement frame.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.environment import SearchEnvironment
from repro.core.frame_order import UniformOrder
from repro.core.registry import register_searcher
from repro.core.sampler import Searcher
from repro.utils.rng import RngFactory


class RandomSearcher(Searcher):
    """Global uniform sampling without replacement."""

    name = "random"

    def __init__(
        self,
        env: SearchEnvironment,
        rng: RngFactory | int | None = 0,
        batch_size: int = 1,
    ):
        super().__init__(env, rng)
        self.batch_size = max(int(batch_size), 1)
        self._chunk_rng = self.rngs.stream("chunk-choice")
        self._orders = [
            UniformOrder(int(size), self.rngs.stream("order", j))
            for j, size in enumerate(self.sizes)
        ]

    def pick_batch(self) -> List[Tuple[int, int]]:
        picks: List[Tuple[int, int]] = []
        remaining = np.array([o.remaining for o in self._orders], dtype=float)
        for _ in range(self.batch_size):
            total = remaining.sum()
            if total <= 0:
                break
            probs = remaining / total
            chunk = int(self._chunk_rng.choice(remaining.size, p=probs))
            picks.append((chunk, self._orders[chunk].next()))
            remaining[chunk] -= 1
        return picks


@register_searcher(
    "random",
    description="uniform random sampling without replacement (primary baseline)",
)
def _build_random(ctx):
    return RandomSearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch())
