"""BlazeIt-style proxy-ordered search (§II-B "Proxy-based methods").

The proxy approach pays an upfront cost to score *every* frame with a cheap
model, then feeds frames to the expensive detector in descending score
order. For distinct-object queries BlazeIt adds a duplicate-avoidance
heuristic: "do not process frames that are close to previously processed
frames" (§III), implemented here as a temporal exclusion window.

The upfront scan cost — the crux of the paper's Table I comparison — is
charged through :meth:`upfront_cost`, so every time-based metric computed
from the resulting trace automatically includes it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.environment import SearchEnvironment
from repro.core.registry import register_searcher
from repro.core.sampler import Searcher
from repro.errors import ConfigError
from repro.utils.rng import RngFactory


class ProxySearcher(Searcher):
    """Process frames in descending proxy-score order with a dedup window."""

    name = "proxy"

    def __init__(
        self,
        env: SearchEnvironment,
        scores: np.ndarray,
        scan_cost: float,
        rng: RngFactory | int | None = 0,
        dedup_window: int = 0,
        batch_size: int = 1,
    ):
        super().__init__(env, rng)
        self._total = int(self.sizes.sum())
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (self._total,):
            raise ConfigError(
                f"scores must cover all {self._total} frames, got {scores.shape}"
            )
        if dedup_window < 0:
            raise ConfigError("dedup_window must be non-negative")
        if scan_cost < 0:
            raise ConfigError("scan_cost must be non-negative")
        self._scan_cost = float(scan_cost)
        self.dedup_window = int(dedup_window)
        self.batch_size = max(int(batch_size), 1)
        self._order = np.argsort(-scores, kind="stable")
        self._cursor = 0
        self._blocked = np.zeros(self._total, dtype=bool)
        self._bounds = np.concatenate([[0], np.cumsum(self.sizes)])

    def upfront_cost(self) -> float:
        """The full-dataset scoring scan the method cannot avoid."""
        return self._scan_cost

    def pick_batch(self) -> List[Tuple[int, int]]:
        picks: List[Tuple[int, int]] = []
        while len(picks) < self.batch_size and self._cursor < self._total:
            frame = int(self._order[self._cursor])
            self._cursor += 1
            if self._blocked[frame]:
                continue
            if self.dedup_window > 0:
                lo = max(frame - self.dedup_window, 0)
                hi = min(frame + self.dedup_window + 1, self._total)
                self._blocked[lo:hi] = True
            else:
                self._blocked[frame] = True
            chunk = int(np.searchsorted(self._bounds, frame, side="right") - 1)
            picks.append((chunk, int(frame - self._bounds[chunk])))
        return picks


@register_searcher(
    "proxy",
    description="BlazeIt-style full proxy scan, then descending-score order",
)
def _build_proxy(ctx):
    engine = ctx.require_engine("proxy")
    proxy = engine.proxy_model(ctx.env.class_name, ctx.proxy_quality)
    scan_cost = engine.cost_model.scan_cost(engine.dataset.total_frames)
    fps = engine.dataset.repository.common_fps()
    return ProxySearcher(
        ctx.env,
        scores=proxy.score_all(),
        scan_cost=scan_cost,
        rng=ctx.rngs,
        dedup_window=int(ctx.dedup_window_s * fps),
        batch_size=ctx.batch(),
    )
