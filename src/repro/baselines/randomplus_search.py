"""random+: temporally stratified random sampling over the repository (§III-F).

The paper introduces random+ both as a better stand-alone baseline and as
the within-chunk order ExSample uses. Stand-alone, random+ stratifies over
the *whole* repository: one random frame out of every hour, then one out of
every not-yet-sampled half hour, and so on — so early samples are spread out
instead of clumping, which matters exactly when results cluster temporally.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.environment import SearchEnvironment
from repro.core.frame_order import RandomPlusOrder
from repro.core.registry import register_searcher
from repro.core.sampler import Searcher
from repro.utils.rng import RngFactory


class RandomPlusSearcher(Searcher):
    """Global random+ sampling (stratified without replacement)."""

    name = "randomplus"

    def __init__(
        self,
        env: SearchEnvironment,
        rng: RngFactory | int | None = 0,
        batch_size: int = 1,
        initial_strata: int = 1,
    ):
        super().__init__(env, rng)
        self.batch_size = max(int(batch_size), 1)
        total = int(self.sizes.sum())
        self._order = RandomPlusOrder(
            total, self.rngs.stream("global-order"), initial_strata=initial_strata
        )
        self._bounds = np.concatenate([[0], np.cumsum(self.sizes)])

    def pick_batch(self) -> List[Tuple[int, int]]:
        picks: List[Tuple[int, int]] = []
        for _ in range(self.batch_size):
            if self._order.remaining <= 0:
                break
            global_frame = self._order.next()
            chunk = int(
                np.searchsorted(self._bounds, global_frame, side="right") - 1
            )
            picks.append((chunk, int(global_frame - self._bounds[chunk])))
        return picks


@register_searcher(
    "randomplus",
    description="temporally stratified random sampling over the repository (§III-F)",
)
def _build_randomplus(ctx):
    return RandomPlusSearcher(ctx.env, rng=ctx.rngs, batch_size=ctx.batch())
