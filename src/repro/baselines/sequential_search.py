"""Naive sequential execution with optional frame-rate reduction (§II-B).

"A straightforward method is to process frames sequentially ... A natural
extension is to sample only one out of every n frames." The paper notes its
two failure modes: high variance (long empty stretches) and a sampling rate
that cannot be right for all object durations at once. Implemented for
completeness and for the intro-motivating comparisons.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.environment import SearchEnvironment
from repro.core.registry import register_searcher
from repro.core.sampler import Searcher
from repro.errors import ConfigError
from repro.utils.rng import RngFactory


class SequentialSearcher(Searcher):
    """Scan frames in order, visiting every ``stride``-th frame first.

    With ``stride > 1`` the scan makes multiple passes: pass k visits frames
    congruent to k-1 modulo the stride, so the searcher eventually covers
    everything (sampling without replacement, like the other methods).
    """

    name = "sequential"

    def __init__(
        self,
        env: SearchEnvironment,
        rng: RngFactory | int | None = 0,
        stride: int = 30,
        batch_size: int = 1,
    ):
        super().__init__(env, rng)
        if stride < 1:
            raise ConfigError("stride must be >= 1")
        self.stride = stride
        self.batch_size = max(int(batch_size), 1)
        self._bounds = np.concatenate([[0], np.cumsum(self.sizes)])
        self._total = int(self.sizes.sum())
        self._pass = 0
        self._cursor = 0

    def _next_global(self) -> int | None:
        while self._pass < self.stride:
            frame = self._cursor * self.stride + self._pass
            if frame < self._total:
                self._cursor += 1
                return frame
            self._pass += 1
            self._cursor = 0
        return None

    def pick_batch(self) -> List[Tuple[int, int]]:
        picks: List[Tuple[int, int]] = []
        for _ in range(self.batch_size):
            global_frame = self._next_global()
            if global_frame is None:
                break
            chunk = int(
                np.searchsorted(self._bounds, global_frame, side="right") - 1
            )
            picks.append((chunk, int(global_frame - self._bounds[chunk])))
        return picks


@register_searcher(
    "sequential",
    description="sequential scan with frame-rate reduction (naive execution)",
)
def _build_sequential(ctx):
    engine = ctx.require_engine("sequential")
    # A one-second stride by default; the validated repository-level fps
    # handles heterogeneous videos, and the max() guards sub-1fps footage
    # (e.g. timelapse) from a zero stride.
    fps = engine.dataset.repository.common_fps()
    return SequentialSearcher(
        ctx.env,
        rng=ctx.rngs,
        # `is not None`, not `or`: an explicit stride=0 must reach
        # SequentialSearcher's validation, not the fps default.
        stride=ctx.stride if ctx.stride is not None else max(int(fps), 1),
        batch_size=ctx.batch(),
    )
