"""The optimal static-weight sampler: the §IV-A conceptual upper bound.

This searcher samples chunk j with a *fixed* probability w_j computed from
Eq. IV.1 using perfect knowledge of the hidden chunk-conditional instance
probabilities. It is "not applicable in real scenarios, but helps to
understand ExSample and its limits": Figures 3 and 4 plot its expectation as
the dashed line that ExSample converges towards.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.environment import SearchEnvironment
from repro.core.frame_order import UniformOrder
from repro.core.registry import register_searcher
from repro.core.sampler import Searcher
from repro.errors import ConfigError
from repro.utils.rng import RngFactory


class OracleStaticSearcher(Searcher):
    """Sample chunks i.i.d. from a fixed weight vector (Eq. IV.1 solution)."""

    name = "oracle"

    def __init__(
        self,
        env: SearchEnvironment,
        weights: np.ndarray,
        rng: RngFactory | int | None = 0,
        batch_size: int = 1,
    ):
        super().__init__(env, rng)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.sizes.size,):
            raise ConfigError(
                f"weights must have one entry per chunk "
                f"({self.sizes.size}), got {weights.shape}"
            )
        if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0, atol=1e-6):
            raise ConfigError("weights must be a probability vector")
        self.weights = weights / weights.sum()
        self.batch_size = max(int(batch_size), 1)
        self._chunk_rng = self.rngs.stream("chunk-choice")
        self._orders = [
            UniformOrder(int(size), self.rngs.stream("order", j))
            for j, size in enumerate(self.sizes)
        ]

    def pick_batch(self) -> List[Tuple[int, int]]:
        picks: List[Tuple[int, int]] = []
        remaining = np.array([o.remaining for o in self._orders], dtype=float)
        for _ in range(self.batch_size):
            active = remaining > 0
            if not np.any(active):
                break
            probs = np.where(active, self.weights, 0.0)
            total = probs.sum()
            if total <= 0:
                # All weighted chunks are exhausted; fall back to uniform
                # over whatever frames remain so the search can complete.
                probs = np.where(active, remaining, 0.0)
                total = probs.sum()
            probs = probs / total
            chunk = int(self._chunk_rng.choice(probs.size, p=probs))
            picks.append((chunk, self._orders[chunk].next()))
            remaining[chunk] -= 1
        return picks


@register_searcher(
    "oracle",
    description="fixed optimal chunk weights from ground truth (Eq. IV.1 bound)",
)
def _build_oracle(ctx):
    from repro.theory.optimal_weights import optimal_weights

    engine = ctx.require_engine("oracle")
    bounds = engine.dataset.chunk_map.global_bounds()
    p_matrix = engine.dataset.world.chunk_probabilities(ctx.env.class_name, bounds)
    budget = ctx.sample_budget_hint or max(engine.dataset.total_frames // 200, 1000)
    weights = optimal_weights(p_matrix, float(budget))
    return OracleStaticSearcher(
        ctx.env, weights=weights, rng=ctx.rngs, batch_size=ctx.batch()
    )
