"""The Eq. IV.1 optimal static chunk-weight benchmark.

§IV-A derives the best *fixed* allocation of ``n`` samples across ``M``
chunks, assuming perfect knowledge of every instance's chunk-conditional
probabilities ``p_ij``:

    maximise_w  Σ_i 1 - (1 - p_i · w)^n     s.t. w in the simplex.

The objective is concave (each term is 1 minus a convex composition), so a
projected-gradient ascent converges to the global optimum. The paper solves
this with CVXPY [19]; we are offline, so we implement projected gradient with
backtracking line search and cross-check against scipy's SLSQP in tests.

This benchmark is *not* a practical algorithm — it peeks at the hidden
``p_ij`` — but it upper-bounds what any chunk-weighting scheme (ExSample
included) can achieve with a fixed allocation, and Figures 3/4 plot it as
the dashed line ExSample converges towards.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError


def expected_found(p_matrix: np.ndarray, weights: np.ndarray, n: float) -> float:
    """E[#instances found] after n weighted samples: Σ_i 1 - (1 - p_i·w)^n."""
    hit = np.clip(p_matrix @ weights, 0.0, 1.0)
    # log1p keeps (1-q)^n accurate for the tiny per-draw probabilities that
    # dominate here (q ~ 1e-5, n ~ 1e4).
    with np.errstate(divide="ignore"):
        log_miss = n * np.log1p(-np.minimum(hit, 1 - 1e-15))
    return float(np.sum(1.0 - np.exp(log_miss)))


def expected_found_curve(
    p_matrix: np.ndarray, weights: np.ndarray, n_grid: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`expected_found` over a grid of sample counts."""
    return np.array([expected_found(p_matrix, weights, n) for n in n_grid])


def uniform_weights(num_chunks: int) -> np.ndarray:
    """The random-sampling allocation: equal weight per chunk."""
    return np.full(num_chunks, 1.0 / num_chunks)


def project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of ``v`` onto the probability simplex.

    Standard sort-based algorithm (Held et al. 1974): find the threshold
    theta such that ``max(v - theta, 0)`` sums to 1.
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise SolverError("can only project 1-D vectors")
    u = np.sort(v)[::-1]
    cumsum = np.cumsum(u)
    rho_candidates = u - (cumsum - 1.0) / np.arange(1, v.size + 1)
    rho = np.nonzero(rho_candidates > 0)[0][-1]
    theta = (cumsum[rho] - 1.0) / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


def _gradient(p_matrix: np.ndarray, weights: np.ndarray, n: float) -> np.ndarray:
    hit = np.clip(p_matrix @ weights, 0.0, 1.0 - 1e-15)
    with np.errstate(divide="ignore"):
        log_miss = (n - 1.0) * np.log1p(-hit)
    coeff = n * np.exp(log_miss)
    return coeff @ p_matrix


def optimal_weights(
    p_matrix: np.ndarray,
    n: float,
    max_iters: int = 500,
    tol: float = 1e-10,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Solve Eq. IV.1 by projected-gradient ascent with backtracking.

    Parameters
    ----------
    p_matrix:
        (N, M) matrix of chunk-conditional instance probabilities
        (:meth:`InstancePopulation.chunk_probabilities`).
    n:
        The fixed sample budget the allocation is optimised for. The optimum
        depends on ``n``: small budgets favour concentrating weight on the
        densest chunk, large budgets spread out to pick up the tail.

    Returns the optimal simplex weight vector.
    """
    p_matrix = np.asarray(p_matrix, dtype=float)
    if p_matrix.ndim != 2 or p_matrix.size == 0:
        raise SolverError("p_matrix must be a non-empty 2-D array")
    if n <= 0:
        raise SolverError("sample budget n must be positive")
    num_chunks = p_matrix.shape[1]
    weights = (
        uniform_weights(num_chunks) if initial is None else project_to_simplex(initial)
    )
    value = expected_found(p_matrix, weights, n)
    step = 1.0 / max(n, 1.0)
    for _ in range(max_iters):
        grad = _gradient(p_matrix, weights, n)
        improved = False
        trial_step = step
        for _ in range(40):
            candidate = project_to_simplex(weights + trial_step * grad)
            candidate_value = expected_found(p_matrix, candidate, n)
            if candidate_value > value + tol:
                weights, value = candidate, candidate_value
                step = trial_step * 1.5
                improved = True
                break
            trial_step /= 2.0
        if not improved:
            break
    return weights


def optimal_curve(
    p_matrix: np.ndarray, n_grid: np.ndarray, warm_start: bool = True
) -> np.ndarray:
    """E[found] under the per-n optimal allocation, for each n in the grid.

    This is the dashed line of Figures 3/4: note the paper computes the
    optimum *as a function of n*, so each grid point gets its own solve
    (warm-started from the previous point for speed).
    """
    results = np.zeros(len(n_grid), dtype=float)
    weights = None
    for i, n in enumerate(n_grid):
        weights = optimal_weights(p_matrix, float(n), initial=weights)
        results[i] = expected_found(p_matrix, weights, float(n))
    return results
