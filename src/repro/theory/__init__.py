"""Analytical machinery: the paper's §III-D and §IV simulations and bounds."""

from repro.theory.bounds import (
    MarginReport,
    bias_margin_report,
    dataset_coverage_check,
    poisson_fit_report,
    variance_margin_report,
)
from repro.theory.coin_sim import (
    RunTuples,
    first_two_appearances,
    run_statistics_at,
    simulate_many_runs,
    simulate_run_fast,
    simulate_run_literal,
)
from repro.theory.estimator_validation import (
    PAPER_FIGURE2_CELLS,
    CellReport,
    bias_profile,
    cell_report,
    populated_cells,
    variance_bound_coverage,
)
from repro.theory.instances import (
    InstancePopulation,
    even_chunk_bounds,
    lognormal_durations,
    lognormal_probabilities,
)
from repro.theory.optimal_weights import (
    expected_found,
    expected_found_curve,
    optimal_curve,
    optimal_weights,
    project_to_simplex,
    uniform_weights,
)
from repro.theory.skew import SkewSummary, half_cover_mask, k_half, skew_metric
from repro.theory.temporal_sim import TemporalEnvironment

__all__ = [
    "CellReport",
    "MarginReport",
    "bias_margin_report",
    "dataset_coverage_check",
    "poisson_fit_report",
    "variance_margin_report",
    "InstancePopulation",
    "PAPER_FIGURE2_CELLS",
    "RunTuples",
    "SkewSummary",
    "TemporalEnvironment",
    "bias_profile",
    "cell_report",
    "even_chunk_bounds",
    "expected_found",
    "expected_found_curve",
    "first_two_appearances",
    "half_cover_mask",
    "k_half",
    "lognormal_durations",
    "lognormal_probabilities",
    "optimal_curve",
    "optimal_weights",
    "populated_cells",
    "project_to_simplex",
    "run_statistics_at",
    "simulate_many_runs",
    "simulate_run_fast",
    "simulate_run_literal",
    "skew_metric",
    "uniform_weights",
    "variance_bound_coverage",
]
