"""The §IV temporal simulation: instances on a timeline, chunked sampling.

This wires an :class:`InstancePopulation` into the
:class:`~repro.core.environment.SearchEnvironment` protocol so the *actual*
ExSample sampler (and every baseline) can run against the paper's simulated
workloads of Figures 3 and 4. The discriminator here is perfect — results
are deduplicated by true instance identity — which matches the paper's
simulation setup (the detector/tracker error model lives in the video
substrate, not here).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.environment import Observation
from repro.core.estimator import SeenCounter
from repro.errors import DatasetError
from repro.theory.instances import InstancePopulation, even_chunk_bounds


class TemporalEnvironment:
    """A chunked timeline of instances with a perfect discriminator.

    Each :meth:`observe` call is one simulated detector invocation: the set
    of instances visible in the global frame is computed from the interval
    index, new-vs-seen bookkeeping follows Algorithm 1's d0/d1 semantics,
    and the cost of the frame is ``frame_cost`` (1.0 by default so costs
    count frames, the unit Figures 3 and 4 use).

    The environment is stateful (it remembers which instances were seen);
    create a fresh instance per run, or call :meth:`reset`.
    """

    def __init__(
        self,
        population: InstancePopulation,
        bounds: np.ndarray,
        frame_cost: float = 1.0,
    ):
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise DatasetError("bounds must have at least two entries")
        if bounds[0] != 0 or bounds[-1] != population.total_frames:
            raise DatasetError("bounds must span exactly [0, total_frames]")
        if np.any(np.diff(bounds) <= 0):
            raise DatasetError("bounds must be strictly increasing")
        self.population = population
        self.bounds = bounds
        self.frame_cost = float(frame_cost)
        self._sizes = np.diff(bounds).astype(np.int64)
        # Sort instances by start for the per-frame visibility query.
        self._order = np.argsort(population.starts)
        self._sorted_starts = population.starts[self._order]
        self._sorted_ends = population.ends[self._order]
        self.reset()

    @classmethod
    def with_even_chunks(
        cls,
        population: InstancePopulation,
        num_chunks: int,
        frame_cost: float = 1.0,
    ) -> "TemporalEnvironment":
        bounds = even_chunk_bounds(population.total_frames, num_chunks)
        return cls(population, bounds, frame_cost)

    def reset(self) -> None:
        """Forget all seen instances (start a fresh query)."""
        self.counter = SeenCounter()
        self._first_chunk: dict[int, int] = {}

    # -- SearchEnvironment protocol ----------------------------------------

    def chunk_sizes(self) -> np.ndarray:
        return self._sizes

    def observe(self, chunk: int, frame: int) -> Observation:
        global_frame = int(self.bounds[chunk]) + int(frame)
        if not self.bounds[chunk] <= global_frame < self.bounds[chunk + 1]:
            raise DatasetError(
                f"frame {frame} outside chunk {chunk} "
                f"[{self.bounds[chunk]}, {self.bounds[chunk + 1]})"
            )
        return self._observe_global(int(chunk), global_frame)

    def observe_batch(self, picks) -> "List[Observation]":
        """Batched observation (§III-F): one call for a whole pick list.

        Address translation and bounds checking are vectorised; the d0/d1
        bookkeeping folds frames into the seen-counter sequentially, so the
        observations are identical to per-pick :meth:`observe` calls.
        """
        if not picks:
            return []
        chunks = np.fromiter(
            (chunk for chunk, _ in picks), dtype=np.int64, count=len(picks)
        )
        withins = np.fromiter(
            (frame for _, frame in picks), dtype=np.int64, count=len(picks)
        )
        if np.any((chunks < 0) | (chunks >= self._sizes.size)):
            raise DatasetError("chunk index out of range")
        if np.any((withins < 0) | (withins >= self._sizes[chunks])):
            raise DatasetError("within-chunk frame index out of range")
        global_frames = (self.bounds[chunks] + withins).tolist()
        observe_global = self._observe_global
        return [
            observe_global(chunk, global_frame)
            for chunk, global_frame in zip(chunks.tolist(), global_frames, strict=True)
        ]

    def _observe_global(self, chunk: int, global_frame: int) -> Observation:
        visible = self.visible_instances(global_frame)
        previously_unseen = [
            int(i) for i in visible if self.counter.times_seen(int(i)) == 0
        ]
        seen_exactly_once = [
            int(i) for i in visible if self.counter.times_seen(int(i)) == 1
        ]
        d0, d1 = self.counter.observe_frame(visible)
        for uid in previously_unseen:
            self._first_chunk[uid] = int(chunk)
        origins = [self._first_chunk[uid] for uid in seen_exactly_once]
        return Observation(
            d0=d0,
            d1=d1,
            results=previously_unseen,
            cost=self.frame_cost,
            d1_origin_chunks=origins,
        )

    # -- helpers ---------------------------------------------------------

    def visible_instances(self, global_frame: int) -> List[int]:
        """True instance ids visible in a global frame index."""
        hi = np.searchsorted(self._sorted_starts, global_frame, side="right")
        active = self._sorted_ends[:hi] > global_frame
        return [int(i) for i in self._order[:hi][active]]

    @property
    def num_instances(self) -> int:
        return self.population.count

    def distinct_found(self) -> int:
        return self.counter.distinct
