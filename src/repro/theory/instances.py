"""Synthetic instance populations for the paper's analytical simulations.

The simulations of §III-D and §IV model a dataset as ``N`` object instances,
each visible for some number of frames. Two generators are provided:

* :func:`lognormal_probabilities` — the §III-D setup: 1000 per-frame
  probabilities ``p_i`` drawn from a lognormal (heavy skew across five
  orders of magnitude).
* :class:`InstancePopulation` — the §IV-B setup: instances with lognormal
  *durations* placed on a frame timeline, with placement skew controlled the
  way the paper controls it ("95% of the instances appear in the center
  1/4, 1/32, 1/256 of the frames" — a truncated normal over positions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

#: z-value such that 95% of a normal lies within ±z standard deviations.
_Z_95 = 1.959963984540054


def lognormal_probabilities(
    count: int,
    rng: np.random.Generator,
    mean_p: float = 3e-3,
    sigma_log: float = 1.75,
    max_p: float = 0.5,
) -> np.ndarray:
    """Draw ``count`` per-frame probabilities from a lognormal.

    The defaults approximate §III-D's population: "the smallest p_i is
    3e-6, while the max p_i = .15. The parameters mu_p and sigma_p are
    3e-3 and 8e-3". A lognormal with median ``mean_p / exp(sigma^2/2)``
    reproduces a mean of ``mean_p`` with the requested log-scale skew.
    """
    if count <= 0:
        raise DatasetError("instance count must be positive")
    if not 0 < mean_p < 1:
        raise DatasetError("mean_p must lie in (0, 1)")
    mu_log = np.log(mean_p) - sigma_log**2 / 2.0
    p = rng.lognormal(mean=mu_log, sigma=sigma_log, size=count)
    return np.clip(p, 1e-12, max_p)


def lognormal_durations(
    count: int,
    mean_duration: float,
    rng: np.random.Generator,
    sigma_log: float = 0.75,
) -> np.ndarray:
    """Draw instance durations (in frames) with a lognormal shape.

    §IV-B: "we use a LogNormal distribution with a target mean of 700
    frames. This creates a set of durations where the shortest one is
    around 50 frames and the longest is around 5000". ``sigma_log=0.75``
    reproduces that spread for 2000 draws; the mean is matched exactly in
    expectation by shifting the log-mean.
    """
    if mean_duration <= 0:
        raise DatasetError("mean duration must be positive")
    mu_log = np.log(mean_duration) - sigma_log**2 / 2.0
    durations = rng.lognormal(mean=mu_log, sigma=sigma_log, size=count)
    return np.maximum(durations, 1.0)


@dataclass
class InstancePopulation:
    """``N`` instances on a frame timeline: start frame + duration each.

    Attributes
    ----------
    starts, durations:
        Integer arrays of per-instance first frame and length in frames.
        Every instance fits inside ``[0, total_frames)``.
    total_frames:
        Length of the timeline.
    labels:
        Optional per-instance class label indices (used by dataset builders;
        the pure theory simulations leave this as zeros).
    """

    starts: np.ndarray
    durations: np.ndarray
    total_frames: int
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.durations = np.asarray(self.durations, dtype=np.int64)
        if self.starts.shape != self.durations.shape:
            raise DatasetError("starts and durations must align")
        if np.any(self.durations <= 0):
            raise DatasetError("durations must be positive")
        if np.any(self.starts < 0) or np.any(self.ends > self.total_frames):
            raise DatasetError("instances must fit inside the timeline")
        if self.labels is None:
            self.labels = np.zeros(self.starts.shape, dtype=np.int64)

    # -- constructors ------------------------------------------------------

    @classmethod
    def place(
        cls,
        count: int,
        total_frames: int,
        mean_duration: float,
        rng: np.random.Generator,
        skew_fraction: float | None = None,
        duration_sigma_log: float = 0.75,
        center: float | None = None,
    ) -> "InstancePopulation":
        """Generate a population with the paper's §IV-B placement model.

        Parameters
        ----------
        skew_fraction:
            ``None`` places instance centers uniformly (the "no instance
            skew" column of Figure 3). A fraction ``f`` places centers from
            a normal whose ±1.96σ window spans ``f`` of the timeline, i.e.
            95% of instances land in the central ``f`` of the frames
            (the "skewed toward 1/f of dataset" columns).
        center:
            Centre of the normal placement as a fraction of the timeline
            (default 0.5, the paper's choice).
        """
        if total_frames <= 1:
            raise DatasetError("total_frames must be > 1")
        durations = np.minimum(
            lognormal_durations(count, mean_duration, rng, duration_sigma_log),
            total_frames - 1,
        ).astype(np.int64)
        durations = np.maximum(durations, 1)
        if skew_fraction is None:
            mids = rng.uniform(0, total_frames, size=count)
        else:
            if not 0 < skew_fraction <= 1:
                raise DatasetError("skew_fraction must lie in (0, 1]")
            mu = (0.5 if center is None else center) * total_frames
            sigma = skew_fraction * total_frames / (2 * _Z_95)
            mids = rng.normal(mu, sigma, size=count)
        starts = np.clip(
            (mids - durations / 2).astype(np.int64), 0, None
        )
        starts = np.minimum(starts, total_frames - durations)
        return cls(starts=starts, durations=durations, total_frames=total_frames)

    # -- derived quantities --------------------------------------------------

    @property
    def count(self) -> int:
        return int(self.starts.size)

    @property
    def ends(self) -> np.ndarray:
        """Exclusive end frame per instance."""
        return self.starts + self.durations

    @property
    def midpoints(self) -> np.ndarray:
        return self.starts + self.durations // 2

    def global_p(self) -> np.ndarray:
        """p_i under uniform sampling of the whole timeline."""
        return self.durations / float(self.total_frames)

    def visible_at(self, frame: int) -> np.ndarray:
        """Indices of instances visible in ``frame`` (vectorised interval test)."""
        return np.flatnonzero((self.starts <= frame) & (frame < self.ends))

    def chunk_probabilities(self, bounds: np.ndarray) -> np.ndarray:
        """Conditional p_{ij}: chance of seeing instance i in a frame of chunk j.

        ``bounds`` is the (M+1,) array of chunk frame boundaries. Entry
        (i, j) is ``overlap(instance_i, chunk_j) / len(chunk_j)`` — the
        M-dimensional vector of §IV-A.
        """
        bounds = np.asarray(bounds, dtype=np.int64)
        lows = np.maximum(self.starts[:, None], bounds[None, :-1])
        highs = np.minimum(self.ends[:, None], bounds[None, 1:])
        overlap = np.clip(highs - lows, 0, None).astype(float)
        widths = (bounds[1:] - bounds[:-1]).astype(float)
        if np.any(widths <= 0):
            raise DatasetError("chunk bounds must be strictly increasing")
        return overlap / widths[None, :]

    def chunk_counts(self, bounds: np.ndarray) -> np.ndarray:
        """Instances per chunk by midpoint (the Figure 6 bar heights)."""
        bounds = np.asarray(bounds, dtype=np.int64)
        idx = np.clip(
            np.searchsorted(bounds, self.midpoints, side="right") - 1,
            0,
            bounds.size - 2,
        )
        return np.bincount(idx, minlength=bounds.size - 1)


def even_chunk_bounds(total_frames: int, num_chunks: int) -> np.ndarray:
    """Split ``[0, total_frames)`` into ``num_chunks`` near-equal chunks."""
    if num_chunks < 1 or num_chunks > total_frames:
        raise DatasetError(
            f"cannot split {total_frames} frames into {num_chunks} chunks"
        )
    return np.linspace(0, total_frames, num_chunks + 1).astype(np.int64)
