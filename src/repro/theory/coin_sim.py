"""The §III-D occupancy-model simulation ("tossing 1000 coins").

The paper validates the Gamma belief (Eq. III.4) by simulating frames in
which each instance ``i`` appears independently with probability ``p_i``,
tracking ``(n, N1, R(n+1))`` tuples across many runs, and comparing the
histogram of the *true* ``R(n+1)`` values at a given ``(n, N1)`` against the
belief density.

Two simulators are provided:

* :func:`simulate_run_fast` — exact and fast. Only the first and second
  appearance time of each instance matter for ``N1`` and ``R``: instance
  ``i`` contributes to ``N1(n)`` iff ``t1_i <= n < t2_i`` and to ``R(n+1)``
  iff ``t1_i > n``. Appearance gaps are geometric, so both times can be
  drawn directly and whole runs evaluated on a checkpoint grid without ever
  materialising frames. This makes the paper's "hundreds of millions of
  tuples" regime reachable in seconds.
* :func:`simulate_run_literal` — the paper's verbatim coin-tossing loop,
  kept (a) as executable documentation and (b) so tests can assert the fast
  path agrees with it distributionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass
class RunTuples:
    """The ``(n, N1, R(n+1))`` triples harvested from one or more runs."""

    n: np.ndarray
    n1: np.ndarray
    r_next: np.ndarray

    def __post_init__(self) -> None:
        if not (self.n.shape == self.n1.shape == self.r_next.shape):
            raise DatasetError("tuple arrays must align")

    @property
    def size(self) -> int:
        return int(self.n.size)

    def at(self, n: int, n1: int, n_tolerance: float = 0.05) -> np.ndarray:
        """True R(n+1) values observed near the given (n, N1) cell.

        Figure 2 conditions on an exact (n, N1) pair; with fewer runs than
        the paper's 10K we also accept n within ±``n_tolerance`` (relative)
        so histograms have enough mass. N1 is always matched exactly — it is
        the quantity whose information content we are testing.
        """
        lo = n * (1 - n_tolerance) - 1
        hi = n * (1 + n_tolerance) + 1
        mask = (self.n1 == n1) & (self.n >= lo) & (self.n <= hi)
        return self.r_next[mask]

    @staticmethod
    def concatenate(parts: "list[RunTuples]") -> "RunTuples":
        return RunTuples(
            n=np.concatenate([p.n for p in parts]),
            n1=np.concatenate([p.n1 for p in parts]),
            r_next=np.concatenate([p.r_next for p in parts]),
        )


def first_two_appearances(
    p: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the first and second appearance frame of each instance.

    Appearances of instance ``i`` across sampled frames form a Bernoulli
    process with rate ``p_i``; inter-appearance gaps are geometric. Returns
    1-based frame indices ``(t1, t2)`` with ``t1 < t2``.
    """
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0) | (p >= 1)):
        raise DatasetError("probabilities must lie strictly inside (0, 1)")
    t1 = rng.geometric(p)
    t2 = t1 + rng.geometric(p)
    return t1.astype(np.int64), t2.astype(np.int64)


def run_statistics_at(
    p: np.ndarray,
    t1: np.ndarray,
    t2: np.ndarray,
    checkpoints: np.ndarray,
) -> RunTuples:
    """Evaluate (N1(n), R(n+1)) at each checkpoint n of one simulated run.

    * ``N1(n)`` = number of instances with exactly one appearance in the
      first n frames = #{i : t1_i <= n < t2_i}.
    * ``R(n+1)`` = expected new instances in the next frame
      = sum of p_i over instances not yet seen = Σ_{t1_i > n} p_i.

    Both are computed for all checkpoints at once by sorting the appearance
    times (O((N + C) log N) per run).
    """
    checkpoints = np.asarray(checkpoints, dtype=np.int64)
    p = np.asarray(p, dtype=float)
    order1 = np.sort(t1)
    order2 = np.sort(t2)
    seen_once_or_more = np.searchsorted(order1, checkpoints, side="right")
    seen_twice_or_more = np.searchsorted(order2, checkpoints, side="right")
    n1 = seen_once_or_more - seen_twice_or_more

    # R(n+1): sum p over unseen instances. Sort instances by t1 and take a
    # suffix-sum of p in that order.
    sort_idx = np.argsort(t1)
    sorted_t1 = t1[sort_idx]
    suffix_p = np.concatenate([np.cumsum(p[sort_idx][::-1])[::-1], [0.0]])
    first_unseen = np.searchsorted(sorted_t1, checkpoints, side="right")
    r_next = suffix_p[first_unseen]

    return RunTuples(n=checkpoints.copy(), n1=n1.astype(np.int64), r_next=r_next)


def simulate_run_fast(
    p: np.ndarray,
    checkpoints: np.ndarray,
    rng: np.random.Generator,
) -> RunTuples:
    """One full run of the §III-D simulation via appearance-time sampling."""
    t1, t2 = first_two_appearances(p, rng)
    return run_statistics_at(p, t1, t2, checkpoints)


def simulate_many_runs(
    p: np.ndarray,
    checkpoints: np.ndarray,
    runs: int,
    rng: np.random.Generator,
) -> RunTuples:
    """Repeat :func:`simulate_run_fast` and pool all harvested tuples."""
    if runs <= 0:
        raise DatasetError("runs must be positive")
    parts = [simulate_run_fast(p, checkpoints, rng) for _ in range(runs)]
    return RunTuples.concatenate(parts)


def simulate_run_literal(
    p: np.ndarray,
    max_n: int,
    rng: np.random.Generator,
) -> RunTuples:
    """The paper's verbatim simulation: toss every coin for every frame.

    Exact but O(max_n * N); used by tests on small populations to validate
    :func:`simulate_run_fast`, and kept as executable documentation of
    §III-D's procedure.
    """
    p = np.asarray(p, dtype=float)
    times_seen = np.zeros(p.size, dtype=np.int64)
    n_vals = np.arange(1, max_n + 1, dtype=np.int64)
    n1_vals = np.zeros(max_n, dtype=np.int64)
    r_vals = np.zeros(max_n, dtype=float)
    for step in range(max_n):
        present = rng.random(p.size) < p
        times_seen[present] += 1
        n1_vals[step] = int(np.sum(times_seen == 1))
        r_vals[step] = float(np.sum(p[times_seen == 0]))
    return RunTuples(n=n_vals, n1=n1_vals, r_next=r_vals)
