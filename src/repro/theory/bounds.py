"""Numeric verification of the paper's three theorems (§III-A, §III-B).

The estimator module states the bounds; this module *measures* them:

* :func:`bias_margin_report` — Monte-Carlo check of the bias theorem
  (Eq. III.2): measured relative bias vs both stated upper bounds.
* :func:`variance_margin_report` — Monte-Carlo check of the variance bound
  (Eq. III.3).
* :func:`poisson_fit_report` — the sampling-distribution theorem: N1(n) is
  approximately Poisson(λ = Σ π_i(n)) when the p_i are small or n is large.
  Measured as the total-variation distance between the empirical N1
  distribution and the Poisson pmf.
* :func:`dataset_coverage_check` — the paper's §III-D reality check: on the
  BDD MOT dataset (where instances *co-occur* in frames, violating the
  independence assumption), the Eq. III.3 95% confidence bound covered the
  true expected reward "about 80% of the time". We reproduce this by
  sampling frames from a synthetic dataset — whose instances co-occur the
  same way — and measuring the same coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.estimator import (
    bias_bound_maxp,
    bias_bound_moments,
    expected_bias,
    expected_n1,
    expected_r,
    pi_seen_at,
)
from repro.errors import DatasetError

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (video -> theory)
    from repro.video.datasets import Dataset


@dataclass(frozen=True)
class MarginReport:
    """A measured quantity against its theoretical bound."""

    measured: float
    bound: float

    @property
    def holds(self) -> bool:
        return self.measured <= self.bound * (1 + 1e-9)

    @property
    def margin(self) -> float:
        """bound / measured (>= 1 when the bound holds with slack)."""
        if self.measured <= 0:
            return float("inf")
        return self.bound / self.measured


def bias_margin_report(p: np.ndarray, n: int) -> dict:
    """Exact relative bias vs the two Eq. III.2 bounds.

    (Uses the closed forms — no Monte Carlo needed: the theorem's quantities
    are all computable for a known population.)
    """
    p = np.asarray(p, dtype=float)
    estimate = expected_n1(p, n) / max(n, 1)
    if estimate <= 0:
        raise DatasetError("population yields a zero estimate at this n")
    relative_bias = expected_bias(p, n) / estimate
    return {
        "relative_bias": relative_bias,
        "maxp_bound": MarginReport(relative_bias, bias_bound_maxp(p)),
        "moments_bound": MarginReport(relative_bias, bias_bound_moments(p)),
    }


def variance_margin_report(
    p: np.ndarray, n: int, runs: int, rng: np.random.Generator
) -> MarginReport:
    """Monte-Carlo Var[N1/n] against the Eq. III.3 bound E[R̂]/n."""
    p = np.asarray(p, dtype=float)
    counts = rng.binomial(n, p[None, :], size=(runs, p.size))
    estimates = np.sum(counts == 1, axis=1) / n
    measured = float(np.var(estimates))
    bound = expected_n1(p, n) / (n * n)
    return MarginReport(measured=measured, bound=bound)


def poisson_fit_report(
    p: np.ndarray, n: int, runs: int, rng: np.random.Generator
) -> dict:
    """Total-variation distance between empirical N1(n) and Poisson(λ).

    λ = n Σ π_i(n-1)·... — concretely E[N1(n)], per the §III-B theorem.
    TV distance below ~0.05 indicates an excellent fit.
    """
    p = np.asarray(p, dtype=float)
    counts = rng.binomial(n, p[None, :], size=(runs, p.size))
    samples = np.sum(counts == 1, axis=1).astype(np.int64)
    lam = expected_n1(p, n)
    hi = int(max(samples.max(), lam * 3) + 2)
    empirical = np.bincount(samples, minlength=hi + 1) / runs
    support = np.arange(hi + 1)
    poisson_pmf = _scipy_stats.poisson.pmf(support, lam)
    tv_distance = 0.5 * float(np.abs(empirical - poisson_pmf).sum())
    return {
        "lambda": lam,
        "tv_distance": tv_distance,
        "empirical_mean": float(samples.mean()),
        "empirical_var": float(samples.var()),
    }


def dataset_coverage_check(
    dataset: "Dataset",
    checkpoints: np.ndarray,
    runs: int,
    rng: np.random.Generator,
    z: float = 1.96,
) -> float:
    """§III-D on real-shaped data: coverage of the Eq. III.3 bound.

    Samples frames uniformly (with replacement, like the paper's per-frame
    occupancy view) from the dataset's global timeline; instances co-occur
    within frames exactly as the synthetic world lays them out, so the
    independence assumption behind Eq. III.3 is genuinely violated. Returns
    the fraction of (run, checkpoint) pairs whose true expected reward falls
    inside R̂ ± z·sqrt(R̂/n); the paper measured ≈0.8 against a nominal 0.95.
    """
    world = dataset.world
    total = dataset.total_frames
    starts = np.array([inst.global_start for inst in world.instances])
    ends = np.array([inst.global_end for inst in world.instances])
    durations = (ends - starts).astype(float)
    p_global = durations / total
    checkpoints = np.asarray(checkpoints, dtype=np.int64)
    inside = 0
    totals = 0
    for _ in range(runs):
        times_seen = np.zeros(world.num_instances, dtype=np.int64)
        cursor = 0
        frames = rng.integers(0, total, size=int(checkpoints.max()))
        for n in checkpoints:
            while cursor < n:
                frame = frames[cursor]
                visible = (starts <= frame) & (frame < ends)
                times_seen[visible] += 1
                cursor += 1
            n1 = int(np.sum(times_seen == 1))
            estimate = n1 / n
            true_r = float(p_global[times_seen == 0].sum())
            half_width = z * np.sqrt(max(estimate, 1e-12) / n)
            inside += int(abs(true_r - estimate) <= half_width)
            totals += 1
    return inside / totals
