"""Instance-skew statistics across chunks (§IV-B, Figure 6).

Figure 6 annotates each representative query with a skew statistic ``S`` and
draws a bar per chunk (height = instances in the chunk), highlighting the
minimum set of chunks that covers half the instances. The paper does not
spell out a closed form for ``S``; from the five labelled values and the
§IV-B discussion we infer

    S = (M / 2) / k_half

where ``k_half`` is the smallest number of chunks whose instance counts sum
to at least half the instances. Under no skew every chunk holds the same
count, k_half = M/2 and S = 1; when a single chunk holds half the instances,
S = M/2. This matches all five values printed in the paper's Figure 6 within
rounding, and DESIGN.md documents it as an inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


def k_half(counts: np.ndarray, fraction: float = 0.5) -> int:
    """Minimum number of chunks covering ``fraction`` of all instances.

    Greedy-by-size is exactly optimal for this covering problem.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size == 0:
        raise DatasetError("counts must be a non-empty 1-D array")
    if np.any(counts < 0):
        raise DatasetError("counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise DatasetError("no instances: skew undefined")
    target = fraction * total
    ordered = np.sort(counts)[::-1]
    covered = np.cumsum(ordered)
    return int(np.searchsorted(covered, target - 1e-12) + 1)


def skew_metric(counts: np.ndarray) -> float:
    """The Figure 6 skew statistic S = (M/2) / k_half."""
    counts = np.asarray(counts, dtype=float)
    return (counts.size / 2.0) / k_half(counts)


def half_cover_mask(counts: np.ndarray) -> np.ndarray:
    """Mask of the minimal half-covering chunk set (Figure 6's blue bars)."""
    counts = np.asarray(counts, dtype=float)
    k = k_half(counts)
    order = np.argsort(counts)[::-1]
    mask = np.zeros(counts.size, dtype=bool)
    mask[order[:k]] = True
    return mask


@dataclass(frozen=True)
class SkewSummary:
    """Everything Figure 6 shows for one query."""

    counts: np.ndarray
    skew: float
    k_half: int
    total_instances: int

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "SkewSummary":
        counts = np.asarray(counts, dtype=np.int64)
        return cls(
            counts=counts,
            skew=skew_metric(counts),
            k_half=k_half(counts),
            total_instances=int(counts.sum()),
        )

    def bar_chart(self, width: int = 60) -> str:
        """Text rendering of the Figure 6 chunk histogram.

        Chunks in the minimal half-cover set are drawn with ``#`` (the
        paper's blue bars), the rest with ``.``.
        """
        from repro.utils.tables import sparkline

        counts = self.counts.astype(float)
        cover = half_cover_mask(counts)
        spark = sparkline(counts, width=width)
        cover_line = "".join(
            "#" if c else "." for c in _downsample_mask(cover, len(spark))
        )
        return (
            f"{spark}\n{cover_line}\n"
            f"N={self.total_instances}  S={self.skew:.2g}  "
            f"k_half={self.k_half}/{self.counts.size} chunks"
        )


def _downsample_mask(mask: np.ndarray, width: int) -> np.ndarray:
    if mask.size <= width:
        return mask
    stride = mask.size / width
    return np.array([mask[int(i * stride)] for i in range(width)])
