"""Empirical validation of the estimator and its Gamma belief (§III-D, Fig 2).

Given harvested ``(n, N1, R(n+1))`` tuples from the occupancy simulation,
this module answers the paper's validation question: *given an observed
(N1, n), what is the true R(n+1), and how does it compare to the belief
distribution Gamma(N1 + alpha0, n + beta0)?*

For each probed ``(n, N1)`` cell we report the empirical distribution of the
true ``R(n+1)`` against the belief's mean/std/quantiles, plus the §III-D
confidence-coverage check ("the 95% confidence bound derived from Eq. III.3
includes the actual expected reward about 80% of the time" on real data with
dependent instances; near 95% under independence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.belief import GammaBelief
from repro.core.config import PAPER_ALPHA0, PAPER_BETA0
from repro.theory.coin_sim import RunTuples

#: The six (n, N1) cells highlighted in the paper's Figure 2.
PAPER_FIGURE2_CELLS: Tuple[Tuple[int, int], ...] = (
    (82, 127),
    (100, 116),
    (14093, 58),
    (120911, 4),
    (172085, 5),
    (179601, 0),
)


@dataclass(frozen=True)
class CellReport:
    """Belief-vs-truth comparison at one (n, N1) cell."""

    n: int
    n1: int
    observations: int
    true_mean: float
    true_std: float
    belief_mean: float
    belief_std: float
    #: Fraction of true R values inside the belief's central 95% interval.
    belief_coverage_95: float
    point_estimate: float

    @property
    def mean_ratio(self) -> float:
        """Belief mean / true mean (≥1 indicates the predicted overestimate)."""
        if self.true_mean <= 0:
            return float("inf")
        return self.belief_mean / self.true_mean


def cell_report(
    tuples: RunTuples,
    n: int,
    n1: int,
    alpha0: float = PAPER_ALPHA0,
    beta0: float = PAPER_BETA0,
    n_tolerance: float = 0.05,
) -> CellReport | None:
    """Compare the Gamma belief to the truth at one (n, N1) cell.

    Returns ``None`` when the harvested tuples contain no observation in the
    cell (the caller should then choose a better-populated cell).
    """
    r_values = tuples.at(n, n1, n_tolerance=n_tolerance)
    if r_values.size == 0:
        return None
    belief = GammaBelief(alpha=n1 + alpha0, beta=n + beta0)
    lo, hi = belief.quantile(0.025), belief.quantile(0.975)
    coverage = float(np.mean((r_values >= lo) & (r_values <= hi)))
    return CellReport(
        n=n,
        n1=n1,
        observations=int(r_values.size),
        true_mean=float(np.mean(r_values)),
        true_std=float(np.std(r_values)),
        belief_mean=belief.mean,
        belief_std=float(np.sqrt(belief.variance)),
        belief_coverage_95=coverage,
        point_estimate=n1 / n if n > 0 else 0.0,
    )


def populated_cells(
    tuples: RunTuples,
    num_cells: int = 6,
    min_observations: int = 10,
    n_tolerance: float = 0.05,
) -> List[Tuple[int, int]]:
    """Pick well-populated (n, N1) cells spanning early/mid/late sampling.

    The paper chose its six Figure 2 cells from a 10K-run harvest; smaller
    harvests may leave literal cells empty, so benches regenerate the
    figure on the modal N1 found inside a ±``n_tolerance`` window around
    geometrically spaced n probes (the same window :meth:`RunTuples.at`
    uses to collect the histogram).
    """
    if tuples.size == 0:
        return []
    n_values = np.unique(tuples.n)
    probes = np.unique(
        np.geomspace(n_values[0], n_values[-1], num=num_cells).astype(np.int64)
    )
    cells: List[Tuple[int, int]] = []
    for probe in probes:
        nearest = int(n_values[np.argmin(np.abs(n_values - probe))])
        window = (tuples.n >= nearest * (1 - n_tolerance) - 1) & (
            tuples.n <= nearest * (1 + n_tolerance) + 1
        )
        at_n = tuples.n1[window]
        if at_n.size == 0:
            continue
        values, counts = np.unique(at_n, return_counts=True)
        best = values[np.argmax(counts)]
        if counts.max() >= min_observations and (nearest, int(best)) not in cells:
            cells.append((nearest, int(best)))
    return cells


def variance_bound_coverage(
    tuples: RunTuples,
    z: float = 1.96,
) -> float:
    """§III-D coverage check of the Eq. III.3 confidence bound.

    For each harvested tuple, build the interval
    R̂ ± z · sqrt(R̂ / n) (using the observable estimate in place of its
    expectation) and report the fraction of tuples whose true R(n+1) falls
    inside. The paper measured ≈80% on BDD MOT (dependent instances) against
    the nominal 95%.
    """
    mask = tuples.n > 0
    n = tuples.n[mask].astype(float)
    est = tuples.n1[mask] / n
    half_width = z * np.sqrt(np.maximum(est, 1e-12) / n)
    truth = tuples.r_next[mask]
    inside = np.abs(truth - est) <= half_width
    return float(np.mean(inside))


def bias_profile(
    tuples: RunTuples, n_grid: Sequence[int]
) -> List[Tuple[int, float, float]]:
    """Mean estimator bias E[R̂ - R] measured at each n in the grid.

    Returns tuples of (n, mean_bias, mean_estimate); the theorem of §III-A
    predicts mean_bias >= 0 and small relative to mean_estimate.
    """
    out: List[Tuple[int, float, float]] = []
    for n in n_grid:
        mask = tuples.n == n
        if not np.any(mask):
            continue
        est = tuples.n1[mask] / float(n)
        bias = est - tuples.r_next[mask]
        out.append((int(n), float(np.mean(bias)), float(np.mean(est))))
    return out
