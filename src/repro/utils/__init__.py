"""Shared utilities: deterministic RNG spawning, statistics, tables, timers."""

from repro.utils.rng import RngFactory, as_generator, spawn_rng
from repro.utils.stats import (
    geometric_mean,
    median_and_band,
    running_max,
    trapezoid_auc,
)
from repro.utils.tables import ascii_table, format_duration, sparkline
from repro.utils.timer import Timer

__all__ = [
    "RngFactory",
    "Timer",
    "as_generator",
    "ascii_table",
    "format_duration",
    "geometric_mean",
    "median_and_band",
    "running_max",
    "sparkline",
    "spawn_rng",
    "trapezoid_auc",
]
