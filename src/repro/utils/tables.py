"""Plain-text rendering of tables, durations and sparklines.

The benchmark harness regenerates every paper table/figure as text. These
helpers keep the formatting consistent: `ascii_table` renders aligned
columns, `format_duration` prints seconds the way Table I does ("1m37s",
"9h50m"), and `sparkline` gives a one-line shape of a curve for figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_duration(seconds: float) -> str:
    """Format a duration like the paper's Table I: ``52s``, ``8m57s``, ``9h50m``.

    >>> format_duration(97)
    '1m37s'
    >>> format_duration(35400)
    '9h50m'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours > 0:
        return f"{hours}h{minutes}m" if minutes else f"{hours}h"
    if minutes > 0:
        return f"{minutes}m{secs}s" if secs else f"{minutes}m"
    return f"{secs}s"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Numeric cells are right-aligned, text cells left-aligned. Returns the
    table as a single string (callers print it).
    """
    str_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str], numeric: Sequence[bool]) -> str:
        parts = []
        for cell, width, right in zip(cells, widths, numeric, strict=True):
            parts.append(cell.rjust(width) if right else cell.ljust(width))
        return "  ".join(parts).rstrip()

    numeric_cols = [
        all(_is_numeric(row[i]) for row in str_rows) if str_rows else False
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers), [False] * len(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_line(row, numeric_cols))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Compress a numeric series into a unicode sparkline of ``width`` chars."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # Downsample by taking strided representatives.
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(vals)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)] for v in vals)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text.rstrip("x%"))
    except ValueError:
        return False
    return True
