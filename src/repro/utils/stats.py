"""Small statistics helpers used across experiments and metrics."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper summarises savings ratios with a geometric mean (§I, §V-C),
    which is the right average for ratios: a 2x speedup and a 0.5x slowdown
    average to 1x, not 1.25x.

    Raises
    ------
    ValueError
        If ``values`` is empty or contains non-positive entries.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def median_and_band(
    trajectories: Sequence[Sequence[float]],
    low: float = 25.0,
    high: float = 75.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Median and percentile band across repeated-run trajectories.

    This is how Figure 3 summarises its 21 runs: solid line = median,
    shaded band = 25th..75th percentile. All trajectories must share a
    common length (callers resample onto a grid first).

    Returns ``(median, band_low, band_high)`` arrays.
    """
    arr = np.asarray(trajectories, dtype=float)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D array of trajectories")
    return (
        np.median(arr, axis=0),
        np.percentile(arr, low, axis=0),
        np.percentile(arr, high, axis=0),
    )


def running_max(values: Sequence[float]) -> np.ndarray:
    """Cumulative maximum; useful to make noisy recall curves monotone."""
    return np.maximum.accumulate(np.asarray(values, dtype=float))


def trapezoid_auc(x: Sequence[float], y: Sequence[float]) -> float:
    """Area under a curve by the trapezoid rule (normalised by x-range).

    Used to compare whole discovery curves (instances found vs samples)
    rather than a single recall point.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size or x_arr.size < 2:
        raise ValueError("need two same-length arrays of at least 2 points")
    span = x_arr[-1] - x_arr[0]
    if span <= 0:
        raise ValueError("x must be increasing")
    return float(np.trapezoid(y_arr, x_arr) / span)


def percentile_of(values: Sequence[float], q: float) -> float:
    """Convenience wrapper matching the paper's ".9 percentile over bars"."""
    return float(np.percentile(np.asarray(list(values), dtype=float), q * 100))
