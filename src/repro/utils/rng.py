"""Deterministic random-number-generator management.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator`. Nothing reads global random state, which
keeps experiments reproducible and lets independent components (the detector,
the sampler, the dataset builder) consume independent streams derived from a
single user-facing seed.

Two idioms are supported:

* :func:`spawn_rng` — derive a child generator from a seed and a tuple of
  string/int keys. The same ``(seed, keys)`` pair always yields the same
  stream, and distinct key tuples yield statistically independent streams.
  This is how the simulated detector produces *stable* outputs per frame:
  detecting frame 1234 twice returns byte-identical detections.
* :class:`RngFactory` — an object wrapper over :func:`spawn_rng` that
  remembers the base seed, convenient to thread through long call chains.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

Seedish = Union[int, None, np.random.Generator, "RngFactory"]


def _digest_keys(seed: int, keys: Iterable[object]) -> int:
    """Hash ``seed`` plus arbitrary keys into a 128-bit integer seed."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(int(seed)).encode())
    for key in keys:
        hasher.update(b"\x1f")
        hasher.update(repr(key).encode())
    return int.from_bytes(hasher.digest(), "little")


def digest_keys(seed: int, *keys: object) -> int:
    """Public alias of the key-digest used by every stream in the library.

    Returns the 128-bit integer that seeds the stream for ``(seed, keys)``;
    useful for computing a *base* digest once and deriving many related
    streams cheaply via :meth:`TransientRng.seeded_offset`.
    """
    return _digest_keys(seed, keys)


def spawn_rng(seed: int, *keys: object) -> np.random.Generator:
    """Return a generator deterministically derived from ``seed`` and ``keys``.

    >>> a = spawn_rng(7, "detector", 12)
    >>> b = spawn_rng(7, "detector", 12)
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.Generator(np.random.Philox(_digest_keys(seed, keys)))


class TransientRng:
    """A reusable keyed generator for *frame-local* randomness.

    :func:`spawn_rng` constructs a fresh ``Generator`` + ``Philox`` pair
    per call (~20µs), which dominates per-frame hot paths like the
    simulated detector. This class keys a single long-lived Philox
    directly from the same blake2b digest, skipping object construction:
    ``seeded(seed, *keys)`` costs a few µs and is exactly as reproducible
    (same ``(seed, keys)`` → same stream, distinct keys → independent
    streams). Note the stream is NOT the one :func:`spawn_rng` yields for
    the same keys — spawn_rng routes the digest through ``SeedSequence``,
    this class keys Philox directly — so switching a component between
    the two changes its outputs for a given seed.

    The returned :class:`numpy.random.Generator` is SHARED — the next
    ``seeded()`` call resets its stream. Callers must finish drawing
    before re-seeding and must never hand the generator to a long-lived
    consumer; use :func:`spawn_rng` for anything that outlives the call
    site.
    """

    _KEY_MASK = (1 << 64) - 1

    def __init__(self) -> None:
        self._bitgen = np.random.Philox(0)
        self._gen = np.random.Generator(self._bitgen)
        self._state = self._bitgen.state
        # Reused buffers: _rekey runs per frame on hot paths, so the key
        # and counter arrays are written in place instead of reallocated.
        self._key_buf = np.empty(2, dtype=np.uint64)
        self._counter_buf = np.zeros(4, dtype=np.uint64)

    def seeded(self, seed: int, *keys: object) -> np.random.Generator:
        """Re-key the shared generator for ``(seed, keys)`` and return it."""
        return self._rekey(_digest_keys(seed, keys))

    def seeded_offset(self, digest: int, offset: int) -> np.random.Generator:
        """Re-key from a precomputed base ``digest`` plus an integer offset.

        The Philox key becomes ``(digest_lo + offset, digest_hi)``: Philox
        is a PRF over its key, so distinct offsets yield independent
        streams, and the blake2b digest — the expensive part of
        :meth:`seeded` — is paid once per base instead of once per stream.
        This is how the detector keys its per-frame streams: one digest per
        ``(seed, video)``, one offset per frame. Equivalent in guarantees
        to ``seeded(seed, *base_keys, offset)`` but a different stream for
        the same logical keys, so switching a component between the two
        idioms changes its outputs for a given seed.
        """
        return self._rekey(digest + offset)

    def _rekey(self, digest: int) -> np.random.Generator:
        key = self._key_buf
        key[0] = digest & self._KEY_MASK
        key[1] = (digest >> 64) & self._KEY_MASK
        state = self._state
        state["state"]["key"] = key
        state["state"]["counter"] = self._counter_buf
        state["buffer_pos"] = 4
        state["has_uint32"] = 0
        state["uinteger"] = 0
        self._bitgen.state = state
        return self._gen


def as_generator(seed: Seedish) -> np.random.Generator:
    """Coerce ``seed`` (int, None, Generator, or RngFactory) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngFactory):
        return seed.generator()
    return np.random.default_rng(seed)


class RngFactory:
    """A reproducible factory of independent random streams.

    Parameters
    ----------
    seed:
        Base seed. Two factories with the same seed produce identical
        streams for identical key tuples.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed})"

    def stream(self, *keys: object) -> np.random.Generator:
        """Return the generator for ``keys`` (stable across calls)."""
        return spawn_rng(self.seed, *keys)

    def generator(self) -> np.random.Generator:
        """Return the factory's default (un-keyed) generator."""
        return self.stream("default")

    def child(self, *keys: object) -> "RngFactory":
        """Return a new factory whose streams are independent of this one."""
        return RngFactory(_digest_keys(self.seed, keys) % (2**63))

    def integers(self, low: int, high: int, *keys: object) -> int:
        """Draw one integer in ``[low, high)`` from the keyed stream."""
        return int(self.stream(*keys).integers(low, high))
