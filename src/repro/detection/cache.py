"""Memoized detection results: pay the detector once per frame, ever.

The paper's premise is that "runtime in ExSample is roughly proportional to
the number of frames processed by the detector" (§III), and the simulated
detector is an explicitly *pure* function of ``(seed, video, frame)`` —
detecting the same frame twice yields byte-identical results. Every figure
experiment exploits neither fact: a fig3-style sweep (several methods ×
several seeds over one :class:`~repro.query.engine.QueryEngine`) re-detects
the frames its runs share from scratch, once per run.

:class:`DetectionCache` closes that gap. It memoizes finished detection
lists keyed by ``(video, frame, class_filter)`` so any number of runs over
the same detector pay detection once per distinct frame. Because the
detector is deterministic, a cache hit returns exactly what a fresh
detection would — caching can change wall-clock time, never a trace.

Three policies are supported:

* ``"unbounded"`` — a plain dict; right for experiment sweeps, where the
  working set is the sampled subset of the repository (small by design —
  sampling's whole point is to touch few frames).
* ``"lru"`` — an :class:`collections.OrderedDict` bounded at ``capacity``
  entries with least-recently-used eviction; right for long-lived serving
  processes.
* ``"off"`` — no cache (``make_detection_cache`` returns ``None``).

Caches deliberately do **not** survive :mod:`pickle`: serialising a
detector (e.g. inside a :class:`~repro.query.session.QuerySession`
checkpoint) keeps the cache's *configuration* but drops its contents and
counters, so checkpoints stay small and restore is always correct even if
the world or seed changes between save and load.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError

#: On-disk format version of :meth:`DetectionCache.save` snapshots.
CACHE_SNAPSHOT_VERSION = 1

#: Cache key: (detector scope, video, frame, class_filter-or-None).
CacheKey = Tuple[str, int, int, Optional[str]]

#: What ``QueryEngine(detection_cache=...)`` and the CLI accept.
CacheSpec = Union[str, "DetectionCache", None]


@dataclass(frozen=True)
class ScopeCacheInfo:
    """Hit/miss counts attributed to one cache scope (one detector)."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class CacheInfo:
    """A point-in-time snapshot of cache effectiveness.

    ``per_scope`` breaks the totals down by cache scope — the detector
    identity prefix of each key — so a cache shared by several detectors
    (a multi-dataset sweep's pool cache, a multi-tenant server) reports
    which detector's lookups hit. Empty for a cache that has seen no
    scoped lookups.
    """

    policy: str
    hits: int
    misses: int
    size: int
    capacity: Optional[int]
    per_scope: Mapping[str, ScopeCacheInfo] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cap = "∞" if self.capacity is None else str(self.capacity)
        return (
            f"{self.policy} cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate, {self.size}/{cap} entries)"
        )


def merge_cache_infos(infos, policy: Optional[str] = None) -> CacheInfo:
    """Sum several :class:`CacheInfo` snapshots into one fleet-level view.

    Hit/miss totals and the per-scope breakdowns add across processes;
    ``size`` takes the maximum rather than the sum, because processes
    sharing one store (the fleet's :class:`~repro.parallel.shm
    .SharedDetectionCache`) each report the same entries — summing would
    count every row once per shard. ``capacity`` survives only when every
    snapshot agrees on it.
    """
    infos = [info for info in infos if info is not None]
    if not infos:
        return CacheInfo(policy=policy or "none", hits=0, misses=0,
                         size=0, capacity=None)
    scopes: Dict[str, List[int]] = {}
    for info in infos:
        for scope, counts in info.per_scope.items():
            entry = scopes.setdefault(scope, [0, 0])
            entry[0] += counts.hits
            entry[1] += counts.misses
    capacities = {info.capacity for info in infos}
    return CacheInfo(
        policy=policy or infos[0].policy,
        hits=sum(info.hits for info in infos),
        misses=sum(info.misses for info in infos),
        size=max(info.size for info in infos),
        capacity=capacities.pop() if len(capacities) == 1 else None,
        per_scope={
            scope: ScopeCacheInfo(hits=h, misses=m)
            for scope, (h, m) in scopes.items()
        },
    )


class DetectionCache:
    """Memo table for per-frame detection lists.

    Parameters
    ----------
    policy:
        ``"unbounded"`` or ``"lru"``.
    capacity:
        Maximum entries for the LRU policy (ignored when unbounded).
    """

    #: Whether keys must be namespaced by the detector's identity (its
    #: :meth:`~repro.detection.simulated.SimulatedDetector.cache_scope`,
    #: a digest of seed, noise profile and world content). Nothing stops
    #: one cache instance from serving several detectors — two engines
    #: handed the same cache, or the cross-process shared cache of a
    #: multi-dataset sweep — and un-scoped ``(video, frame, class)``
    #: keys would then collide across worlds, so every cache demands
    #: scoping; the prefix is a one-time digest per detector.
    scoped = True

    #: Whether ``key in cache`` is a cheap in-process probe. Stat-only
    #: consumers (the serving batcher's per-tenant hit attribution) skip
    #: probing when this is False — a proxy-backed store would pay one
    #: IPC round-trip per probed frame for a statistic.
    fast_contains = True

    def __init__(self, policy: str = "unbounded", capacity: int = 65536):
        if policy not in ("unbounded", "lru"):
            raise ConfigError(
                f"unknown detection cache policy {policy!r} "
                "(expected 'unbounded' or 'lru'; use make_detection_cache"
                "('off') for no cache)"
            )
        if policy == "lru" and capacity < 1:
            raise ConfigError("lru capacity must be >= 1")
        self.policy = policy
        self.capacity = capacity if policy == "lru" else None
        self.hits = 0
        self.misses = 0
        self._scope_hits: Dict[str, int] = {}
        self._scope_misses: Dict[str, int] = {}
        # One cache instance routinely serves interleaved sessions — every
        # tenant of a QueryServer, or several engines on worker threads —
        # so counter updates and LRU reordering are guarded by a lock.
        # Within one event loop the lock is uncontended (asyncio never
        # preempts mid-call); it exists for thread-backed drivers.
        self._lock = threading.Lock()
        self._store: "Dict[CacheKey, List[object]]" = (
            OrderedDict() if policy == "lru" else {}
        )

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        """Counter-free presence probe.

        Lets a batcher attribute per-tenant hits (which requested frames
        were already memoized when its fused call was issued) without
        perturbing the hit/miss statistics the real lookups maintain.
        """
        return key in self._store

    def contains_many(self, keys) -> List[bool]:
        """Counter-free presence probes under a single lock acquisition.

        One consistent point-in-time answer for a whole batch of keys:
        with detector calls running off the event loop (thread/process
        executors), per-key ``in`` probes could interleave with a
        concurrent batch's ``put`` calls and attribute hits that did not
        exist when the batch was assembled. Probing every key under one
        lock hold pins the snapshot to a single instant.
        """
        with self._lock:
            store = self._store
            return [key in store for key in keys]

    @staticmethod
    def _scope_of(key: CacheKey) -> str:
        """The scope component of a key ('' for legacy un-scoped keys)."""
        return key[0] if key and isinstance(key[0], str) else ""

    def get(self, key: CacheKey) -> Optional[List[object]]:
        """The cached detection list for ``key``, or None on a miss.

        Returns a shallow copy so callers may mutate the returned list
        (detection objects themselves are frozen) without corrupting the
        cache.
        """
        scope = self._scope_of(key)
        with self._lock:
            store = self._store
            try:
                value = store[key]
            except KeyError:
                self.misses += 1
                self._scope_misses[scope] = self._scope_misses.get(scope, 0) + 1
                return None
            self.hits += 1
            self._scope_hits[scope] = self._scope_hits.get(scope, 0) + 1
            if self.capacity is not None:
                store.move_to_end(key)  # type: ignore[attr-defined]
            return list(value)

    def put(self, key: CacheKey, detections: List[object]) -> None:
        """Memoize one frame's finished (already filtered) detections."""
        with self._lock:
            store = self._store
            store[key] = list(detections)
            if self.capacity is not None:
                store.move_to_end(key)  # type: ignore[attr-defined]
                while len(store) > self.capacity:
                    store.popitem(last=False)  # type: ignore[call-arg]

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self._scope_hits.clear()
            self._scope_misses.clear()

    def snapshot(
        self, scope: Optional[str] = None
    ) -> "Dict[CacheKey, List[object]]":
        """A counter-free copy of the stored entries.

        ``scope`` restricts the copy to one detector's keys (see
        :attr:`scoped`). Like :meth:`__contains__`, reading a snapshot
        never perturbs the hit/miss statistics, so persistence layers —
        :meth:`save`, the repository index's detection-row harvest — can
        export entries without skewing effectiveness numbers.
        """
        with self._lock:
            items = list(self._store.items())
        if scope is None:
            return {key: list(value) for key, value in items}
        return {
            key: list(value)
            for key, value in items
            if self._scope_of(key) == scope
        }

    # -- explicit on-disk persistence ----------------------------------------

    def save(self, path: str) -> int:
        """Write contents to ``path`` as a digest-checked envelope.

        Pickling a cache deliberately drops its contents (checkpoints must
        stay small); this is the explicit opposite — a warm memo carried
        across processes on purpose. The envelope mirrors the session
        checkpoint format: a version tag, summary metadata (policy,
        capacity, entry count, the scope digests present), a blake2b
        digest of the pickled payload, and the payload itself. Returns the
        number of entries written.
        """
        entries = self.snapshot()
        payload = pickle.dumps(
            {"entries": entries}, protocol=pickle.HIGHEST_PROTOCOL
        )
        envelope = {
            "version": CACHE_SNAPSHOT_VERSION,
            "meta": {
                "policy": self.policy,
                "capacity": self.capacity,
                "entries": len(entries),
                "scopes": sorted({self._scope_of(key) for key in entries}),
            },
            "digest": hashlib.blake2b(payload, digest_size=16).hexdigest(),
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return len(entries)

    @classmethod
    def load(cls, path: str, detector=None) -> "DetectionCache":
        """Revive a :meth:`save` snapshot as a warm cache.

        ``detector`` (optional but recommended) pins the load to one
        detector identity: every scope digest recorded in the snapshot
        must equal ``detector.cache_scope()``, otherwise the load is
        refused with a :class:`~repro.errors.ConfigError` — the PR 4
        cross-world cache regression showed what silently adopting rows
        from another world does to results. The payload digest is always
        verified.
        """
        with open(path, "rb") as handle:
            try:
                envelope = pickle.load(handle)
            except Exception as exc:
                raise ConfigError(
                    f"could not decode detection cache snapshot {path!r}: {exc}"
                ) from exc
        if not isinstance(envelope, dict) or "version" not in envelope:
            raise ConfigError(f"{path!r} is not a detection cache snapshot")
        if envelope["version"] != CACHE_SNAPSHOT_VERSION:
            raise ConfigError(
                f"unsupported cache snapshot version {envelope['version']} "
                f"(this library reads version {CACHE_SNAPSHOT_VERSION})"
            )
        digest = hashlib.blake2b(
            envelope["payload"], digest_size=16
        ).hexdigest()
        if digest != envelope["digest"]:
            raise ConfigError(
                f"cache snapshot {path!r} failed its digest check: the file "
                "was corrupted in storage or transit"
            )
        meta = envelope["meta"]
        if detector is not None:
            expected = detector.cache_scope()
            foreign = [s for s in meta.get("scopes", []) if s != expected]
            if foreign:
                raise ConfigError(
                    f"cache snapshot {path!r} holds rows for detector "
                    f"scope(s) {[s[:12] + '…' for s in foreign]} but the "
                    f"attached detector's scope is {expected[:12]}…; the "
                    "world, seed or profile changed since the snapshot — "
                    "refusing to load stale detections"
                )
        state = pickle.loads(envelope["payload"])
        cache = cls(
            policy=meta["policy"],
            capacity=meta["capacity"] if meta["capacity"] is not None else 65536,
        )
        for key, value in state["entries"].items():
            cache.put(key, value)
        return cache

    def _per_scope(self) -> Dict[str, ScopeCacheInfo]:
        scopes = set(self._scope_hits) | set(self._scope_misses)
        return {
            scope: ScopeCacheInfo(
                hits=self._scope_hits.get(scope, 0),
                misses=self._scope_misses.get(scope, 0),
            )
            for scope in sorted(scopes)
        }

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                policy=self.policy,
                hits=self.hits,
                misses=self.misses,
                size=len(self._store),
                capacity=self.capacity,
                per_scope=self._per_scope(),
            )

    def cache_info(self) -> CacheInfo:
        """Alias of :meth:`info`, mirroring ``functools.lru_cache``."""
        return self.info()

    # -- pickling: configuration travels, contents never ---------------------

    def __getstate__(self) -> dict:
        """Serialise the configuration only.

        Session checkpoints pickle the whole environment, detector
        included; shipping the memo table would bloat every checkpoint
        with data that is pure re-computable cache. Contents and counters
        are dropped; the restored cache starts cold with the same policy.
        """
        return {"policy": self.policy, "capacity": self.capacity}

    def __setstate__(self, state: dict) -> None:
        self.policy = state["policy"]
        self.capacity = state["capacity"]
        self.hits = 0
        self.misses = 0
        self._scope_hits = {}
        self._scope_misses = {}
        self._lock = threading.Lock()
        self._store = OrderedDict() if self.capacity is not None else {}


def make_detection_cache(
    spec: CacheSpec, capacity: int = 65536
) -> Optional[DetectionCache]:
    """Resolve a user-facing cache spec to a cache object (or None).

    ``spec`` may be ``None`` / ``"off"`` (no cache), ``"unbounded"``,
    ``"lru"``, ``"shared"`` (one cross-process memo for a worker pool —
    this process's :func:`repro.parallel.shm.shared_detection_cache`),
    or an existing cache instance (returned as-is).
    """
    if spec is None or spec == "off":
        return None
    if isinstance(spec, DetectionCache):
        return spec
    if spec == "shared":
        from repro.parallel.shm import shared_detection_cache

        return shared_detection_cache()
    if isinstance(spec, str):
        return DetectionCache(policy=spec, capacity=capacity)
    raise ConfigError(
        f"detection_cache must be 'off', 'unbounded', 'lru', 'shared' or "
        f"a DetectionCache instance, got {type(spec).__name__}"
    )
