"""A black-box object detector simulated over synthetic ground truth.

The paper treats the detector (Faster-RCNN + ResNet-50) as "a black box with
a costly runtime" (§II-A); only its outputs and its cost matter to the
sampling problem. :class:`SimulatedDetector` reproduces the *statistical
behaviour* of such a detector over a :class:`~repro.video.SyntheticWorld`:

* **misses** — each visible instance is detected with probability
  ``1 - miss_rate``, with small boxes missed more often (the classic
  small-object failure mode);
* **localisation noise** — detected boxes are jittered relative to ground
  truth;
* **false positives** — spurious boxes appear at a configurable per-frame
  rate with lower confidence scores;
* **determinism** — detections are a pure function of (seed, video, frame):
  detecting the same frame twice yields identical results, exactly like
  running a deterministic network twice. This matters because ground-truth
  building scans frames the samplers may later revisit — and because it
  makes per-frame results *memoizable* (see
  :class:`~repro.detection.cache.DetectionCache`).

Detector *cost* is not modelled here; the :class:`~repro.query.CostModel`
charges per invocation, which is how the paper accounts runtime (§III:
"runtime in ExSample is roughly proportional to the number of frames
processed by the detector").

Vectorised generation
---------------------

A frame's detections are generated with whole-frame numpy expressions (one
miss draw, one jitter draw, one score draw per frame instead of one per
instance). The per-frame RNG stream is still keyed on
``(seed, video, frame)``, so determinism and batching-invariance are
untouched; the *order* of draws within a frame differs from the historical
per-instance loop, so per-seed outputs differ from pre-vectorisation
releases while remaining draws from exactly the same distributions (each
instance's miss/jitter/score variates are i.i.d. across instances, so
drawing them as one vector instead of interleaved per instance is a pure
reordering of independent samples). In-repo benchmark artifacts were
regenerated accordingly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.detection.cache import DetectionCache
from repro.detection.detections import Detection
from repro.errors import ConfigError
from repro.utils.rng import TransientRng, digest_keys
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticWorld


@dataclass(frozen=True)
class DetectorProfile:
    """Noise profile of the simulated detector.

    Attributes
    ----------
    miss_rate:
        Baseline probability of missing a clearly visible object.
    small_box_penalty:
        Extra miss probability for boxes much smaller than ``reference_size``
        (scaled by how far below the reference the box side falls).
    jitter:
        Corner jitter as a fraction of box size.
    false_positives_per_frame:
        Poisson rate of spurious detections per frame (across all classes).
    score_tp, score_fp:
        Beta(a, b) parameters of true-positive / false-positive confidence.
    """

    miss_rate: float = 0.08
    small_box_penalty: float = 0.25
    reference_size: float = 120.0
    jitter: float = 0.04
    false_positives_per_frame: float = 0.03
    score_tp: tuple = (8.0, 2.0)
    score_fp: tuple = (2.0, 5.0)

    def __post_init__(self) -> None:
        if not 0 <= self.miss_rate < 1:
            raise ConfigError("miss_rate must lie in [0, 1)")
        if self.false_positives_per_frame < 0:
            raise ConfigError("false positive rate must be non-negative")
        if self.jitter < 0:
            raise ConfigError("jitter must be non-negative")


#: A noiseless detector: detects exactly the ground truth.
PERFECT_PROFILE = DetectorProfile(
    miss_rate=0.0,
    small_box_penalty=0.0,
    jitter=0.0,
    false_positives_per_frame=0.0,
)


class SimulatedDetector:
    """Deterministic noisy detector over a synthetic world.

    ``cache`` (optional) memoizes finished per-frame detection lists; see
    :class:`~repro.detection.cache.DetectionCache`. Because detection is a
    pure function of ``(seed, video, frame)``, a cache changes wall-clock
    time only, never an output. ``frames_processed`` counts detection
    *requests* (cache hits included), keeping the counter's meaning
    identical whether or not a cache is attached.

    Thread safety: ``detect``/``detect_batch`` may be called from worker
    threads (the serving stack's thread executor runs fused calls off the
    event loop). Per-frame randomness uses a thread-local
    :class:`~repro.utils.rng.TransientRng` — streams stay keyed purely on
    ``(seed, video, frame)``, so which thread detects a frame can never
    change its output — and the invocation counters are lock-guarded.

    This class is also the seam for a *real* detector backend (GPU/ONNX,
    an EKO-style compressed-video model): any object with the same
    ``detect``/``detect_batch``/``frames_processed``/``detect_calls``
    surface drops into every engine and server unchanged. Backends whose
    ``detect_batch`` releases the GIL (ONNX Runtime, torch inference)
    pair naturally with the serving stack's ``executor="thread"``; see
    :mod:`repro.serving.executors`.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        profile: DetectorProfile | None = None,
        seed: int = 0,
        cache: Optional[DetectionCache] = None,
    ):
        self.world = world
        self.profile = profile or DetectorProfile()
        self.seed = seed
        self.cache = cache
        self.frames_processed = 0
        # Invocation counter: how many times detect()/detect_batch() was
        # *called* (regardless of batch size or cache hits). This is the
        # quantity cross-session batching exists to shrink — a fused call
        # covering eight sessions' frames counts once — and what the
        # serving micro-bench gates on.
        self.detect_calls = 0
        self._class_names = world.class_names() or ["object"]
        self._scope: Optional[str] = None
        # Per-frame streams are keyed on (seed, video, frame); a
        # TransientRng skips per-call generator construction, and the rng
        # never escapes _generate_frames. The instance is per-thread
        # (detect_batch may run on executor worker threads) — keying is
        # purely digest-driven, so every thread's streams are identical.
        self._rng_local = threading.local()
        # detect()/detect_batch() may race from worker threads; unguarded
        # `+=` would lose counts.
        self._count_lock = threading.Lock()

    @property
    def _frame_rng(self) -> TransientRng:
        rng = getattr(self._rng_local, "rng", None)
        if rng is None:
            rng = self._rng_local.rng = TransientRng()
        return rng

    def _charge(self, frames: int, calls: int = 1) -> None:
        """Count one invocation covering ``frames`` requested frames."""
        with self._count_lock:
            self.detect_calls += calls
            self.frames_processed += frames

    # -- pickling: locks and thread-locals are per-process ------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # threading primitives do not pickle; both are recreated fresh on
        # restore (counters themselves travel — they are plain ints).
        del state["_rng_local"]
        del state["_count_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        # Drop the legacy shared-rng slot from old checkpoints: the
        # attribute is a property now, and a stale instance entry would
        # shadow nothing but waste memory.
        state.pop("_frame_rng", None)
        self.__dict__.update(state)
        self._rng_local = threading.local()
        self._count_lock = threading.Lock()

    def cache_scope(self) -> str:
        """Stable identity of this detector's output function.

        Detection output is fully determined by ``(seed, profile, world
        content)``; the scope digests exactly those, so two detectors
        share a scope precisely when they would produce identical
        detections for every frame. Caches serving several detectors
        (``scoped = True``, e.g. the pool-wide shared cache of a
        multi-dataset sweep) use it to namespace their keys.
        """
        scope = self._scope
        if scope is None:
            import hashlib

            hasher = hashlib.blake2b(digest_size=16)
            # The dataclass repr enumerates every profile field, so a
            # future output-affecting field automatically changes the
            # scope instead of silently aliasing old cache rows.
            hasher.update(repr((self.seed, self.profile)).encode())
            hasher.update(self.world.content_digest())
            scope = self._scope = hasher.hexdigest()
        return scope

    def detect(
        self,
        video: int,
        frame: int,
        class_filter: Optional[str] = None,
    ) -> List[Detection]:
        """Run the detector on one frame.

        ``class_filter`` drops detections of other classes *after*
        generation, so the same (seed, video, frame) always produces the
        same underlying detections regardless of which query asks.
        """
        self._charge(1)
        cache = self.cache
        if cache is None:
            return self._detect_filtered(video, frame, class_filter)
        if cache.scoped:
            key = (self.cache_scope(), video, frame, class_filter)
        else:
            key = (video, frame, class_filter)
        hit = cache.get(key)
        if hit is not None:
            return hit
        detections = self._detect_filtered(video, frame, class_filter)
        cache.put(key, detections)
        return detections

    def detect_batch(
        self,
        videos: Sequence[int],
        frames: Sequence[int],
        class_filter: Optional[str] = None,
    ) -> List[List[Detection]]:
        """Run the detector on a batch of frames (§III-F).

        Returns one detection list per ``(video, frame)`` pair, identical
        to calling :meth:`detect` per frame — the per-frame rng streams are
        keyed on ``(seed, video, frame)``, so batching cannot change any
        output. One Python call amortises the per-invocation overhead the
        batched sampler exists to avoid.
        """
        if len(videos) != len(frames):
            raise ConfigError("videos and frames must align")
        n = len(frames)
        self._charge(n)
        cache = self.cache
        out: List[Optional[List[Detection]]] = [None] * n
        if cache is None:
            # Grouped by video so the whole-group geometry resolves in
            # flat numpy arrays.
            todo_by_video: dict[int, List[int]] = {}
            for i, video in enumerate(videos):
                todo_by_video.setdefault(int(video), []).append(i)
            for video, indices in todo_by_video.items():
                frame_list = [int(frames[i]) for i in indices]
                generated = self._generate_frames(video, frame_list)
                for i, detections in zip(indices, generated, strict=True):
                    if class_filter is not None:
                        detections = [
                            d for d in detections if d.class_name == class_filter
                        ]
                    out[i] = detections
        else:
            # One cache lookup — and at most one generation — per distinct
            # (video, frame): duplicate picks within the batch share the
            # generated result instead of re-generating (and re-counting a
            # miss) per occurrence. Scoped caches (shared across several
            # detectors) namespace the stored key with this detector's
            # identity; grouping below stays on the plain key.
            scope = self.cache_scope() if cache.scoped else None
            pending: dict[tuple, List[int]] = {}
            for i, (video, frame) in enumerate(zip(videos, frames, strict=True)):
                key = (int(video), int(frame), class_filter)
                indices = pending.get(key)
                if indices is not None:
                    indices.append(i)
                    continue
                hit = cache.get(key if scope is None else (scope,) + key)
                if hit is None:
                    pending[key] = [i]
                else:
                    out[i] = hit
            by_video: dict[int, List[tuple]] = {}
            for key in pending:
                by_video.setdefault(key[0], []).append(key)
            for video, keys in by_video.items():
                generated = self._generate_frames(video, [k[1] for k in keys])
                for key, detections in zip(keys, generated, strict=True):
                    if class_filter is not None:
                        detections = [
                            d for d in detections if d.class_name == class_filter
                        ]
                    cache.put(key if scope is None else (scope,) + key, detections)
                    indices = pending[key]
                    out[indices[0]] = detections
                    for extra in indices[1:]:
                        out[extra] = list(detections)
        return out  # type: ignore[return-value]

    def _detect_filtered(
        self, video: int, frame: int, class_filter: Optional[str]
    ) -> List[Detection]:
        detections = self._generate_frames(video, [frame])[0]
        if class_filter is not None:
            detections = [d for d in detections if d.class_name == class_filter]
        return detections

    # -- internals ---------------------------------------------------------

    def _miss_probability(self, box: BoundingBox) -> float:
        """Scalar miss probability for one ground-truth box.

        The batched pipeline evaluates the same formula vectorised; this
        form documents it (and serves tests and explorations).
        """
        profile = self.profile
        side = float(np.sqrt(max(box.area, 1.0)))
        smallness = max(0.0, 1.0 - side / profile.reference_size)
        return min(profile.miss_rate + profile.small_box_penalty * smallness, 0.95)

    def _generate_frames(
        self, video: int, frame_list: List[int]
    ) -> List[List[Detection]]:
        """Generate (unfiltered) detections for many frames of one video.

        The expensive geometry — ground-truth boxes at each frame, miss
        probabilities, jitter scales — is computed once for the whole group
        in flat ``(frame, instance)`` arrays. Randomness stays strictly
        per-frame: each frame re-keys the shared generator on
        ``(seed, video, frame)`` and draws its miss/jitter/score vectors
        from that stream, so outputs are independent of how frames are
        grouped into calls (``detect`` and ``detect_batch`` agree exactly).
        Per frame, instances appear in uid-index order, the same order the
        historical per-instance loop used.
        """
        world = self.world
        profile = self.profile
        meta = world.repository.videos[video]
        width, height = float(meta.width), float(meta.height)
        frames_arr = np.asarray(frame_list, dtype=np.int64)
        uids_flat, counts_arr = world.visible_uids_batch(video, frames_arr)
        counts = counts_arr.tolist()
        if uids_flat.size:
            arrays = world.instance_arrays()
            names = arrays.class_names
            frames_flat = np.repeat(frames_arr, counts_arr)
            boxes_flat = world.boxes_at(uids_flat, frames_flat)
            widths_flat = boxes_flat[:, 2] - boxes_flat[:, 0]
            heights_flat = boxes_flat[:, 3] - boxes_flat[:, 1]
            side = np.sqrt(np.maximum(widths_flat * heights_flat, 1.0))
            smallness = np.maximum(0.0, 1.0 - side / profile.reference_size)
            miss_p_flat = np.minimum(
                profile.miss_rate + profile.small_box_penalty * smallness, 0.95
            )
            sig_x_flat = profile.jitter * np.maximum(widths_flat, 1.0)
            sig_y_flat = profile.jitter * np.maximum(heights_flat, 1.0)
            codes_flat = arrays.class_codes[uids_flat]
            box_lower = np.zeros(4)
            box_upper = np.array([width, height, width, height])
        base_digest = digest_keys(self.seed, "detect", video)
        seeded_offset = self._frame_rng.seeded_offset
        jitter = profile.jitter
        score_a, score_b = profile.score_tp
        has_fps = profile.false_positives_per_frame > 0
        out: List[List[Detection]] = []
        offset = 0
        for frame, count in zip(frame_list, counts, strict=True):
            rng = seeded_offset(base_digest, frame)
            detections: List[Detection] = []
            if count:
                sl = slice(offset, offset + count)
                offset += count
                keep = rng.random(count) >= miss_p_flat[sl]
                if keep.any():
                    kept = boxes_flat[sl][keep]
                    if jitter > 0:
                        noise = rng.normal(0.0, 1.0, size=(len(kept), 4))
                        dx = noise[:, 0:2] * sig_x_flat[sl][keep][:, None]
                        dy = noise[:, 2:4] * sig_y_flat[sl][keep][:, None]
                        x_a = kept[:, 0] + dx[:, 0]
                        x_b = kept[:, 2] + dx[:, 1]
                        y_a = kept[:, 1] + dy[:, 0]
                        y_b = kept[:, 3] + dy[:, 1]
                        kept = np.empty((len(x_a), 4))
                        np.minimum(x_a, x_b, out=kept[:, 0])
                        np.minimum(y_a, y_b, out=kept[:, 1])
                        np.maximum(x_a, x_b, out=kept[:, 2])
                        np.maximum(y_a, y_b, out=kept[:, 3])
                    np.minimum(kept, box_upper, out=kept)
                    np.maximum(kept, box_lower, out=kept)
                    scores = rng.beta(score_a, score_b, size=len(kept))
                    detections.extend(
                        Detection(
                            video=video,
                            frame=frame,
                            box=BoundingBox(x1, y1, x2, y2),
                            class_name=names[code],
                            score=score,
                            instance_uid=uid,
                        )
                        for (x1, y1, x2, y2), code, score, uid in zip(
                            kept.tolist(),
                            codes_flat[sl][keep].tolist(),
                            scores.tolist(),
                            uids_flat[sl][keep].tolist(),
                            strict=True,
                        )
                    )
            if has_fps:
                fp_count = int(rng.poisson(profile.false_positives_per_frame))
                if fp_count:
                    detections.extend(
                        self._false_positives(
                            video, frame, rng, fp_count, width, height
                        )
                    )
            out.append(detections)
        return out

    def _false_positives(
        self,
        video: int,
        frame: int,
        rng: np.random.Generator,
        count: int,
        width: float,
        height: float,
    ) -> List[Detection]:
        """Build ``count`` spurious detections (the Poisson draw happened
        in the caller, on this frame's stream)."""
        profile = self.profile
        names = self._class_names
        w = rng.uniform(20.0, 200.0, size=count)
        h = w * rng.uniform(0.5, 1.5, size=count)
        x1 = rng.uniform(0.0, 1.0, size=count) * np.maximum(width - w, 1.0)
        y1 = rng.uniform(0.0, 1.0, size=count) * np.maximum(height - h, 1.0)
        codes = rng.integers(0, len(names), size=count)
        scores = rng.beta(*profile.score_fp, size=count)
        return [
            Detection(
                video=video,
                frame=frame,
                box=BoundingBox(bx1, by1, bx1 + bw, by1 + bh),
                class_name=names[code],
                score=score,
                instance_uid=None,
            )
            for bx1, by1, bw, bh, code, score in zip(
                x1.tolist(),
                y1.tolist(),
                w.tolist(),
                h.tolist(),
                codes.tolist(),
                scores.tolist(),
                strict=True,
            )
        ]


# -- off-process detection: a picklable task envelope ------------------------
#
# The serving stack's process executor (repro.serving.executors) runs fused
# detect_batch calls in worker processes. Shipping the parent detector's
# live cache would be wasteful (its contents deliberately do not pickle, so
# the worker would re-generate frames the parent already memoized) — so the
# call is split: the parent resolves cache hits on its own warm cache,
# ships only the misses inside a DetectTask (the detector pickles small:
# a published world travels as a ~100-byte SharedWorldHandle, the cache as
# configuration only), and merges the worker's generated detections back
# into its cache. Counter accounting happens entirely parent-side at split
# time, so stats are identical to an inline detect_batch call.


@dataclass(frozen=True)
class DetectTask:
    """One off-process detection call: everything the worker needs.

    ``scope`` (when the detector exposes ``cache_scope``) pins the task to
    one detector identity: the worker recomputes the scope from the world
    it actually attached and refuses to run against a mismatch, so a stale
    shared-memory segment can never produce silently-wrong detections.
    """

    detector: object
    videos: Tuple[int, ...]
    frames: Tuple[int, ...]
    class_filter: Optional[str]
    scope: Optional[str]


@dataclass
class DetectSplit:
    """Parent-side residue of :func:`split_detect_task`.

    Holds the partially-filled output (cache hits resolved), the ordered
    miss keys still owed by the worker, and enough context for
    :func:`merge_detect_results` to memoize and distribute the worker's
    results. Never crosses a process boundary.
    """

    out: List[Optional[List[Detection]]]
    pending: "dict[tuple, List[int]]"
    cache: Optional[DetectionCache]
    scope: Optional[str]
    passthrough: bool


def split_detect_task(
    detector,
    videos: Sequence[int],
    frames: Sequence[int],
    class_filter: Optional[str] = None,
) -> "tuple[Optional[DetectTask], DetectSplit]":
    """Resolve cache hits locally; build a task covering only the misses.

    Mirrors ``detect_batch``'s cached branch exactly — per-occurrence
    ``cache.get`` for hit keys, one shipped generation per *distinct* miss
    key — and charges the detector's invocation counters up front, so the
    parent detector's stats match an inline call. Returns ``(task,
    split)``; ``task`` is None when every frame was served from cache (no
    worker round-trip needed).
    """
    if len(videos) != len(frames):
        raise ConfigError("videos and frames must align")
    n = len(frames)
    charge = getattr(detector, "_charge", None)
    if charge is not None:
        charge(n)
    else:  # duck-typed detector: best-effort counter parity
        if hasattr(detector, "detect_calls"):
            detector.detect_calls += 1
        if hasattr(detector, "frames_processed"):
            detector.frames_processed += n
    scope_fn = getattr(detector, "cache_scope", None)
    scope = scope_fn() if scope_fn is not None else None
    cache = getattr(detector, "cache", None)
    if cache is None:
        # No memo to consult: ship the request verbatim (duplicates
        # included — exactly what the inline no-cache branch generates).
        task = DetectTask(
            detector=detector,
            videos=tuple(int(v) for v in videos),
            frames=tuple(int(f) for f in frames),
            class_filter=class_filter,
            scope=scope,
        )
        return task, DetectSplit(
            out=[None] * n, pending={}, cache=None, scope=scope,
            passthrough=True,
        )
    key_scope = scope if cache.scoped else None
    out: List[Optional[List[Detection]]] = [None] * n
    pending: "dict[tuple, List[int]]" = {}
    for i, (video, frame) in enumerate(zip(videos, frames, strict=True)):
        key = (int(video), int(frame), class_filter)
        indices = pending.get(key)
        if indices is not None:
            indices.append(i)
            continue
        hit = cache.get(key if key_scope is None else (key_scope,) + key)
        if hit is None:
            pending[key] = [i]
        else:
            out[i] = hit
    split = DetectSplit(
        out=out, pending=pending, cache=cache, scope=key_scope,
        passthrough=False,
    )
    if not pending:
        return None, split
    task = DetectTask(
        detector=detector,
        videos=tuple(key[0] for key in pending),
        frames=tuple(key[1] for key in pending),
        class_filter=class_filter,
        scope=scope,
    )
    return task, split


def execute_detect_task(task: DetectTask) -> List[List[Detection]]:
    """Worker-side half: generate detections for a shipped task.

    Module-level (not a closure) so it pickles under the spawn start
    method. The unpickled detector's cache restores cold by design; it is
    dropped entirely so the worker neither counts phantom misses nor
    wastes memory memoizing results the parent will memoize anyway.
    """
    detector = task.detector
    if getattr(detector, "cache", None) is not None:
        detector.cache = None
    if task.scope is not None:
        # Recompute from the world this process actually attached — a
        # pickled memo would make the comparison a tautology.
        if getattr(detector, "_scope", None) is not None:
            detector._scope = None
        actual = detector.cache_scope()
        if actual != task.scope:
            raise ConfigError(
                f"detect task scope mismatch: parent expected "
                f"{task.scope[:12]}… but the worker's attached world "
                f"yields {actual[:12]}…; the shared world segment does "
                "not match the detector that issued this task"
            )
    return detector.detect_batch(
        list(task.videos), list(task.frames), class_filter=task.class_filter
    )


def merge_detect_results(
    split: DetectSplit, results: List[List[Detection]]
) -> List[List[Detection]]:
    """Parent-side half: memoize worker results and fill the output.

    ``results`` aligns with the task's shipped ``(video, frame)`` pairs —
    for a cached split, the distinct miss keys in insertion order.
    """
    if split.passthrough:
        return results
    pending = split.pending
    if len(results) != len(pending):
        raise ConfigError(
            f"detect task returned {len(results)} frame results for "
            f"{len(pending)} shipped frames"
        )
    cache = split.cache
    out = split.out
    for key, detections in zip(pending, results, strict=True):
        if cache is not None:
            cache.put(
                key if split.scope is None else (split.scope,) + key,
                detections,
            )
        indices = pending[key]
        out[indices[0]] = detections
        for extra in indices[1:]:
            out[extra] = list(detections)
    return out  # type: ignore[return-value]
