"""A black-box object detector simulated over synthetic ground truth.

The paper treats the detector (Faster-RCNN + ResNet-50) as "a black box with
a costly runtime" (§II-A); only its outputs and its cost matter to the
sampling problem. :class:`SimulatedDetector` reproduces the *statistical
behaviour* of such a detector over a :class:`~repro.video.SyntheticWorld`:

* **misses** — each visible instance is detected with probability
  ``1 - miss_rate``, with small boxes missed more often (the classic
  small-object failure mode);
* **localisation noise** — detected boxes are jittered relative to ground
  truth;
* **false positives** — spurious boxes appear at a configurable per-frame
  rate with lower confidence scores;
* **determinism** — detections are a pure function of (seed, video, frame):
  detecting the same frame twice yields identical results, exactly like
  running a deterministic network twice. This matters because ground-truth
  building scans frames the samplers may later revisit.

Detector *cost* is not modelled here; the :class:`~repro.query.CostModel`
charges per invocation, which is how the paper accounts runtime (§III:
"runtime in ExSample is roughly proportional to the number of frames
processed by the detector").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.detection.detections import Detection
from repro.errors import ConfigError
from repro.utils.rng import TransientRng
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticWorld


@dataclass(frozen=True)
class DetectorProfile:
    """Noise profile of the simulated detector.

    Attributes
    ----------
    miss_rate:
        Baseline probability of missing a clearly visible object.
    small_box_penalty:
        Extra miss probability for boxes much smaller than ``reference_size``
        (scaled by how far below the reference the box side falls).
    jitter:
        Corner jitter as a fraction of box size.
    false_positives_per_frame:
        Poisson rate of spurious detections per frame (across all classes).
    score_tp, score_fp:
        Beta(a, b) parameters of true-positive / false-positive confidence.
    """

    miss_rate: float = 0.08
    small_box_penalty: float = 0.25
    reference_size: float = 120.0
    jitter: float = 0.04
    false_positives_per_frame: float = 0.03
    score_tp: tuple = (8.0, 2.0)
    score_fp: tuple = (2.0, 5.0)

    def __post_init__(self) -> None:
        if not 0 <= self.miss_rate < 1:
            raise ConfigError("miss_rate must lie in [0, 1)")
        if self.false_positives_per_frame < 0:
            raise ConfigError("false positive rate must be non-negative")
        if self.jitter < 0:
            raise ConfigError("jitter must be non-negative")


#: A noiseless detector: detects exactly the ground truth.
PERFECT_PROFILE = DetectorProfile(
    miss_rate=0.0,
    small_box_penalty=0.0,
    jitter=0.0,
    false_positives_per_frame=0.0,
)


class SimulatedDetector:
    """Deterministic noisy detector over a synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        profile: DetectorProfile | None = None,
        seed: int = 0,
    ):
        self.world = world
        self.profile = profile or DetectorProfile()
        self.seed = seed
        self.frames_processed = 0
        self._class_names = world.class_names() or ["object"]
        # Per-frame streams are keyed on (seed, video, frame); the shared
        # TransientRng skips per-call generator construction, and the rng
        # never escapes _detect_frame, so sharing is safe.
        self._frame_rng = TransientRng()

    def detect(
        self,
        video: int,
        frame: int,
        class_filter: Optional[str] = None,
    ) -> List[Detection]:
        """Run the detector on one frame.

        ``class_filter`` drops detections of other classes *after*
        generation, so the same (seed, video, frame) always produces the
        same underlying detections regardless of which query asks.
        """
        detections = self._detect_frame(video, frame)
        self.frames_processed += 1
        if class_filter is not None:
            detections = [d for d in detections if d.class_name == class_filter]
        return detections

    def detect_batch(
        self,
        videos: Sequence[int],
        frames: Sequence[int],
        class_filter: Optional[str] = None,
    ) -> List[List[Detection]]:
        """Run the detector on a batch of frames (§III-F).

        Returns one detection list per ``(video, frame)`` pair, identical
        to calling :meth:`detect` per frame — the per-frame rng streams are
        keyed on ``(seed, video, frame)``, so batching cannot change any
        output. One Python call amortises the per-invocation overhead the
        batched sampler exists to avoid.
        """
        if len(videos) != len(frames):
            raise ConfigError("videos and frames must align")
        detect_frame = self._detect_frame
        out: List[List[Detection]] = []
        if class_filter is None:
            for video, frame in zip(videos, frames):
                out.append(detect_frame(int(video), int(frame)))
        else:
            for video, frame in zip(videos, frames):
                detections = detect_frame(int(video), int(frame))
                out.append(
                    [d for d in detections if d.class_name == class_filter]
                )
        self.frames_processed += len(out)
        return out

    def _detect_frame(self, video: int, frame: int) -> List[Detection]:
        """Generate one frame's (unfiltered) detections deterministically."""
        rng = self._frame_rng.seeded(self.seed, "detect", video, frame)
        profile = self.profile
        detections: List[Detection] = []
        visible = self.world.visible(video, frame)
        if visible:
            meta = self.world.repository.videos[video]
            for instance in visible:
                gt_box = instance.box_at(frame)
                if rng.random() < self._miss_probability(gt_box):
                    continue
                box = (
                    gt_box
                    if profile.jitter == 0
                    else gt_box.jittered(rng, profile.jitter)
                )
                box = box.clipped(meta.width, meta.height)
                score = float(rng.beta(*profile.score_tp))
                detections.append(
                    Detection(
                        video=video,
                        frame=frame,
                        box=box,
                        class_name=instance.class_name,
                        score=score,
                        instance_uid=instance.uid,
                    )
                )
        detections.extend(self._false_positives(video, frame, rng))
        return detections

    # -- internals ---------------------------------------------------------

    def _miss_probability(self, box: BoundingBox) -> float:
        profile = self.profile
        side = math.sqrt(max(float(box.area), 1.0))
        smallness = max(0.0, 1.0 - side / profile.reference_size)
        return min(profile.miss_rate + profile.small_box_penalty * smallness, 0.95)

    def _false_positives(
        self, video: int, frame: int, rng: np.random.Generator
    ) -> List[Detection]:
        profile = self.profile
        if profile.false_positives_per_frame <= 0:
            return []
        count = int(rng.poisson(profile.false_positives_per_frame))
        if count == 0:
            return []
        meta = self.world.repository.videos[video]
        out: List[Detection] = []
        for _ in range(count):
            w = float(rng.uniform(20, 200))
            h = w * float(rng.uniform(0.5, 1.5))
            x1 = float(rng.uniform(0, max(meta.width - w, 1)))
            y1 = float(rng.uniform(0, max(meta.height - h, 1)))
            out.append(
                Detection(
                    video=video,
                    frame=frame,
                    box=BoundingBox(x1, y1, x1 + w, y1 + h),
                    class_name=str(rng.choice(self._class_names)),
                    score=float(rng.beta(*profile.score_fp)),
                    instance_uid=None,
                )
            )
        return out
