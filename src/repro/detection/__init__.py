"""Object-detection substrate: simulated detector, proxy scorer, records."""

from repro.detection.detections import Detection, filter_class, filter_score
from repro.detection.proxy import ProxyModel
from repro.detection.simulated import (
    PERFECT_PROFILE,
    DetectorProfile,
    SimulatedDetector,
)

__all__ = [
    "Detection",
    "DetectorProfile",
    "PERFECT_PROFILE",
    "ProxyModel",
    "SimulatedDetector",
    "filter_class",
    "filter_score",
]
