"""Object-detection substrate: simulated detector, cache, proxy, records."""

from repro.detection.cache import (
    CacheInfo,
    DetectionCache,
    ScopeCacheInfo,
    make_detection_cache,
)
from repro.detection.detections import Detection, filter_class, filter_score
from repro.detection.proxy import ProxyModel
from repro.detection.simulated import (
    PERFECT_PROFILE,
    DetectorProfile,
    SimulatedDetector,
)

__all__ = [
    "CacheInfo",
    "Detection",
    "DetectionCache",
    "DetectorProfile",
    "PERFECT_PROFILE",
    "ProxyModel",
    "ScopeCacheInfo",
    "SimulatedDetector",
    "filter_class",
    "filter_score",
    "make_detection_cache",
]
