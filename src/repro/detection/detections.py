"""Detection records: what an object detector returns for one frame."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.video.geometry import BoundingBox


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector output box (slotted: hot paths build thousands).

    Attributes
    ----------
    video, frame:
        Where the detection was computed.
    box:
        Detected bounding box (already jittered by detector noise).
    class_name:
        Predicted object category.
    score:
        Detector confidence in (0, 1).
    instance_uid:
        Hidden ground-truth backing instance, or ``None`` for a false
        positive. This field exists for *evaluation and simulation only*:
        the sampling algorithms and the discriminator's matching logic never
        read it to make decisions (the simulated tracker uses the backing
        trajectory the way a pixel tracker would use the pixels).
    """

    video: int
    frame: int
    box: BoundingBox
    class_name: str
    score: float
    instance_uid: Optional[int] = None

    @property
    def is_false_positive(self) -> bool:
        return self.instance_uid is None


def filter_class(detections: List[Detection], class_name: str) -> List[Detection]:
    """Keep only detections of one class (the query's object type)."""
    return [d for d in detections if d.class_name == class_name]


def filter_score(detections: List[Detection], threshold: float) -> List[Detection]:
    """Keep detections at or above a confidence threshold."""
    return [d for d in detections if d.score >= threshold]
