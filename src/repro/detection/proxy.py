"""The proxy-model substrate: a cheap, noisy per-frame scorer (BlazeIt [10]).

Proxy-based systems train a small CNN per query and score *every* frame of
the dataset with it, then send frames to the expensive detector in
descending score order (§II-B). For the limit-query comparison only two
properties of the proxy matter: (1) how well its score ordering correlates
with object presence, and (2) that producing the scores requires a full
scan at ``scan_fps`` (the paper measures 100 fps, io+decode bound).

:class:`ProxyModel` synthesises scores with a controllable quality: frames
where the target class is present score ``u^(1/k)`` and absent frames score
``u`` with ``u ~ Uniform(0,1)``, giving an exact ROC-AUC of ``k/(k+1)``.
``quality=1.0`` is a perfect ranker; ``quality=0.5`` is useless. The default
0.87 reflects a good specialised proxy on an easy (static camera) dataset;
moving-camera datasets are harder for proxies (§V-A), which callers model by
passing a lower quality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import spawn_rng
from repro.video.synthetic import SyntheticWorld


class ProxyModel:
    """Synthetic per-frame scores for one target class."""

    def __init__(
        self,
        world: SyntheticWorld,
        class_name: str,
        quality: float = 0.87,
        seed: int = 0,
    ):
        if not 0.5 <= quality < 1.0:
            raise ConfigError(
                "proxy quality is an ROC-AUC and must lie in [0.5, 1.0); "
                "use 0.5 for a useless proxy"
            )
        self.world = world
        self.class_name = class_name
        self.quality = quality
        self.seed = seed
        self._scores: np.ndarray | None = None

    @property
    def separation(self) -> float:
        """The exponent k with AUC = k / (k + 1)."""
        return self.quality / (1.0 - self.quality)

    def score_all(self) -> np.ndarray:
        """Scores for every global frame (cached; the scan cost is charged
        by the searcher via :class:`~repro.query.CostModel`, not here)."""
        if self._scores is None:
            rng = spawn_rng(self.seed, "proxy", self.class_name)
            total = self.world.repository.total_frames
            u = rng.uniform(1e-12, 1.0, size=total)
            present = self.world.presence_mask(self.class_name)
            scores = u.copy()
            scores[present] = u[present] ** (1.0 / self.separation)
            self._scores = scores
        return self._scores

    def empirical_auc(self, sample: int | None = 200_000) -> float:
        """Measured ROC-AUC of the synthetic scores (for tests/ablations)."""
        scores = self.score_all()
        present = self.world.presence_mask(self.class_name)
        if sample is not None and scores.size > sample:
            rng = spawn_rng(self.seed, "auc-sample")
            idx = rng.choice(scores.size, size=sample, replace=False)
            scores, present = scores[idx], present[idx]
        pos = scores[present]
        neg = scores[~present]
        if pos.size == 0 or neg.size == 0:
            raise ConfigError("need both positive and negative frames for AUC")
        # Rank-based AUC (Mann-Whitney U).
        order = np.argsort(np.concatenate([pos, neg]))
        ranks = np.empty(order.size, dtype=float)
        ranks[order] = np.arange(1, order.size + 1)
        rank_sum_pos = ranks[: pos.size].sum()
        u_stat = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
        return float(u_stat / (pos.size * neg.size))
