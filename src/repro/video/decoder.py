"""Simulated frame decoding with the paper's random-access cost model.

§V-A: "To achieve fast, random access frame-decoding rates we use the Hwang
library from the Scanner project, and re-encode our video data to insert
keyframes every 20 frames." Random access into compressed video must decode
forward from the nearest preceding keyframe, so its cost depends on the
keyframe interval; sequential scans pay only the per-frame decode.

Nothing downstream looks at pixels — the decoder exists to (a) account for
decode cost honestly in both sampling and scanning regimes and (b) keep the
code shaped like the real system, where ``read_and_decode`` (Algorithm 1
line 8) sits between frame choice and detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DecodedFrame:
    """A decoded frame handle: identity plus the cost paid to obtain it."""

    video: int
    frame: int
    decode_cost: float


class SimulatedDecoder:
    """Keyframe-interval decode cost model.

    Parameters
    ----------
    keyframe_interval:
        Re-encoded GOP length; the paper uses 20.
    per_frame_cost:
        Seconds to decode one frame once its position is reached.
    seek_cost:
        Fixed seconds per random seek (container parsing, io).
    """

    def __init__(
        self,
        keyframe_interval: int = 20,
        per_frame_cost: float = 1.0 / 400.0,
        seek_cost: float = 1.0 / 500.0,
    ):
        if keyframe_interval < 1:
            raise ConfigError("keyframe_interval must be >= 1")
        if per_frame_cost < 0 or seek_cost < 0:
            raise ConfigError("decode costs must be non-negative")
        self.keyframe_interval = keyframe_interval
        self.per_frame_cost = per_frame_cost
        self.seek_cost = seek_cost
        self._last: tuple[int, int] | None = None

    def random_access_cost(self, frame: int) -> float:
        """Cost of decoding ``frame`` from a cold seek.

        Decoding must start at the preceding keyframe, so the cost covers
        ``frame % keyframe_interval + 1`` frames plus the seek.
        """
        frames_to_decode = frame % self.keyframe_interval + 1
        return self.seek_cost + frames_to_decode * self.per_frame_cost

    def read_and_decode(self, video: int, frame: int) -> DecodedFrame:
        """Decode a frame, exploiting sequential access when possible."""
        if frame < 0:
            raise ConfigError("frame must be non-negative")
        if self._last == (video, frame - 1):
            cost = self.per_frame_cost
        else:
            cost = self.random_access_cost(frame)
        self._last = (video, frame)
        return DecodedFrame(video=video, frame=frame, decode_cost=cost)

    def sequential_scan_cost(self, num_frames: int) -> float:
        """Cost of decoding ``num_frames`` in order (one seek, then linear)."""
        if num_frames < 0:
            raise ConfigError("num_frames must be non-negative")
        if num_frames == 0:
            return 0.0
        return self.seek_cost + num_frames * self.per_frame_cost
