"""Chunking policies: how a repository is partitioned for ExSample.

The paper uses two policies (§V-A): fixed 20-minute chunks for long videos
(dashcam, amsterdam, archie, night-street) and one chunk per clip for BDD
(clips are under a minute, so a chunk cannot span clips). §IV-C analyses how
the chunk count trades off exploitable skew against the overhead of learning
per-chunk estimates; :class:`AutoChunker` packages that analysis as the
future-work "automating chunking" heuristic.

Chunks never span video boundaries: a chunk is a contiguous frame interval
inside one video, which is also what makes within-chunk temporal locality
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ChunkingError
from repro.video.video import VideoRepository


@dataclass(frozen=True)
class Chunk:
    """A contiguous frame range ``[start, end)`` within one video."""

    video: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ChunkingError(f"empty chunk {self}")

    @property
    def size(self) -> int:
        return self.end - self.start


class ChunkMap:
    """The resolved partition: chunk sizes plus frame-address translation."""

    def __init__(self, repository: VideoRepository, chunks: List[Chunk]):
        if not chunks:
            raise ChunkingError("chunk list is empty")
        covered = 0
        for chunk in chunks:
            video = repository.videos[chunk.video]
            if chunk.end > video.num_frames:
                raise ChunkingError(
                    f"chunk {chunk} exceeds video of {video.num_frames} frames"
                )
            covered += chunk.size
        if covered != repository.total_frames:
            raise ChunkingError(
                f"chunks cover {covered} frames, repository has "
                f"{repository.total_frames}; partition must be exact"
            )
        self.repository = repository
        self.chunks = chunks
        self._sizes = np.array([c.size for c in chunks], dtype=np.int64)
        self._videos = np.array([c.video for c in chunks], dtype=np.int64)
        self._starts = np.array([c.start for c in chunks], dtype=np.int64)
        self._global_starts = np.array(
            [repository.global_index(c.video, c.start) for c in chunks],
            dtype=np.int64,
        )

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def sizes(self) -> np.ndarray:
        return self._sizes

    def to_video_frame(self, chunk: int, within: int) -> Tuple[int, int]:
        """Translate (chunk, within-chunk frame) to (video, frame)."""
        c = self.chunks[chunk]
        if not 0 <= within < c.size:
            raise ChunkingError(f"frame {within} outside chunk of size {c.size}")
        return c.video, c.start + within

    def to_video_frame_batch(
        self, chunks: np.ndarray, withins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`to_video_frame` over aligned index arrays.

        Returns ``(videos, frames)`` arrays; one searcher batch is resolved
        in a handful of numpy operations instead of one Python call per
        pick.
        """
        chunks = np.asarray(chunks, dtype=np.int64)
        withins = np.asarray(withins, dtype=np.int64)
        if chunks.shape != withins.shape:
            raise ChunkingError("chunk and frame index arrays must align")
        if np.any((chunks < 0) | (chunks >= self._sizes.size)):
            raise ChunkingError("chunk index out of range")
        if np.any((withins < 0) | (withins >= self._sizes[chunks])):
            raise ChunkingError("within-chunk frame index out of range")
        return self._videos[chunks], self._starts[chunks] + withins

    def to_global(self, chunk: int, within: int) -> int:
        """Translate (chunk, within) to the repository-global frame index."""
        c = self.chunks[chunk]
        if not 0 <= within < c.size:
            raise ChunkingError(f"frame {within} outside chunk of size {c.size}")
        return int(self._global_starts[chunk]) + within

    def global_bounds(self) -> np.ndarray:
        """Chunk boundaries in global frame coordinates (length M+1).

        Valid because chunks are emitted in global frame order, which every
        chunker in this module guarantees.
        """
        starts = self._global_starts
        if np.any(np.diff(starts) <= 0):
            raise ChunkingError("chunks are not in global frame order")
        return np.concatenate([starts, [starts[-1] + self._sizes[-1]]])

    def chunk_of_global(self, global_frame: int) -> int:
        """Which chunk contains a global frame index."""
        bounds = self.global_bounds()
        if not bounds[0] <= global_frame < bounds[-1]:
            raise ChunkingError(f"global frame {global_frame} outside repository")
        return int(np.searchsorted(bounds, global_frame, side="right") - 1)


class FixedDurationChunker:
    """Split every video into chunks of at most ``minutes`` (paper default 20)."""

    def __init__(self, minutes: float = 20.0):
        if minutes <= 0:
            raise ChunkingError("chunk duration must be positive")
        self.minutes = minutes

    def chunk(self, repository: VideoRepository) -> ChunkMap:
        chunks: List[Chunk] = []
        for video_idx, video in repository.iter_videos():
            per_chunk = max(int(round(self.minutes * 60 * video.fps)), 1)
            start = 0
            while start < video.num_frames:
                end = min(start + per_chunk, video.num_frames)
                chunks.append(Chunk(video=video_idx, start=start, end=end))
                start = end
        return ChunkMap(repository, chunks)


class PerClipChunker:
    """One chunk per video file (the BDD constraint of §V-A)."""

    def chunk(self, repository: VideoRepository) -> ChunkMap:
        chunks = [
            Chunk(video=i, start=0, end=v.num_frames)
            for i, v in repository.iter_videos()
        ]
        return ChunkMap(repository, chunks)


class AutoChunker:
    """Pick a chunk count from the expected sampling budget (§IV-C, §VII).

    §IV-C shows both extremes degrade to random sampling: one chunk cannot
    express skew, and one chunk per frame leaves Thompson sampling nothing
    to learn from. In between, each chunk needs enough samples to estimate
    its rate. We target ``samples_per_chunk`` sampling visits per chunk for
    an anticipated budget of ``expected_budget`` detector invocations:

        M = clip(expected_budget / samples_per_chunk, 2, max_chunks)

    and then split the repository into (approximately) that many equal-
    duration chunks, still respecting video boundaries.
    """

    def __init__(
        self,
        expected_budget: int,
        samples_per_chunk: int = 32,
        max_chunks: int = 1024,
    ):
        if expected_budget <= 0 or samples_per_chunk <= 0:
            raise ChunkingError("budget and samples_per_chunk must be positive")
        self.expected_budget = expected_budget
        self.samples_per_chunk = samples_per_chunk
        self.max_chunks = max_chunks

    def target_chunks(self, repository: VideoRepository) -> int:
        raw = self.expected_budget // self.samples_per_chunk
        return int(np.clip(raw, 2, min(self.max_chunks, repository.total_frames)))

    def chunk(self, repository: VideoRepository) -> ChunkMap:
        target = self.target_chunks(repository)
        frames_per_chunk = max(repository.total_frames // target, 1)
        chunks: List[Chunk] = []
        for video_idx, video in repository.iter_videos():
            start = 0
            while start < video.num_frames:
                end = min(start + frames_per_chunk, video.num_frames)
                # Avoid a trailing sliver smaller than half a chunk.
                if video.num_frames - end < frames_per_chunk // 2:
                    end = video.num_frames
                chunks.append(Chunk(video=video_idx, start=start, end=end))
                start = end
        return ChunkMap(repository, chunks)
