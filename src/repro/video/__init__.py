"""Video repository substrate: frames, chunks, decoding, synthetic worlds."""

from repro.video.chunks import (
    AutoChunker,
    Chunk,
    ChunkMap,
    FixedDurationChunker,
    PerClipChunker,
)
from repro.video.datasets import (
    DATASET_BUILDERS,
    Dataset,
    build_amsterdam,
    build_archie,
    build_bdd1k,
    build_bdd_mot,
    build_dashcam,
    build_night_street,
    make_dataset,
)
from repro.video.decoder import DecodedFrame, SimulatedDecoder
from repro.video.geometry import BoundingBox, interpolate, iou_matrix
from repro.video.synthetic import (
    ClassSpec,
    ObjectInstance,
    SyntheticWorld,
    SyntheticWorldBuilder,
    build_world,
)
from repro.video.video import (
    Video,
    VideoRepository,
    clip_collection_repository,
    single_camera_repository,
)

__all__ = [
    "AutoChunker",
    "BoundingBox",
    "Chunk",
    "ChunkMap",
    "ClassSpec",
    "DATASET_BUILDERS",
    "Dataset",
    "DecodedFrame",
    "FixedDurationChunker",
    "ObjectInstance",
    "PerClipChunker",
    "SimulatedDecoder",
    "SyntheticWorld",
    "SyntheticWorldBuilder",
    "Video",
    "VideoRepository",
    "build_amsterdam",
    "build_archie",
    "build_bdd1k",
    "build_bdd_mot",
    "build_dashcam",
    "build_night_street",
    "build_world",
    "clip_collection_repository",
    "interpolate",
    "iou_matrix",
    "make_dataset",
    "single_camera_repository",
]
